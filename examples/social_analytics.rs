//! The paper's motivating scenario (§2.2): statistics over a Twitter-like
//! follower network — average teenage followers plus PageRank influencers —
//! expressed in Green-Marl and executed as generated Pregel programs.
//!
//! ```text
//! cargo run --release --example social_analytics
//! ```

use greenmarl::algorithms::sources;
use greenmarl::prelude::*;
use std::collections::HashMap;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // A scaled-down follower network with the Twitter edge ratio.
    let n: u32 = 20_000;
    let g = gen::rmat(n, n as usize * 36, 2024);
    println!(
        "follower network: {} users, {} follow edges",
        g.num_nodes(),
        g.num_edges()
    );

    // ---- Average teenage followers (the paper's Fig. 2) ----
    let ages: Vec<i64> = (0..n as i64).map(|i| 10 + (i * 17) % 70).collect();
    let compiled = compile(sources::AVG_TEEN, &CompileOptions::default())?;
    let args = HashMap::from([
        (
            "age".to_owned(),
            ArgValue::NodeProp(ages.iter().map(|&a| Value::Int(a)).collect()),
        ),
        ("K".to_owned(), ArgValue::Scalar(Value::Int(30))),
    ]);
    let out = run_compiled(&g, &compiled, &args, 0, &PregelConfig::default())?;
    println!(
        "\navg teenage followers of users over 30: {:.4} \
         ({} supersteps, {} KB of messages)",
        out.ret.expect("returns the average").as_f64(),
        out.metrics.supersteps,
        out.metrics.total_message_bytes / 1024
    );

    // ---- PageRank influencers ----
    let compiled = compile(sources::PAGERANK, &CompileOptions::default())?;
    let args = HashMap::from([
        ("e".to_owned(), ArgValue::Scalar(Value::Double(1e-7))),
        ("d".to_owned(), ArgValue::Scalar(Value::Double(0.85))),
        ("max_iter".to_owned(), ArgValue::Scalar(Value::Int(20))),
    ]);
    let out = run_compiled(&g, &compiled, &args, 0, &PregelConfig::default())?;
    let pr = &out.node_props["pr"];
    let mut ranked: Vec<(u32, f64)> = pr
        .iter()
        .enumerate()
        .map(|(i, v)| (i as u32, v.as_f64()))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "\ntop influencers after {} supersteps ({} MB of messages):",
        out.metrics.supersteps,
        out.metrics.total_message_bytes / (1024 * 1024)
    );
    for (user, score) in ranked.iter().take(5) {
        println!("  user {user:>6}: pagerank {score:.6}");
    }

    // ---- Community quality: conductance of the even-id community ----
    let member: Vec<Value> = (0..n).map(|i| Value::Bool(i % 2 == 0)).collect();
    let compiled = compile(sources::CONDUCTANCE, &CompileOptions::default())?;
    let args = HashMap::from([("member".to_owned(), ArgValue::NodeProp(member))]);
    let out = run_compiled(&g, &compiled, &args, 0, &PregelConfig::default())?;
    println!(
        "\nconductance of the even-id community: {:.4}",
        out.ret.expect("returns conductance").as_f64()
    );
    Ok(())
}
