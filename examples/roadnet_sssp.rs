//! Shortest paths on a road-network-like grid, three ways: the generated
//! Pregel program, the hand-written Pregel baseline, and Dijkstra — with
//! the paper's structural claim (identical timesteps and network I/O
//! between generated and manual) checked live.
//!
//! ```text
//! cargo run --release --example roadnet_sssp
//! ```

use greenmarl::algorithms::{manual, reference, sources};
use greenmarl::prelude::*;
use std::collections::HashMap;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // A 200×200 grid with bidirectional streets and deterministic weights.
    let g = gen::grid(200, 200);
    let weights: Vec<i64> = (0..g.num_edges() as i64)
        .map(|i| 1 + (i * 7) % 10)
        .collect();
    let root = NodeId(0);
    println!(
        "road network: {} intersections, {} street segments",
        g.num_nodes(),
        g.num_edges()
    );

    // Generated from the 20-line Green-Marl program.
    let compiled = compile(sources::SSSP, &CompileOptions::default())?;
    let args = HashMap::from([
        ("root".to_owned(), ArgValue::Scalar(Value::Node(root.0))),
        (
            "len".to_owned(),
            ArgValue::EdgeProp(weights.iter().map(|&w| Value::Int(w)).collect()),
        ),
    ]);
    let t0 = std::time::Instant::now();
    let gen_out = run_compiled(&g, &compiled, &args, 0, &PregelConfig::default())?;
    let gen_time = t0.elapsed();

    // Hand-written Pregel.
    let t0 = std::time::Instant::now();
    let man_out = manual::run_sssp(&g, root, &weights, &PregelConfig::default())?;
    let man_time = t0.elapsed();

    // Sequential Dijkstra oracle.
    let oracle = reference::dijkstra(&g, root, &weights);

    let gen_dist: Vec<i64> = gen_out.node_props["dist"]
        .iter()
        .map(|v| v.as_int())
        .collect();
    assert_eq!(
        gen_dist, oracle,
        "generated distances disagree with Dijkstra"
    );
    assert_eq!(
        man_out.dist, oracle,
        "manual distances disagree with Dijkstra"
    );

    println!(
        "\nall three agree. far corner is {} units away.",
        oracle[oracle.len() - 1]
    );
    println!(
        "generated: {:>8.1?}  {} supersteps, {} bytes of messages",
        gen_time, gen_out.metrics.supersteps, gen_out.metrics.total_message_bytes
    );
    println!(
        "manual:    {:>8.1?}  {} supersteps, {} bytes of messages",
        man_time, man_out.metrics.supersteps, man_out.metrics.total_message_bytes
    );
    assert_eq!(gen_out.metrics.supersteps, man_out.metrics.supersteps);
    assert_eq!(
        gen_out.metrics.total_message_bytes,
        man_out.metrics.total_message_bytes
    );
    println!("\nstructural parity (paper §5.2): exact — same timesteps, same network I/O.");
    Ok(())
}
