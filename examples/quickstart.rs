//! Quickstart: compile a Green-Marl program and run it on the bundled
//! Pregel runtime.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use greenmarl::prelude::*;
use std::collections::HashMap;
use std::error::Error;

/// Count, for every vertex, how many of its followers (in-neighbors) are
/// "active" — written the natural shared-memory way. The compiler notices
/// the message-pulling access pattern, flips the edges, and produces a
/// push-style Pregel program.
const SRC: &str = "
Procedure active_followers(G: Graph, active: N_P<Bool>, cnt: N_P<Int>) : Int {
    Foreach (n: G.Nodes) {
        n.cnt = Count(t: n.InNbrs)(t.active);
    }
    Return Sum(n: G.Nodes){n.cnt};
}
";

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Compile: parse → type check → canonicalize (§4.1) → translate to
    //    a Pregel state machine (§3.1) → optimize (§4.2).
    let compiled = compile(SRC, &CompileOptions::default())?;
    println!("compiled `active_followers`:");
    println!("  transformations applied: {}", compiled.report);
    println!(
        "  state machine: {} vertex kernels, {} message type(s)",
        compiled.program.num_vertex_kernels(),
        compiled.program.num_message_types()
    );

    // 2. Build an input graph — a small power-law web — and mark every
    //    third vertex active.
    let g = gen::rmat(1_000, 8_000, 42);
    let active: Vec<Value> = (0..g.num_nodes())
        .map(|i| Value::Bool(i % 3 == 0))
        .collect();
    let args = HashMap::from([("active".to_owned(), ArgValue::NodeProp(active))]);

    // 3. Execute on the BSP runtime and look at the metrics the paper
    //    reports: timesteps and network I/O.
    let out = run_compiled(&g, &compiled, &args, 0, &PregelConfig::default())?;
    println!("\nexecution:");
    println!(
        "  total active-follower edges: {}",
        out.ret.expect("returns a sum")
    );
    println!("  supersteps: {}", out.metrics.supersteps);
    println!(
        "  messages:   {} ({} bytes)",
        out.metrics.total_messages, out.metrics.total_message_bytes
    );

    // 4. The generated GPS-style Java is available for inspection too.
    let java = greenmarl::core::javagen::emit_java(&compiled.program);
    println!(
        "\ngenerated GPS-style Java: {} lines (vs {} lines of Green-Marl)",
        greenmarl::core::javagen::count_loc(&java),
        SRC.lines().filter(|l| !l.trim().is_empty()).count()
    );
    Ok(())
}
