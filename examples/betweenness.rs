//! The paper's flagship demonstration (§5.1): Approximate Betweenness
//! Centrality — "whose manual Pregel implementation is prohibitively
//! difficult" — compiled automatically from 25 lines of Green-Marl into a
//! nine-kernel Pregel program, then validated against a sequential Brandes
//! oracle.
//!
//! ```text
//! cargo run --release --example betweenness
//! ```

use greenmarl::algorithms::{reference, sources};
use greenmarl::prelude::*;
use std::collections::HashMap;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let compiled = compile(sources::BC_APPROX, &CompileOptions::default())?;
    println!("Approximate Betweenness Centrality, compiled from Green-Marl:");
    println!("  transformations: {}", compiled.report);
    println!(
        "  generated machine: {} vertex kernels, {} message types{}",
        compiled.program.num_vertex_kernels(),
        compiled.program.num_message_types(),
        if compiled.program.uses_in_nbrs {
            " (+ in-neighbor preamble)"
        } else {
            ""
        }
    );

    let g = gen::rmat(5_000, 40_000, 7);
    let k = 8; // BFS rounds from random roots
    let seed = 123;
    let args = HashMap::from([("K".to_owned(), ArgValue::Scalar(Value::Int(k)))]);

    let start = std::time::Instant::now();
    let out = run_compiled(&g, &compiled, &args, seed, &PregelConfig::default())?;
    println!(
        "\nran K={k} rounds on {} vertices in {:.2?} ({} supersteps, {} messages)",
        g.num_nodes(),
        start.elapsed(),
        out.metrics.supersteps,
        out.metrics.total_messages
    );

    // Rank central vertices.
    let bc = &out.node_props["bc"];
    let mut ranked: Vec<(u32, f64)> = bc
        .iter()
        .enumerate()
        .map(|(i, v)| (i as u32, v.as_f64()))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nmost central vertices:");
    for (v, score) in ranked.iter().take(5) {
        println!("  vertex {v:>6}: bc {score:.2}");
    }

    // Cross-check against the sequential Brandes oracle (identical root
    // sequence thanks to the shared seed).
    let (_, ref_sum) = reference::bc_approx(&g, k, seed);
    let got = out.ret.expect("returns the bc sum").as_f64();
    println!("\nsum(bc) from Pregel:  {got:.6}");
    println!("sum(bc) from Brandes: {ref_sum:.6}");
    assert!((got - ref_sum).abs() <= 1e-9 * ref_sum.abs().max(1.0));
    println!("oracle check: exact match");
    Ok(())
}
