//! Compiler fuzzing with translation validation: generate random (but
//! well-typed) Green-Marl programs with proptest, then check that
//!
//! 1. the full pipeline compiles them (or rejects them with a diagnostic —
//!    never panics), with the PIR verifier re-checking the program after
//!    translation and after every optimization pass,
//! 2. the compiled Pregel execution matches the sequential interpreter
//!    bit-for-bit across the whole matrix: optimizations on/off ×
//!    {1, 2, 4} workers × a mid-run checkpoint/restore leg,
//! 3. the §4.2 optimizations never change results.
//!
//! The generator stays inside the Pregel-compatible subset on purpose:
//! vertex loops with neighborhood reads/writes (both push and pull forms,
//! exercising edge flipping and loop dissection), global reductions,
//! filters, and while loops with aggregate conditions.

use gm_core::seqinterp::{run_procedure, ArgValue};
use gm_core::value::Value;
use gm_core::{compile, CompileOptions};
use gm_graph::gen;
use gm_interp::run_compiled;
use gm_pregel::{CheckpointConfig, FaultPlan, PregelConfig, RecoveryPolicy};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};

use proptest::prelude::*;

/// Integer vertex properties available to generated programs.
const PROPS: [&str; 3] = ["pa", "pb", "pc"];

/// A random pure expression over integer scalars, rendered as source.
/// `iters` lists node variables whose properties may be read; `props`
/// restricts which properties (pulls must not read what they write —
/// that is a data race in Green-Marl; real programs double-buffer).
fn expr_strategy(iters: Vec<String>, props: Vec<usize>) -> impl Strategy<Value = String> {
    let leaf = {
        let iters = iters.clone();
        prop_oneof![
            (0i64..20).prop_map(|v| v.to_string()),
            (0..props.len(), 0..iters.len().max(1)).prop_map(move |(p, i)| {
                if iters.is_empty() {
                    "1".to_owned()
                } else {
                    format!("{}.{}", iters[i % iters.len()], PROPS[props[p]])
                }
            }),
        ]
    };
    leaf.prop_recursive(2, 8, 2, |inner| {
        (
            inner.clone(),
            prop_oneof![Just("+"), Just("-"), Just("*")],
            inner,
        )
            .prop_map(|(a, op, b)| format!("({a} {op} {b})"))
    })
}

/// A filter over one node variable (always boolean), reading only the
/// given properties.
fn filter_strategy(var: String, props: Vec<usize>) -> impl Strategy<Value = String> {
    (
        0..props.len(),
        0i64..10,
        prop_oneof![Just(">"), Just("<"), Just("==")],
    )
        .prop_map(move |(p, k, cmp)| format!("({}.{} % 7) {cmp} {k}", var, PROPS[props[p]]))
}

/// One vertex-parallel statement group.
#[derive(Debug, Clone)]
enum Piece {
    /// `Foreach (n)(f?) { n.prop op= expr(n); }`
    Local {
        prop: usize,
        filter: Option<String>,
        expr: String,
        reduce: bool,
    },
    /// Push: `Foreach (n) { Foreach (t: n.Nbrs)(f?) { t.prop += expr(n,t-own-reads-not-allowed→expr(n)); } }`
    Push {
        prop: usize,
        out_edges: bool,
        filter: Option<String>,
        expr: String,
    },
    /// Pull: `Foreach (n) { n.prop = Sum(t: n.InNbrs)(f?){expr(t)}; }`
    Pull {
        prop: usize,
        in_edges: bool,
        filter: Option<String>,
        expr: String,
    },
    /// Global reduction: `S += expr(n)` under a filter.
    Reduce {
        filter: Option<String>,
        expr: String,
    },
}

fn piece_strategy() -> impl Strategy<Value = Piece> {
    prop_oneof![
        (
            0..PROPS.len(),
            prop::option::of(filter_strategy("n".into(), vec![0, 1, 2])),
            expr_strategy(vec!["n".into()], vec![0, 1, 2]),
            any::<bool>()
        )
            .prop_map(|(prop, filter, expr, reduce)| Piece::Local {
                prop,
                filter,
                expr,
                reduce
            }),
        (
            0..PROPS.len(),
            any::<bool>(),
            prop::option::of(filter_strategy("t".into(), vec![0, 1, 2])),
            expr_strategy(vec!["n".into()], vec![0, 1, 2])
        )
            .prop_map(|(prop, out_edges, filter, expr)| Piece::Push {
                prop,
                out_edges,
                filter,
                expr
            }),
        // Pulls write PROPS[prop] but read (in body AND filter) only the
        // other two properties — reading what the region writes is a data
        // race in Green-Marl (real programs double-buffer, cf. SSSP).
        (0..PROPS.len(), any::<bool>())
            .prop_flat_map(|(prop, in_edges)| {
                let readable: Vec<usize> = (0..PROPS.len()).filter(|&p| p != prop).collect();
                (
                    prop::option::of(filter_strategy("t".into(), readable.clone())),
                    expr_strategy(vec!["t".into()], readable),
                )
                    .prop_map(move |(filter, expr)| (prop, in_edges, filter, expr))
            })
            .prop_map(|(prop, in_edges, filter, expr)| Piece::Pull {
                prop,
                in_edges,
                filter,
                expr
            }),
        (
            prop::option::of(filter_strategy("n".into(), vec![0, 1, 2])),
            expr_strategy(vec!["n".into()], vec![0, 1, 2])
        )
            .prop_map(|(filter, expr)| Piece::Reduce { filter, expr }),
    ]
}

/// Renders a whole program from the pieces, optionally wrapping the middle
/// section in a bounded While loop.
fn render(pieces: &[Piece], loop_rounds: Option<u8>) -> String {
    let mut body = String::new();
    let mut k = 0usize;
    for piece in pieces {
        k += 1;
        let f = |filt: &Option<String>, from: &str, to: String| {
            filt.as_ref()
                .map(|flt| format!("({})", flt.replace(from, &to)))
                .unwrap_or_default()
        };
        match piece {
            Piece::Local {
                prop,
                filter,
                expr,
                reduce,
            } => {
                let op = if *reduce { "+=" } else { "=" };
                body.push_str(&format!(
                    "    Foreach (n{k}: G.Nodes){} {{ n{k}.{} {op} {}; }}\n",
                    f(filter, "n.", format!("n{k}.")),
                    PROPS[*prop],
                    expr.replace("n.", &format!("n{k}.")),
                ));
            }
            Piece::Push {
                prop,
                out_edges,
                filter,
                expr,
            } => {
                let dir = if *out_edges { "Nbrs" } else { "InNbrs" };
                body.push_str(&format!(
                    "    Foreach (n{k}: G.Nodes) {{\n        Foreach (t{k}: n{k}.{dir}){} {{ t{k}.{} += {}; }}\n    }}\n",
                    f(filter, "t.", format!("t{k}.")),
                    PROPS[*prop],
                    expr.replace("n.", &format!("n{k}.")),
                ));
            }
            Piece::Pull {
                prop,
                in_edges,
                filter,
                expr,
            } => {
                let dir = if *in_edges { "InNbrs" } else { "Nbrs" };
                let filter_group = filter
                    .as_ref()
                    .map(|flt| format!("[{}]", flt.replace("t.", &format!("t{k}."))))
                    .unwrap_or_default();
                body.push_str(&format!(
                    "    Foreach (n{k}: G.Nodes) {{ n{k}.{} = Sum(t{k}: n{k}.{dir}){filter_group}{{{}}}; }}\n",
                    PROPS[*prop],
                    expr.replace("t.", &format!("t{k}.")),
                ));
            }
            Piece::Reduce { filter, expr } => {
                body.push_str(&format!(
                    "    Foreach (n{k}: G.Nodes){} {{ S += {}; }}\n",
                    f(filter, "n.", format!("n{k}.")),
                    expr.replace("n.", &format!("n{k}.")),
                ));
            }
        }
    }
    let body = match loop_rounds {
        Some(r) => format!(
            "    Int rounds = 0;\n    While (rounds < {r}) {{\n{body}        rounds += 1;\n    }}\n"
        ),
        None => body,
    };
    format!(
        "Procedure fuzz(G: Graph, pa, pb, pc: N_P<Int>) : Int {{\n    Int S = 0;\n{body}    Return S + Sum(z: G.Nodes){{z.pa + z.pb * 3 + z.pc * 7}};\n}}"
    )
}

fn initial_props(n: u32, salt: i64) -> HashMap<String, ArgValue> {
    let col = |mult: i64| -> ArgValue {
        ArgValue::NodeProp(
            (0..n as i64)
                .map(|i| Value::Int((i * mult + salt) % 23))
                .collect(),
        )
    };
    HashMap::from([
        ("pa".to_owned(), col(3)),
        ("pb".to_owned(), col(5)),
        ("pc".to_owned(), col(11)),
    ])
}

/// A unique, pre-cleaned snapshot directory per checkpoint leg.
fn fresh_ckpt_dir() -> std::path::PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gm-fuzz-ckpt-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The translation-validation harness: compile `pieces` with the PIR
/// verifier forced on (both optimized and unoptimized) and require the
/// Pregel execution to match the sequential interpreter bit-for-bit on
/// 1, 2, and 4 workers plus a leg that checkpoints every superstep,
/// kills worker 0 mid-run, and recovers from the snapshot.
fn check_translation_validation(
    pieces: &[Piece],
    rounds: Option<u8>,
    n: u32,
    m_per_n: usize,
    seed: u64,
) {
    let src = render(pieces, rounds);
    let g = gen::uniform_random(n, n as usize * m_per_n, seed);
    let args = initial_props(n, seed as i64);

    // Sequential oracle.
    let mut prog = gm_core::parser::parse(&src).unwrap_or_else(|e| {
        panic!(
            "generated program fails to parse:\n{}\n{src}",
            e.render(&src)
        )
    });
    gm_core::normalize::desugar_bulk(&mut prog);
    let infos = gm_core::sema::check(&mut prog)
        .unwrap_or_else(|e| panic!("generated program fails sema:\n{}\n{src}", e.render(&src)));
    let seq = run_procedure(&g, &prog.procedures[0], &infos[0], &args, 0).expect("sequential run");

    let agree = |out: &gm_interp::CompiledOutcome, leg: &str| {
        assert_eq!(seq.ret, out.ret, "{leg}: return differs\n{src}");
        for p in PROPS {
            assert_eq!(
                &seq.node_props[p], &out.node_props[p],
                "{leg}: property {p} differs\n{src}"
            );
        }
    };

    for opts in [
        CompileOptions::default().verified(),
        CompileOptions::unoptimized().verified(),
    ] {
        let tag = if opts.state_merging { "opt" } else { "unopt" };
        let compiled = compile(&src, &opts)
            .unwrap_or_else(|e| panic!("compile failed:\n{}\n{src}", e.render(&src)));
        for workers in [1usize, 2, 4] {
            let out = run_compiled(
                &g,
                &compiled,
                &args,
                0,
                &PregelConfig::with_workers(workers),
            )
            .expect("pregel run");
            agree(&out, &format!("{tag}/workers={workers}"));
        }
        // Checkpoint/restore leg: snapshot every superstep, panic worker 0
        // in superstep 1 (if the run gets that far), recover, and still
        // match the oracle exactly.
        let dir = fresh_ckpt_dir();
        let cfg = PregelConfig {
            checkpoint: Some(CheckpointConfig::new(dir.clone(), 1)),
            faults: FaultPlan::builder().panic_in_compute(1, Some(0)).build(),
            recovery: Some(RecoveryPolicy::with_max_restarts(2)),
            ..PregelConfig::with_workers(2)
        };
        let out = run_compiled(&g, &compiled, &args, 0, &cfg).expect("checkpointed pregel run");
        agree(&out, &format!("{tag}/ckpt-restore"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_programs_agree_with_the_oracle(
        pieces in prop::collection::vec(piece_strategy(), 1..5),
        rounds in prop::option::of(1u8..4),
        n in 2u32..40,
        m_per_n in 0usize..6,
        seed in 0u64..1000,
    ) {
        check_translation_validation(&pieces, rounds, n, m_per_n, seed);
    }
}

/// The shrunk seed from `compiler_fuzz.proptest-regressions`, promoted to
/// a deterministic named test: a pull-direction push (`InNbrs`) followed
/// by a plain local write inside a two-round `While` loop — a shape that
/// once diverged from the oracle. Pinning it here keeps the case covered
/// on every CI run without re-running the whole fuzz campaign.
#[test]
fn regression_push_innbrs_then_local_in_loop() {
    let pieces = [
        Piece::Push {
            prop: 1,
            out_edges: false,
            filter: None,
            expr: "((0 + n.pb) * (3 * n.pb))".to_owned(),
        },
        Piece::Local {
            prop: 0,
            filter: None,
            expr: "((n.pb + 0) * (n.pb * 7))".to_owned(),
            reduce: false,
        },
    ];
    check_translation_validation(&pieces, Some(2), 30, 5, 249);
}

/// Compact single-piece cases that pin each generator shape through the
/// full matrix deterministically (cheap enough for every CI run).
#[test]
fn regression_each_piece_shape_alone() {
    let shapes = [
        Piece::Local {
            prop: 2,
            filter: Some("(n.pa % 7) < 4".to_owned()),
            expr: "(n.pc + 3)".to_owned(),
            reduce: true,
        },
        Piece::Push {
            prop: 0,
            out_edges: true,
            filter: Some("(t.pb % 7) == 2".to_owned()),
            expr: "(n.pa * 2)".to_owned(),
        },
        Piece::Pull {
            prop: 1,
            in_edges: true,
            filter: Some("(t.pa % 7) > 1".to_owned()),
            expr: "(t.pc - 1)".to_owned(),
        },
        Piece::Reduce {
            filter: None,
            expr: "(n.pb + n.pc)".to_owned(),
        },
    ];
    for shape in shapes {
        check_translation_validation(std::slice::from_ref(&shape), Some(2), 12, 3, 7);
    }
}
