//! Property-based differential testing across the whole pipeline: for
//! random graphs and inputs, the sequential Green-Marl interpreter (the
//! reference semantics) and the compiled Pregel execution must agree —
//! exactly, floats included.

use gm_algorithms::sources;
use gm_core::seqinterp::{run_procedure, ArgValue, ExecOutcome};
use gm_core::value::Value;
use gm_core::{compile, CompileOptions, Compiled};
use gm_graph::{gen, Graph};
use gm_interp::{run_compiled, CompiledOutcome};
use gm_pregel::PregelConfig;
use proptest::prelude::*;
use std::collections::HashMap;

fn seq_run(g: &Graph, src: &str, args: &HashMap<String, ArgValue>, seed: u64) -> ExecOutcome {
    let mut prog = gm_core::parser::parse(src).expect("parse");
    gm_core::normalize::desugar_bulk(&mut prog);
    let infos = gm_core::sema::check(&mut prog).expect("sema");
    run_procedure(g, &prog.procedures[0], &infos[0], args, seed).expect("seq run")
}

fn pregel_run(
    g: &Graph,
    compiled: &Compiled,
    args: &HashMap<String, ArgValue>,
    seed: u64,
    workers: usize,
) -> CompiledOutcome {
    run_compiled(
        g,
        compiled,
        args,
        seed,
        &PregelConfig::with_workers(workers),
    )
    .expect("pregel run")
}

/// Compares the return value and all node properties the two sides share.
fn assert_agree(seq: &ExecOutcome, gen: &CompiledOutcome, tag: &str) {
    assert_eq!(seq.ret, gen.ret, "{tag}: return values differ");
    for (name, gen_vals) in &gen.node_props {
        if let Some(seq_vals) = seq.node_props.get(name) {
            assert_eq!(seq_vals, gen_vals, "{tag}: property `{name}` differs");
        }
    }
}

/// Runs one shrunk (n, m_per_n, seed) triple from
/// `differential.proptest-regressions` through the four algorithms whose
/// differential tests share that argument shape, so the historical
/// failure stays pinned deterministically on every CI run.
fn check_regression_seed(n: u32, m_per_n: usize, seed: u64) {
    let g = gen::uniform_random(n, n as usize * m_per_n, seed);

    let ages: Vec<Value> = (0..n as i64)
        .map(|i| Value::Int((i * 7 + seed as i64) % 60))
        .collect();
    let args = HashMap::from([
        ("age".to_owned(), ArgValue::NodeProp(ages)),
        ("K".to_owned(), ArgValue::Scalar(Value::Int(20))),
    ]);
    let compiled = compile(sources::AVG_TEEN, &CompileOptions::default().verified()).unwrap();
    let seq = seq_run(&g, sources::AVG_TEEN, &args, 0);
    let gen_out = pregel_run(&g, &compiled, &args, 0, 1 + (seed % 3) as usize);
    assert_agree(&seq, &gen_out, "avg_teen regression");

    let weights: Vec<Value> = (0..g.num_edges() as i64)
        .map(|i| Value::Int(1 + (i * 3 + seed as i64) % 17))
        .collect();
    let args = HashMap::from([
        (
            "root".to_owned(),
            ArgValue::Scalar(Value::Node(seed as u32 % n)),
        ),
        ("len".to_owned(), ArgValue::EdgeProp(weights)),
    ]);
    let compiled = compile(sources::SSSP, &CompileOptions::default().verified()).unwrap();
    let seq = seq_run(&g, sources::SSSP, &args, 0);
    let gen_out = pregel_run(&g, &compiled, &args, 0, 1 + (seed % 3) as usize);
    assert_agree(&seq, &gen_out, "sssp regression");

    let args = HashMap::from([
        ("e".to_owned(), ArgValue::Scalar(Value::Double(1e-4))),
        ("d".to_owned(), ArgValue::Scalar(Value::Double(0.85))),
        ("max_iter".to_owned(), ArgValue::Scalar(Value::Int(8))),
    ]);
    let compiled = compile(sources::PAGERANK, &CompileOptions::default().verified()).unwrap();
    let seq = seq_run(&g, sources::PAGERANK, &args, 0);
    let gen_out = pregel_run(&g, &compiled, &args, 0, 1);
    assert_agree(&seq, &gen_out, "pagerank regression");

    let member: Vec<Value> = (0..n as u64)
        .map(|i| Value::Bool((i + seed).is_multiple_of(3)))
        .collect();
    let args = HashMap::from([("member".to_owned(), ArgValue::NodeProp(member))]);
    let compiled = compile(sources::CONDUCTANCE, &CompileOptions::default().verified()).unwrap();
    let seq = seq_run(&g, sources::CONDUCTANCE, &args, 0);
    let gen_out = pregel_run(&g, &compiled, &args, 0, 1 + (seed % 3) as usize);
    assert_agree(&seq, &gen_out, "conductance regression");
}

/// Shrunk seed `n = 7, m_per_n = 3, seed = 1` from
/// `differential.proptest-regressions`, promoted to a named test.
#[test]
fn regression_seed_n7_m3_s1() {
    check_regression_seed(7, 3, 1);
}

/// Shrunk seed `n = 8, m_per_n = 5, seed = 61` from
/// `differential.proptest-regressions`, promoted to a named test.
#[test]
fn regression_seed_n8_m5_s61() {
    check_regression_seed(8, 5, 61);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn avg_teen_differential(n in 2u32..80, m_per_n in 1usize..8, seed in 0u64..500) {
        let g = gen::uniform_random(n, n as usize * m_per_n, seed);
        let ages: Vec<Value> = (0..n as i64).map(|i| Value::Int((i * 7 + seed as i64) % 60)).collect();
        let args = HashMap::from([
            ("age".to_owned(), ArgValue::NodeProp(ages)),
            ("K".to_owned(), ArgValue::Scalar(Value::Int(20))),
        ]);
        let compiled = compile(sources::AVG_TEEN, &CompileOptions::default()).unwrap();
        let seq = seq_run(&g, sources::AVG_TEEN, &args, 0);
        let gen_out = pregel_run(&g, &compiled, &args, 0, 1 + (seed % 3) as usize);
        assert_agree(&seq, &gen_out, "avg_teen");
    }

    #[test]
    fn sssp_differential(n in 2u32..80, m_per_n in 1usize..8, seed in 0u64..500) {
        let g = gen::uniform_random(n, n as usize * m_per_n, seed);
        let weights: Vec<Value> =
            (0..g.num_edges() as i64).map(|i| Value::Int(1 + (i * 3 + seed as i64) % 17)).collect();
        let args = HashMap::from([
            ("root".to_owned(), ArgValue::Scalar(Value::Node(seed as u32 % n))),
            ("len".to_owned(), ArgValue::EdgeProp(weights)),
        ]);
        let compiled = compile(sources::SSSP, &CompileOptions::default()).unwrap();
        let seq = seq_run(&g, sources::SSSP, &args, 0);
        let gen_out = pregel_run(&g, &compiled, &args, 0, 1 + (seed % 3) as usize);
        assert_agree(&seq, &gen_out, "sssp");
    }

    #[test]
    fn pagerank_differential(n in 2u32..60, m_per_n in 1usize..6, seed in 0u64..500) {
        let g = gen::uniform_random(n, n as usize * m_per_n, seed);
        let args = HashMap::from([
            ("e".to_owned(), ArgValue::Scalar(Value::Double(1e-4))),
            ("d".to_owned(), ArgValue::Scalar(Value::Double(0.85))),
            ("max_iter".to_owned(), ArgValue::Scalar(Value::Int(8))),
        ]);
        let compiled = compile(sources::PAGERANK, &CompileOptions::default()).unwrap();
        let seq = seq_run(&g, sources::PAGERANK, &args, 0);
        // Single worker: float global reductions are order-sensitive and
        // the sequential oracle accumulates in vertex order.
        let gen_out = pregel_run(&g, &compiled, &args, 0, 1);
        assert_agree(&seq, &gen_out, "pagerank");
    }

    #[test]
    fn conductance_differential(n in 2u32..80, m_per_n in 1usize..8, seed in 0u64..500) {
        let g = gen::uniform_random(n, n as usize * m_per_n, seed);
        let member: Vec<Value> = (0..n as u64).map(|i| Value::Bool((i + seed) % 3 == 0)).collect();
        let args = HashMap::from([("member".to_owned(), ArgValue::NodeProp(member))]);
        let compiled = compile(sources::CONDUCTANCE, &CompileOptions::default()).unwrap();
        let seq = seq_run(&g, sources::CONDUCTANCE, &args, 0);
        let gen_out = pregel_run(&g, &compiled, &args, 0, 1 + (seed % 3) as usize);
        assert_agree(&seq, &gen_out, "conductance");
    }

    #[test]
    fn bipartite_differential(left in 1u32..30, right in 1u32..30, m in 0usize..150, seed in 0u64..500) {
        let m = m.min(left as usize * right as usize * 2);
        let g = gen::bipartite(left, right, m, seed);
        let is_boy: Vec<Value> = (0..left + right).map(|i| Value::Bool(i < left)).collect();
        let args = HashMap::from([("is_boy".to_owned(), ArgValue::NodeProp(is_boy))]);
        let compiled = compile(sources::BIPARTITE_MATCHING, &CompileOptions::default()).unwrap();
        let seq = seq_run(&g, sources::BIPARTITE_MATCHING, &args, 0);
        let gen_out = pregel_run(&g, &compiled, &args, 0, 1 + (seed % 3) as usize);
        assert_agree(&seq, &gen_out, "bipartite");
    }

    #[test]
    fn bc_differential(n in 2u32..50, m_per_n in 1usize..6, seed in 0u64..300) {
        let g = gen::uniform_random(n, n as usize * m_per_n, seed);
        let args = HashMap::from([("K".to_owned(), ArgValue::Scalar(Value::Int(3)))]);
        let compiled = compile(sources::BC_APPROX, &CompileOptions::default()).unwrap();
        let seq = seq_run(&g, sources::BC_APPROX, &args, seed);
        // Single worker for the exact comparison: the procedure *returns* a
        // floating-point global sum, whose partial-sum order depends on the
        // worker partition (documented in gm_pregel::run).
        let gen_out = pregel_run(&g, &compiled, &args, seed, 1);
        assert_agree(&seq, &gen_out, "bc");
        // Multi-worker runs still match all per-vertex properties exactly;
        // only the returned float aggregate may differ by rounding.
        let multi = pregel_run(&g, &compiled, &args, seed, 3);
        for (name, vals) in &multi.node_props {
            // Compiler-introduced temporaries (_lev, _tp, ...) exist only
            // on the compiled side.
            if let Some(seq_vals) = seq.node_props.get(name) {
                prop_assert_eq!(seq_vals, vals, "bc prop {} (3 workers)", name);
            }
        }
        let (a, b) = (
            seq.ret.unwrap().as_f64(),
            multi.ret.unwrap().as_f64(),
        );
        prop_assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{} vs {}", a, b);
    }

    /// The optimizations must never change results — only timesteps.
    #[test]
    fn optimizations_preserve_semantics(n in 2u32..50, m_per_n in 1usize..6, seed in 0u64..300) {
        let g = gen::uniform_random(n, n as usize * m_per_n, seed);
        let weights: Vec<Value> =
            (0..g.num_edges() as i64).map(|i| Value::Int(1 + i % 9)).collect();
        let args = HashMap::from([
            ("root".to_owned(), ArgValue::Scalar(Value::Node(0))),
            ("len".to_owned(), ArgValue::EdgeProp(weights)),
        ]);
        let opt = compile(sources::SSSP, &CompileOptions::default()).unwrap();
        let unopt = compile(sources::SSSP, &CompileOptions::unoptimized()).unwrap();
        let a = pregel_run(&g, &opt, &args, 0, 1);
        let b = pregel_run(&g, &unopt, &args, 0, 1);
        prop_assert_eq!(&a.node_props["dist"], &b.node_props["dist"]);
        // And the optimized machine is never slower in timesteps.
        prop_assert!(a.metrics.supersteps <= b.metrics.supersteps);
    }
}
