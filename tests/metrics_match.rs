//! Reproduction of the paper's §5.2 structural claim:
//!
//! > "The compiler-generated programs took the exact same number of
//! > timesteps and incurred the exact same network I/O as the manually
//! > coded Pregel programs."
//!
//! For every (algorithm × graph) pair of Figure 6 the generated and manual
//! executions must agree on supersteps, message counts, message bytes —
//! and, since the substrate is deterministic, on results bit-for-bit.

use gm_algorithms::{manual, sources};
use gm_core::seqinterp::ArgValue;
use gm_core::value::Value;
use gm_core::{compile, CompileOptions};
use gm_graph::{gen, Graph, NodeId};
use gm_interp::run_compiled;
use gm_pregel::{Metrics, PregelConfig};
use std::collections::HashMap;

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("twitter-like", gen::rmat(600, 4000, 42)),
        ("uniform", gen::uniform_random(600, 4000, 42)),
        ("web-like", gen::web_copying(600, 7, 0.5, 42)),
    ]
}

fn assert_metrics_match(tag: &str, generated: &Metrics, manual: &Metrics) {
    assert_eq!(
        generated.supersteps, manual.supersteps,
        "{tag}: supersteps differ"
    );
    assert_eq!(
        generated.total_messages, manual.total_messages,
        "{tag}: message counts differ"
    );
    assert_eq!(
        generated.total_message_bytes, manual.total_message_bytes,
        "{tag}: network I/O differs"
    );
}

#[test]
fn avg_teen_parity() {
    let compiled = compile(sources::AVG_TEEN, &CompileOptions::default()).unwrap();
    for (name, g) in graphs() {
        let n = g.num_nodes();
        let ages: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 85).collect();
        let args = HashMap::from([
            (
                "age".to_owned(),
                ArgValue::NodeProp(ages.iter().map(|&a| Value::Int(a)).collect()),
            ),
            ("K".to_owned(), ArgValue::Scalar(Value::Int(25))),
        ]);
        let gen_out = run_compiled(&g, &compiled, &args, 0, &PregelConfig::sequential()).unwrap();
        let man_out = manual::run_avg_teen(&g, &ages, 25, &PregelConfig::sequential()).unwrap();
        assert_metrics_match(
            &format!("avg_teen/{name}"),
            &gen_out.metrics,
            &man_out.metrics,
        );
        let gen_cnt: Vec<i64> = gen_out.node_props["teen_cnt"]
            .iter()
            .map(|v| v.as_int())
            .collect();
        assert_eq!(gen_cnt, man_out.teen_cnt, "{name}: counts differ");
        assert_eq!(
            gen_out.ret,
            Some(Value::Double(man_out.avg)),
            "{name}: avg differs"
        );
    }
}

#[test]
fn pagerank_parity() {
    let compiled = compile(sources::PAGERANK, &CompileOptions::default()).unwrap();
    for (name, g) in graphs() {
        let args = HashMap::from([
            ("e".to_owned(), ArgValue::Scalar(Value::Double(1e-6))),
            ("d".to_owned(), ArgValue::Scalar(Value::Double(0.85))),
            ("max_iter".to_owned(), ArgValue::Scalar(Value::Int(15))),
        ]);
        let gen_out = run_compiled(&g, &compiled, &args, 0, &PregelConfig::sequential()).unwrap();
        let man_out =
            manual::run_pagerank(&g, 1e-6, 0.85, 15, &PregelConfig::sequential()).unwrap();
        assert_metrics_match(
            &format!("pagerank/{name}"),
            &gen_out.metrics,
            &man_out.metrics,
        );
        let gen_pr: Vec<f64> = gen_out.node_props["pr"]
            .iter()
            .map(|v| v.as_f64())
            .collect();
        assert_eq!(gen_pr, man_out.pr, "{name}: pr differs");
    }
}

#[test]
fn conductance_parity() {
    let compiled = compile(sources::CONDUCTANCE, &CompileOptions::default()).unwrap();
    for (name, g) in graphs() {
        let n = g.num_nodes();
        let member: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let args = HashMap::from([(
            "member".to_owned(),
            ArgValue::NodeProp(member.iter().map(|&b| Value::Bool(b)).collect()),
        )]);
        let gen_out = run_compiled(&g, &compiled, &args, 0, &PregelConfig::sequential()).unwrap();
        let man_out = manual::run_conductance(&g, &member, &PregelConfig::sequential()).unwrap();
        assert_metrics_match(
            &format!("conductance/{name}"),
            &gen_out.metrics,
            &man_out.metrics,
        );
        assert_eq!(
            gen_out.ret,
            Some(Value::Double(man_out.conductance)),
            "{name}: conductance differs"
        );
    }
}

#[test]
fn sssp_parity() {
    let compiled = compile(sources::SSSP, &CompileOptions::default()).unwrap();
    for (name, g) in graphs() {
        let m = g.num_edges();
        let weights: Vec<i64> = (0..m as i64).map(|i| 1 + (i * 13) % 31).collect();
        let args = HashMap::from([
            ("root".to_owned(), ArgValue::Scalar(Value::Node(1))),
            (
                "len".to_owned(),
                ArgValue::EdgeProp(weights.iter().map(|&w| Value::Int(w)).collect()),
            ),
        ]);
        let gen_out = run_compiled(&g, &compiled, &args, 0, &PregelConfig::sequential()).unwrap();
        let man_out =
            manual::run_sssp(&g, NodeId(1), &weights, &PregelConfig::sequential()).unwrap();
        assert_metrics_match(&format!("sssp/{name}"), &gen_out.metrics, &man_out.metrics);
        let gen_dist: Vec<i64> = gen_out.node_props["dist"]
            .iter()
            .map(|v| v.as_int())
            .collect();
        assert_eq!(gen_dist, man_out.dist, "{name}: distances differ");
    }
}

#[test]
fn bipartite_parity() {
    let compiled = compile(sources::BIPARTITE_MATCHING, &CompileOptions::default()).unwrap();
    let g = gen::bipartite(300, 300, 2400, 42);
    let is_boy: Vec<bool> = (0..600).map(|i| i < 300).collect();
    let args = HashMap::from([(
        "is_boy".to_owned(),
        ArgValue::NodeProp(is_boy.iter().map(|&b| Value::Bool(b)).collect()),
    )]);
    let gen_out = run_compiled(&g, &compiled, &args, 0, &PregelConfig::sequential()).unwrap();
    let man_out = manual::run_bipartite_matching(&g, &is_boy, &PregelConfig::sequential()).unwrap();
    assert_metrics_match("bipartite", &gen_out.metrics, &man_out.metrics);
    let gen_match: Vec<u32> = gen_out.node_props["match"]
        .iter()
        .map(|v| v.as_node())
        .collect();
    assert_eq!(gen_match, man_out.matching, "matchings differ");
    assert_eq!(gen_out.ret, Some(Value::Int(man_out.pairs)));
}
