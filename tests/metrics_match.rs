//! Reproduction of the paper's §5.2 structural claim:
//!
//! > "The compiler-generated programs took the exact same number of
//! > timesteps and incurred the exact same network I/O as the manually
//! > coded Pregel programs."
//!
//! For every (algorithm × graph) pair of Figure 6 the generated and manual
//! executions must agree on supersteps, message counts, message bytes —
//! and, since the substrate is deterministic, on results bit-for-bit.
//!
//! A second invariant rides on top: those structural counters belong to
//! the compiled program, not to the execution schedule, so they must not
//! move with the worker count either — and the runtime's trace must agree
//! with the metrics about them.

use gm_algorithms::{manual, sources};
use gm_core::seqinterp::ArgValue;
use gm_core::value::Value;
use gm_core::{compile, CompileOptions};
use gm_graph::{gen, Graph, NodeId};
use gm_interp::run_compiled;
use gm_obs::Tracer;
use gm_pregel::{Metrics, PregelConfig};
use std::collections::HashMap;

fn graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("twitter-like", gen::rmat(600, 4000, 42)),
        ("uniform", gen::uniform_random(600, 4000, 42)),
        ("web-like", gen::web_copying(600, 7, 0.5, 42)),
    ]
}

fn assert_metrics_match(tag: &str, generated: &Metrics, manual: &Metrics) {
    assert_eq!(
        generated.supersteps, manual.supersteps,
        "{tag}: supersteps differ"
    );
    assert_eq!(
        generated.total_messages, manual.total_messages,
        "{tag}: message counts differ"
    );
    assert_eq!(
        generated.total_message_bytes, manual.total_message_bytes,
        "{tag}: network I/O differs"
    );
}

#[test]
fn avg_teen_parity() {
    let compiled = compile(sources::AVG_TEEN, &CompileOptions::default()).unwrap();
    for (name, g) in graphs() {
        let n = g.num_nodes();
        let ages: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 85).collect();
        let args = HashMap::from([
            (
                "age".to_owned(),
                ArgValue::NodeProp(ages.iter().map(|&a| Value::Int(a)).collect()),
            ),
            ("K".to_owned(), ArgValue::Scalar(Value::Int(25))),
        ]);
        let gen_out = run_compiled(&g, &compiled, &args, 0, &PregelConfig::sequential()).unwrap();
        let man_out = manual::run_avg_teen(&g, &ages, 25, &PregelConfig::sequential()).unwrap();
        assert_metrics_match(
            &format!("avg_teen/{name}"),
            &gen_out.metrics,
            &man_out.metrics,
        );
        let gen_cnt: Vec<i64> = gen_out.node_props["teen_cnt"]
            .iter()
            .map(|v| v.as_int())
            .collect();
        assert_eq!(gen_cnt, man_out.teen_cnt, "{name}: counts differ");
        assert_eq!(
            gen_out.ret,
            Some(Value::Double(man_out.avg)),
            "{name}: avg differs"
        );
    }
}

#[test]
fn pagerank_parity() {
    let compiled = compile(sources::PAGERANK, &CompileOptions::default()).unwrap();
    for (name, g) in graphs() {
        let args = HashMap::from([
            ("e".to_owned(), ArgValue::Scalar(Value::Double(1e-6))),
            ("d".to_owned(), ArgValue::Scalar(Value::Double(0.85))),
            ("max_iter".to_owned(), ArgValue::Scalar(Value::Int(15))),
        ]);
        let gen_out = run_compiled(&g, &compiled, &args, 0, &PregelConfig::sequential()).unwrap();
        let man_out =
            manual::run_pagerank(&g, 1e-6, 0.85, 15, &PregelConfig::sequential()).unwrap();
        assert_metrics_match(
            &format!("pagerank/{name}"),
            &gen_out.metrics,
            &man_out.metrics,
        );
        let gen_pr: Vec<f64> = gen_out.node_props["pr"]
            .iter()
            .map(|v| v.as_f64())
            .collect();
        assert_eq!(gen_pr, man_out.pr, "{name}: pr differs");
    }
}

#[test]
fn conductance_parity() {
    let compiled = compile(sources::CONDUCTANCE, &CompileOptions::default()).unwrap();
    for (name, g) in graphs() {
        let n = g.num_nodes();
        let member: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let args = HashMap::from([(
            "member".to_owned(),
            ArgValue::NodeProp(member.iter().map(|&b| Value::Bool(b)).collect()),
        )]);
        let gen_out = run_compiled(&g, &compiled, &args, 0, &PregelConfig::sequential()).unwrap();
        let man_out = manual::run_conductance(&g, &member, &PregelConfig::sequential()).unwrap();
        assert_metrics_match(
            &format!("conductance/{name}"),
            &gen_out.metrics,
            &man_out.metrics,
        );
        assert_eq!(
            gen_out.ret,
            Some(Value::Double(man_out.conductance)),
            "{name}: conductance differs"
        );
    }
}

#[test]
fn sssp_parity() {
    let compiled = compile(sources::SSSP, &CompileOptions::default()).unwrap();
    for (name, g) in graphs() {
        let m = g.num_edges();
        let weights: Vec<i64> = (0..m as i64).map(|i| 1 + (i * 13) % 31).collect();
        let args = HashMap::from([
            ("root".to_owned(), ArgValue::Scalar(Value::Node(1))),
            (
                "len".to_owned(),
                ArgValue::EdgeProp(weights.iter().map(|&w| Value::Int(w)).collect()),
            ),
        ]);
        let gen_out = run_compiled(&g, &compiled, &args, 0, &PregelConfig::sequential()).unwrap();
        let man_out =
            manual::run_sssp(&g, NodeId(1), &weights, &PregelConfig::sequential()).unwrap();
        assert_metrics_match(&format!("sssp/{name}"), &gen_out.metrics, &man_out.metrics);
        let gen_dist: Vec<i64> = gen_out.node_props["dist"]
            .iter()
            .map(|v| v.as_int())
            .collect();
        assert_eq!(gen_dist, man_out.dist, "{name}: distances differ");
    }
}

/// Supersteps and network I/O for all five Figure 6 algorithms are
/// invariant across 1/2/4/8 workers, and the in-memory trace captured
/// during each run agrees with the metrics: one superstep span per
/// executed superstep (the final halt step is master-only) and one
/// compute span per worker per executed superstep.
#[test]
fn counters_are_worker_count_invariant_and_match_the_trace() {
    let g = gen::rmat(600, 4000, 42);
    let bip = gen::bipartite(300, 300, 2400, 42);
    let n = g.num_nodes();
    let ages: Vec<Value> = (0..n as i64).map(|i| Value::Int((i * 37) % 85)).collect();
    let member: Vec<Value> = (0..n).map(|i| Value::Bool(i % 3 == 0)).collect();
    let weights: Vec<Value> = (0..g.num_edges() as i64)
        .map(|i| Value::Int(1 + (i * 13) % 31))
        .collect();
    let is_boy: Vec<Value> = (0..600).map(|i| Value::Bool(i < 300)).collect();

    let cases: Vec<(&str, &str, &Graph, HashMap<String, ArgValue>)> = vec![
        (
            "avg_teen",
            sources::AVG_TEEN,
            &g,
            HashMap::from([
                ("age".to_owned(), ArgValue::NodeProp(ages)),
                ("K".to_owned(), ArgValue::Scalar(Value::Int(25))),
            ]),
        ),
        (
            "pagerank",
            sources::PAGERANK,
            &g,
            HashMap::from([
                ("e".to_owned(), ArgValue::Scalar(Value::Double(1e-6))),
                ("d".to_owned(), ArgValue::Scalar(Value::Double(0.85))),
                ("max_iter".to_owned(), ArgValue::Scalar(Value::Int(15))),
            ]),
        ),
        (
            "conductance",
            sources::CONDUCTANCE,
            &g,
            HashMap::from([("member".to_owned(), ArgValue::NodeProp(member))]),
        ),
        (
            "sssp",
            sources::SSSP,
            &g,
            HashMap::from([
                ("root".to_owned(), ArgValue::Scalar(Value::Node(1))),
                ("len".to_owned(), ArgValue::EdgeProp(weights)),
            ]),
        ),
        (
            "bipartite",
            sources::BIPARTITE_MATCHING,
            &bip,
            HashMap::from([("is_boy".to_owned(), ArgValue::NodeProp(is_boy))]),
        ),
    ];

    for (tag, src, graph, args) in cases {
        let compiled = compile(src, &CompileOptions::default()).unwrap();
        let mut base: Option<(u32, u64, u64)> = None;
        for workers in [1usize, 2, 4, 8] {
            let (tracer, sink) = Tracer::in_memory();
            let cfg = PregelConfig::with_workers(workers).with_tracer(tracer);
            let out = run_compiled(graph, &compiled, &args, 0, &cfg).unwrap();
            let m = &out.metrics;
            match base {
                None => base = Some((m.supersteps, m.total_messages, m.total_message_bytes)),
                Some((steps, msgs, bytes)) => {
                    assert_eq!(
                        m.supersteps, steps,
                        "{tag}: supersteps moved at workers = {workers}"
                    );
                    assert_eq!(
                        m.total_messages, msgs,
                        "{tag}: message count moved at workers = {workers}"
                    );
                    assert_eq!(
                        m.total_message_bytes, bytes,
                        "{tag}: network I/O moved at workers = {workers}"
                    );
                }
            }
            let events = sink.events();
            let step_spans = events.iter().filter(|e| e.name == "superstep").count() as u32;
            assert_eq!(
                step_spans + 1,
                m.supersteps,
                "{tag}: trace disagrees with metrics at workers = {workers}"
            );
            let computes = events.iter().filter(|e| e.name == "compute").count();
            assert_eq!(
                computes,
                workers * step_spans as usize,
                "{tag}: missing per-worker compute spans at workers = {workers}"
            );
            assert!(
                events.iter().all(|e| (e.tid as usize) <= workers),
                "{tag}: trace thread ids out of range at workers = {workers}"
            );
        }
    }
}

#[test]
fn bipartite_parity() {
    let compiled = compile(sources::BIPARTITE_MATCHING, &CompileOptions::default()).unwrap();
    let g = gen::bipartite(300, 300, 2400, 42);
    let is_boy: Vec<bool> = (0..600).map(|i| i < 300).collect();
    let args = HashMap::from([(
        "is_boy".to_owned(),
        ArgValue::NodeProp(is_boy.iter().map(|&b| Value::Bool(b)).collect()),
    )]);
    let gen_out = run_compiled(&g, &compiled, &args, 0, &PregelConfig::sequential()).unwrap();
    let man_out = manual::run_bipartite_matching(&g, &is_boy, &PregelConfig::sequential()).unwrap();
    assert_metrics_match("bipartite", &gen_out.metrics, &man_out.metrics);
    let gen_match: Vec<u32> = gen_out.node_props["match"]
        .iter()
        .map(|v| v.as_node())
        .collect();
    assert_eq!(gen_match, man_out.matching, "matchings differ");
    assert_eq!(gen_out.ret, Some(Value::Int(man_out.pairs)));
}
