//! Cross-crate end-to-end tests: feature-combining Green-Marl programs
//! through the full pipeline (compile → BSP execution), worker-count
//! invariance, and the generated-Java artifact.

use gm_core::seqinterp::ArgValue;
use gm_core::value::Value;
use gm_core::{compile, CompileOptions};
use gm_graph::{gen, GraphBuilder};
use gm_interp::run_compiled;
use gm_pregel::PregelConfig;
use std::collections::HashMap;

fn run_ret(src: &str, g: &gm_graph::Graph, args: HashMap<String, ArgValue>) -> Option<Value> {
    let compiled = compile(src, &CompileOptions::default())
        .unwrap_or_else(|e| panic!("compile failed:\n{}", e.render(src)));
    run_compiled(g, &compiled, &args, 0, &PregelConfig::sequential())
        .expect("runs")
        .ret
}

#[test]
fn triangle_like_two_hop_count() {
    // Count 2-hop paths: each vertex pushes its out-degree to neighbors.
    let src = "Procedure two_hop(G: Graph, d: N_P<Int>) : Int {
        Foreach (n: G.Nodes) {
            Foreach (t: n.Nbrs) {
                t.d += n.Degree();
            }
        }
        Return Sum(n: G.Nodes){n.d} - G.NumEdges() * 0;
    }";
    let g = gen::complete(4); // every vertex: deg 3, receives 3 × 3
    assert_eq!(run_ret(src, &g, HashMap::new()), Some(Value::Int(4 * 9)));
}

#[test]
fn nested_while_loops_compile_and_run() {
    let src = "Procedure waves(G: Graph, x: N_P<Int>) : Int {
        Int outer = 0;
        Int total = 0;
        While (outer < 3) {
            Int inner = 0;
            While (inner < 2) {
                Foreach (n: G.Nodes) {
                    n.x += 1;
                }
                inner += 1;
            }
            outer += 1;
        }
        total = Sum(n: G.Nodes){n.x};
        Return total;
    }";
    let g = gen::path(5);
    assert_eq!(run_ret(src, &g, HashMap::new()), Some(Value::Int(5 * 6)));
}

#[test]
fn branching_if_with_parallel_loops() {
    let src = "Procedure pick(G: Graph, x: N_P<Int>, flag: Bool) : Int {
        If (flag) {
            Foreach (n: G.Nodes) {
                n.x = 2;
            }
        } Else {
            Foreach (n: G.Nodes) {
                n.x = 5;
            }
        }
        Return Sum(n: G.Nodes){n.x};
    }";
    let g = gen::path(4);
    assert_eq!(
        run_ret(
            src,
            &g,
            HashMap::from([("flag".to_owned(), ArgValue::Scalar(Value::Bool(true)))])
        ),
        Some(Value::Int(8))
    );
    assert_eq!(
        run_ret(
            src,
            &g,
            HashMap::from([("flag".to_owned(), ArgValue::Scalar(Value::Bool(false)))])
        ),
        Some(Value::Int(20))
    );
}

#[test]
fn bfs_levels_via_compiled_program() {
    let src = "Procedure levels(G: Graph, root: Node, lev: N_P<Int>) {
        G.lev = 0 - 1;
        InBFS (v: G.Nodes From root) {
            v.lev = v.lev * 1;
        }
    }";
    // The traversal itself computes `_lev`; expose it by copying through a
    // second program that reports reachability instead.
    let reach_src = "Procedure reach(G: Graph, root: Node, seen: N_P<Bool>) : Int {
        InBFS (v: G.Nodes From root) {
            v.seen = True;
        }
        Return Count(n: G.Nodes)(n.seen);
    }";
    let _ = src;
    let mut b = GraphBuilder::new(6);
    b.extend([(0, 1), (1, 2), (2, 3), (4, 5)]); // 4,5 unreachable from 0
    let g = b.build();
    assert_eq!(
        run_ret(
            reach_src,
            &g,
            HashMap::from([("root".to_owned(), ArgValue::Scalar(Value::Node(0)))])
        ),
        Some(Value::Int(4))
    );
}

#[test]
fn pure_master_while_costs_no_vertex_supersteps() {
    // A loop with no vertex-parallel content runs entirely inside the
    // master's state chain: the whole program needs only the mandatory
    // vertex superstep(s) around it.
    let src = "Procedure collatz(G: Graph, start: Int) : Int {
        Int x = start;
        Int steps = 0;
        While (x != 1) {
            If (x % 2 == 0) {
                x = x / 2;
            } Else {
                x = x * 3 + 1;
            }
            steps += 1;
        }
        Return steps;
    }";
    let g = gen::path(3);
    let compiled = compile(src, &CompileOptions::default()).unwrap();
    let out = run_compiled(
        &g,
        &compiled,
        &HashMap::from([("start".to_owned(), ArgValue::Scalar(Value::Int(27)))]),
        0,
        &PregelConfig::sequential(),
    )
    .unwrap();
    assert_eq!(out.ret, Some(Value::Int(111))); // Collatz(27) takes 111 steps
    assert_eq!(out.metrics.supersteps, 1, "master-only work is free");
}

#[test]
fn worker_count_invariance_for_integer_algorithms() {
    let src = gm_algorithms::sources::SSSP;
    let g = gen::rmat(400, 3000, 9);
    let weights: Vec<Value> = (0..g.num_edges() as i64)
        .map(|i| Value::Int(1 + i % 12))
        .collect();
    let args = HashMap::from([
        ("root".to_owned(), ArgValue::Scalar(Value::Node(0))),
        ("len".to_owned(), ArgValue::EdgeProp(weights)),
    ]);
    let compiled = compile(src, &CompileOptions::default()).unwrap();
    let base = run_compiled(&g, &compiled, &args, 0, &PregelConfig::sequential()).unwrap();
    for workers in [2, 3, 4, 7] {
        let out = run_compiled(
            &g,
            &compiled,
            &args,
            0,
            &PregelConfig::with_workers(workers),
        )
        .unwrap();
        assert_eq!(
            out.node_props["dist"], base.node_props["dist"],
            "workers={workers}"
        );
        assert_eq!(out.metrics.supersteps, base.metrics.supersteps);
        assert_eq!(out.metrics.total_messages, base.metrics.total_messages);
        assert_eq!(
            out.metrics.total_message_bytes,
            base.metrics.total_message_bytes
        );
    }
}

#[test]
fn generated_java_is_emitted_for_all_six() {
    for (name, src) in gm_algorithms::sources::ALL {
        let compiled = compile(src, &CompileOptions::default()).unwrap();
        let java = gm_core::javagen::emit_java(&compiled.program);
        assert!(java.contains("class GMMaster"), "{name}");
        assert!(java.contains("class GMVertex"), "{name}");
        assert!(
            gm_core::javagen::count_loc(&java) > 50,
            "{name}: suspiciously small Java output"
        );
    }
}

#[test]
fn canonical_source_is_valid_green_marl() {
    // The §4.1 output is itself Green-Marl: it must re-parse, re-check and
    // re-compile to an equivalent program.
    for (name, src) in gm_algorithms::sources::ALL {
        let compiled = compile(src, &CompileOptions::default()).unwrap();
        let again =
            compile(&compiled.canonical_source, &CompileOptions::default()).unwrap_or_else(|e| {
                panic!(
                    "{name}: canonical form does not recompile:\n{}\n---\n{}",
                    e.render(&compiled.canonical_source),
                    compiled.canonical_source
                )
            });
        assert_eq!(
            compiled.program.num_vertex_kernels(),
            again.program.num_vertex_kernels(),
            "{name}: canonical recompile changed the machine"
        );
    }
}

#[test]
fn compile_errors_are_reported_not_panicked() {
    // Programs beyond the supported subset must produce diagnostics.
    let cases = [
        "Procedure f(G: Graph) { Return; }", // sema: missing ret ty is fine; this is ok
        "Procedure f(G: Graph, x: N_P<Int>, s: Node) : Int {
            Int v = s.x;
            Return v;
        }", // random read
        "Procedure f(G: Graph, x: N_P<Int>) {
            Foreach (n: G.Nodes) {
                Foreach (t: n.Nbrs) {
                    Foreach (u: t.Nbrs) {
                        u.x += 1;
                    }
                }
            }
        }", // triple nesting
    ];
    for (i, src) in cases.iter().enumerate().skip(1) {
        assert!(
            compile(src, &CompileOptions::default()).is_err(),
            "case {i} should fail to compile"
        );
    }
}
