//! A minimal JSON value model with a writer and a parser.
//!
//! The observability layer is deliberately zero-dependency, so it carries
//! its own JSON support: the writer backs the JSONL and Chrome Trace
//! exporters and [`Metrics::to_json`]-style exports in other crates; the
//! parser exists so tests can validate exporter output structurally
//! instead of by string comparison.
//!
//! Only the JSON subset the exporters produce is supported on the write
//! side (no lossless round-tripping of exotic floats); the parser accepts
//! any RFC 8259 document.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys are kept in insertion-independent sorted
/// order (`BTreeMap`) so emitted documents are deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers are carried as `f64` on the parse side; the writer has
    /// dedicated integer constructors that print without a decimal point.
    Num(f64),
    /// An integer written verbatim (no exponent, no decimal point).
    Int(i64),
    /// An unsigned integer written verbatim.
    UInt(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Obj(pairs.into_iter().collect())
    }

    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements of an array; `None` for other variants.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// String content; `None` for other variants.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content as `f64` (all three numeric variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::Int(n) => Some(*n as f64),
            Json::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// Numeric content as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            Json::UInt(n) => Some(*n),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    // JSON has no NaN/Infinity; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Serializes to a compact JSON string (via `to_string`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Writes `s` as a JSON string literal with the mandatory escapes.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our exporters;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_parse_roundtrips() {
        let doc = Json::obj([
            ("name".to_owned(), Json::Str("compute \"hot\"\n".to_owned())),
            ("ts".to_owned(), Json::UInt(u64::MAX)),
            ("dur".to_owned(), Json::Int(-3)),
            ("ratio".to_owned(), Json::Num(1.5)),
            ("ok".to_owned(), Json::Bool(true)),
            (
                "steps".to_owned(),
                Json::Arr(vec![Json::Int(1), Json::Null]),
            ),
        ]);
        let text = doc.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(
            back.get("name").unwrap().as_str().unwrap(),
            "compute \"hot\"\n"
        );
        assert_eq!(back.get("ts").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(back.get("ratio").unwrap().as_f64(), Some(1.5));
        assert_eq!(back.get("steps").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#" {"a": [1, 2.5, {"b": "A"}], "c": false} "#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("A"));
        assert_eq!(v.get("c"), Some(&Json::Bool(false)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("hello").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn control_characters_are_escaped() {
        let text = Json::Str("a\u{1}b".to_owned()).to_string();
        assert_eq!(text, "\"a\\u0001b\"");
        assert_eq!(parse(&text).unwrap().as_str(), Some("a\u{1}b"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
