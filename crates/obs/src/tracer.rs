//! The [`Tracer`] handle: a cheaply-cloneable front door to a sink.
//!
//! A `Tracer` pairs a trace **epoch** (the `Instant` all timestamps are
//! relative to) with a shared [`TraceSink`]. Instrumented code holds an
//! `Option<Tracer>`; the disabled path is a single `is_none()` branch, so
//! tracing costs nothing measurable when off (the `message_exchange`
//! Criterion bench guards this — see EXPERIMENTS.md).

use crate::event::{Category, Event, Field, Kind};
use crate::sink::{ChromeSink, JsonlSink, MemorySink, TeeSink, TraceSink};
use std::borrow::Cow;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// On-disk trace formats selectable from the CLI (`--trace-format`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceFormat {
    /// Line-delimited JSON, one event per line.
    #[default]
    Jsonl,
    /// Chrome Trace Event Format (`chrome://tracing`, Perfetto).
    Chrome,
}

impl std::str::FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" => Ok(TraceFormat::Jsonl),
            "chrome" => Ok(TraceFormat::Chrome),
            other => Err(format!("unknown trace format {other:?} (jsonl|chrome)")),
        }
    }
}

struct Inner {
    epoch: Instant,
    sink: Arc<dyn TraceSink>,
}

/// A handle for emitting trace events. Clones share the sink and epoch.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").finish_non_exhaustive()
    }
}

impl Tracer {
    /// A tracer over an arbitrary sink.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Tracer {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                sink,
            }),
        }
    }

    /// A tracer collecting into memory; returns the sink for inspection.
    pub fn in_memory() -> (Self, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        (Self::new(sink.clone()), sink)
    }

    /// A tracer streaming to `path` in the given format.
    pub fn to_file(path: impl AsRef<Path>, format: TraceFormat) -> io::Result<Self> {
        let sink: Arc<dyn TraceSink> = match format {
            TraceFormat::Jsonl => Arc::new(JsonlSink::create(path)?),
            TraceFormat::Chrome => Arc::new(ChromeSink::create(path)?),
        };
        Ok(Self::new(sink))
    }

    /// A tracer fanning into several `(path, format)` outputs at once.
    pub fn to_files<P: AsRef<Path>>(outputs: &[(P, TraceFormat)]) -> io::Result<Self> {
        let mut sinks: Vec<Box<dyn TraceSink>> = Vec::with_capacity(outputs.len());
        for (path, format) in outputs {
            sinks.push(match format {
                TraceFormat::Jsonl => Box::new(JsonlSink::create(path)?),
                TraceFormat::Chrome => Box::new(ChromeSink::create(path)?),
            });
        }
        Ok(Self::new(Arc::new(TeeSink::new(sinks))))
    }

    /// A tracer recording to this tracer's sink **and** `extra`, on the
    /// same epoch (timestamps from either handle stay comparable). Used by
    /// the runtime to tee a flight recorder alongside whatever sink the
    /// caller configured.
    pub fn with_extra_sink(&self, extra: Arc<dyn TraceSink>) -> Tracer {
        let tee = TeeSink::new(vec![Box::new(self.inner.sink.clone()), Box::new(extra)]);
        Tracer {
            inner: Arc::new(Inner {
                epoch: self.inner.epoch,
                sink: Arc::new(tee),
            }),
        }
    }

    /// Microseconds since the trace epoch.
    pub fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Records a raw event.
    pub fn emit(&self, event: Event) {
        self.inner.sink.record(&event);
    }

    /// Records a complete span that started at `start_us` and ends now.
    pub fn span(
        &self,
        name: impl Into<Cow<'static, str>>,
        cat: Category,
        tid: u32,
        start_us: u64,
        args: Vec<(&'static str, Field)>,
    ) {
        let now = self.now_us();
        self.emit(Event {
            name: name.into(),
            cat,
            kind: Kind::Span {
                dur_us: now.saturating_sub(start_us),
            },
            ts_us: start_us,
            tid,
            args,
        });
    }

    /// Records a span with an explicit duration (for re-emitting
    /// measurements taken elsewhere, e.g. inside worker threads or the
    /// compiler's pass timings).
    pub fn span_at(
        &self,
        name: impl Into<Cow<'static, str>>,
        cat: Category,
        tid: u32,
        start_us: u64,
        dur_us: u64,
        args: Vec<(&'static str, Field)>,
    ) {
        self.emit(Event {
            name: name.into(),
            cat,
            kind: Kind::Span { dur_us },
            ts_us: start_us,
            tid,
            args,
        });
    }

    /// Records a point-in-time marker.
    pub fn instant(
        &self,
        name: impl Into<Cow<'static, str>>,
        cat: Category,
        tid: u32,
        args: Vec<(&'static str, Field)>,
    ) {
        let now = self.now_us();
        self.emit(Event {
            name: name.into(),
            cat,
            kind: Kind::Instant,
            ts_us: now,
            tid,
            args,
        });
    }

    /// Records a counter sample; each arg becomes a series.
    pub fn counter(
        &self,
        name: impl Into<Cow<'static, str>>,
        cat: Category,
        args: Vec<(&'static str, Field)>,
    ) {
        let now = self.now_us();
        self.emit(Event {
            name: name.into(),
            cat,
            kind: Kind::Counter,
            ts_us: now,
            tid: 0,
            args,
        });
    }

    /// Flushes and finalizes the underlying sink. Call once, after the
    /// last event; returns any I/O error from the exporter.
    pub fn finish(&self) -> io::Result<()> {
        self.inner.sink.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_counters_reach_the_sink() {
        let (tracer, sink) = Tracer::in_memory();
        let t0 = tracer.now_us();
        tracer.span(
            "compute",
            Category::Runtime,
            1,
            t0,
            vec![("n", 3u64.into())],
        );
        tracer.counter("active", Category::Runtime, vec![("active", 9u64.into())]);
        tracer.instant("halt", Category::Runtime, 0, vec![]);
        tracer.finish().unwrap();
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "compute");
        assert!(events[0].dur_us().is_some());
        assert_eq!(events[1].arg("active").and_then(|f| f.as_u64()), Some(9));
        assert_eq!(events[2].kind, Kind::Instant);
    }

    #[test]
    fn clones_share_the_sink_and_epoch() {
        let (tracer, sink) = Tracer::in_memory();
        let clone = tracer.clone();
        clone.span_at("a", Category::Compiler, 0, 10, 5, vec![]);
        tracer.span_at("b", Category::Compiler, 0, 20, 5, vec![]);
        assert_eq!(sink.len(), 2);
        // Timestamps from either handle are on the same clock.
        assert!(clone.now_us() <= tracer.now_us() + 1_000_000);
    }

    #[test]
    fn extra_sink_sees_every_event_and_shares_the_epoch() {
        let (tracer, primary) = Tracer::in_memory();
        let extra = Arc::new(MemorySink::new());
        let teed = tracer.with_extra_sink(extra.clone());
        teed.span_at("a", Category::Runtime, 0, 1, 2, vec![]);
        tracer.span_at("b", Category::Runtime, 0, 3, 2, vec![]);
        // The primary sink saw both; the extra only what went through the
        // teed handle.
        assert_eq!(primary.len(), 2);
        assert_eq!(extra.len(), 1);
        assert_eq!(extra.events()[0].name, "a");
    }

    #[test]
    fn trace_format_parses() {
        assert_eq!("jsonl".parse::<TraceFormat>(), Ok(TraceFormat::Jsonl));
        assert_eq!("chrome".parse::<TraceFormat>(), Ok(TraceFormat::Chrome));
        assert!("xml".parse::<TraceFormat>().is_err());
    }
}
