//! Production metrics: a process-wide registry of counters, gauges, and
//! log-linear histograms with Prometheus text-format exposition.
//!
//! Tracing (the rest of this crate) answers *what happened, in order*;
//! metrics answer *how much and how fast, in aggregate* — the two views a
//! production graph service needs side by side. The registry is
//! zero-dependency like everything else here: metric handles are `Arc`s
//! over atomics, so recording is lock-free after registration, and the
//! only lock (a registry-level mutex) is taken at registration and
//! exposition time.
//!
//! * [`Counter`] — a monotonically increasing `u64` (events, bytes).
//! * [`Gauge`] — a settable `f64` (frontier density, resident bytes).
//! * [`Histogram`] — log-linear buckets (nine linear sub-buckets per
//!   decade) with p50/p90/p99 extraction; records `f64` observations,
//!   conventionally seconds.
//! * [`MetricsRegistry`] — the named family table. Families carry help
//!   text and a type; series within a family are distinguished by label
//!   sets, exactly like Prometheus.
//! * [`MetricsRegistry::render_prometheus`] — the standard text
//!   exposition format (`# HELP` / `# TYPE` / samples), servable over
//!   HTTP by [`serve`](crate::http::serve) or writable to a file.
//!
//! # Example
//!
//! ```
//! use gm_obs::metrics::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let h = registry.histogram("step_seconds", "superstep wall-clock");
//! h.observe(0.012);
//! h.observe(0.019);
//! assert!(h.quantile(0.5) > 0.0);
//! let text = registry.render_prometheus();
//! assert!(text.contains("# TYPE step_seconds histogram"));
//! ```

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What a metric family measures — the Prometheus `# TYPE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// A value that can go up and down.
    Gauge,
    /// A distribution in log-linear buckets.
    Histogram,
}

impl MetricKind {
    /// The string used in the exposition format.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A sorted label set, e.g. `[("phase", "compute")]`. Sorted so the same
/// labels in any order name the same series.
type LabelSet = Vec<(String, String)>;

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut set: LabelSet = labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect();
    set.sort();
    set
}

/// Renders `{k="v",…}`, or the empty string for the empty set.
fn render_labels(labels: &LabelSet, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// A monotonically increasing counter. Cloning shares the underlying
/// cell; recording is a relaxed atomic add.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable gauge carrying an `f64` (stored as bits in an atomic).
#[derive(Clone, Debug)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of linear sub-buckets per decade.
const SUBS_PER_DECADE: u64 = 9;
/// Decades covered: 10^MIN_EXP .. 10^(MAX_EXP+1). With observations in
/// seconds this spans 1µs to 1000s, plus an under- and an overflow bucket.
const MIN_EXP: i32 = -6;
const MAX_EXP: i32 = 2;

/// The log-linear bucket upper bounds: `m × 10^e` for `m` in `1..=9` and
/// `e` in `MIN_EXP..=MAX_EXP`, shared by every histogram.
fn boundaries() -> &'static [f64] {
    use std::sync::OnceLock;
    static BOUNDS: OnceLock<Vec<f64>> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut b = Vec::new();
        for e in MIN_EXP..=MAX_EXP {
            for m in 1..=SUBS_PER_DECADE {
                b.push(m as f64 * 10f64.powi(e));
            }
        }
        b
    })
}

/// A histogram over log-linear buckets (nine linear sub-buckets per
/// decade, 1e-6 to 1e3), with quantile extraction by linear interpolation
/// inside the landing bucket. Cloning shares the cells; recording is two
/// relaxed atomic adds and a CAS loop for the sum.
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

#[derive(Debug)]
struct HistogramCore {
    /// One count per boundary, plus a final overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations, as `f64` bits.
    sum_bits: AtomicU64,
    /// Largest observation seen, as `f64` bits (CAS-maximized; valid
    /// because recorded observations are clamped non-negative, where the
    /// IEEE-754 bit order matches the numeric order).
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            core: Arc::new(HistogramCore {
                buckets: (0..=boundaries().len())
                    .map(|_| AtomicU64::new(0))
                    .collect(),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
                max_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }
}

impl Histogram {
    /// Records one observation (conventionally seconds). Negative and NaN
    /// observations are clamped into the lowest bucket.
    pub fn observe(&self, v: f64) {
        let bounds = boundaries();
        let idx = bounds.partition_point(|b| *b < v);
        self.core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.core.count.fetch_add(1, Ordering::Relaxed);
        let add = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        let mut old = self.core.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(old) + add).to_bits();
            match self.core.sum_bits.compare_exchange_weak(
                old,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => old = cur,
            }
        }
        let mut old = self.core.max_bits.load(Ordering::Relaxed);
        while f64::from_bits(old) < add {
            match self.core.max_bits.compare_exchange_weak(
                old,
                add.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => old = cur,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }

    /// Largest observation recorded so far (0.0 when empty; negative and
    /// NaN observations count as 0.0, matching [`Histogram::observe`]).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.core.max_bits.load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`0.0..=1.0`), linearly interpolated inside the
    /// landing bucket. Returns 0.0 for an empty histogram; observations
    /// above the highest boundary report the highest boundary. The result
    /// is clamped to the largest observation actually recorded, so a
    /// single observation (or a single hot bucket) never reports its
    /// bucket's upper bound as a value that was never seen.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let bounds = boundaries();
        // Rank of the target observation, 1-based.
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.core.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let upper = bounds.get(i).copied().unwrap_or(bounds[bounds.len() - 1]);
                let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
                let into = (rank - seen) as f64 / n as f64;
                return (lower + (upper - lower) * into).min(self.max());
            }
            seen += n;
        }
        bounds[bounds.len() - 1].min(self.max())
    }

    /// p50 / p90 / p99, the triple the reporting surfaces print.
    pub fn percentiles(&self) -> (f64, f64, f64) {
        (self.quantile(0.5), self.quantile(0.9), self.quantile(0.99))
    }

    /// Snapshot of the non-empty buckets as `(upper_bound, cumulative)`
    /// pairs — cumulative counts, as the exposition format requires.
    fn cumulative(&self) -> Vec<(f64, u64)> {
        let bounds = boundaries();
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, bucket) in self.core.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            cum += n;
            // Keep the exposition compact: only boundaries where the
            // cumulative count changes, plus +Inf (added by the caller).
            if n > 0 && i < bounds.len() {
                out.push((bounds[i], cum));
            }
        }
        out
    }
}

/// One named series inside a family.
#[derive(Clone, Debug)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named metric family: help text, a kind, and the series by label set.
#[derive(Debug)]
struct Family {
    help: String,
    kind: MetricKind,
    series: BTreeMap<LabelSet, Series>,
}

/// The registry: the named families the process exposes. Cheap handles
/// ([`Counter`] / [`Gauge`] / [`Histogram`]) are returned at registration
/// and can be recorded to without touching the registry again.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn series(&self, name: &str, help: &str, kind: MetricKind, labels: &[(&str, &str)]) -> Series {
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = families.entry(name.to_owned()).or_insert_with(|| Family {
            help: help.to_owned(),
            kind,
            series: BTreeMap::new(),
        });
        debug_assert_eq!(
            family.kind, kind,
            "metric {name} re-registered with a different kind"
        );
        family
            .series
            .entry(label_set(labels))
            .or_insert_with(|| match kind {
                MetricKind::Counter => Series::Counter(Counter::default()),
                MetricKind::Gauge => Series::Gauge(Gauge::default()),
                MetricKind::Histogram => Series::Histogram(Histogram::default()),
            })
            .clone()
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a counter series with labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, MetricKind::Counter, labels) {
            Series::Counter(c) => c,
            _ => Counter::default(), // kind clash: hand back a detached cell
        }
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a gauge series with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, MetricKind::Gauge, labels) {
            Series::Gauge(g) => g,
            _ => Gauge::default(),
        }
    }

    /// Registers (or retrieves) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or retrieves) a histogram series with labels.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.series(name, help, MetricKind::Histogram, labels) {
            Series::Histogram(h) => h,
            _ => Histogram::default(),
        }
    }

    /// Renders every family in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP`, `# TYPE`, then one sample line per
    /// series — histograms as cumulative `_bucket{le=…}` samples plus
    /// `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.as_str()));
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, None),
                            c.get()
                        ));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(labels, None),
                            fmt_f64(g.get())
                        ));
                    }
                    Series::Histogram(h) => {
                        for (le, cum) in h.cumulative() {
                            out.push_str(&format!(
                                "{name}_bucket{} {cum}\n",
                                render_labels(labels, Some(("le", &fmt_f64(le)))),
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            render_labels(labels, Some(("le", "+Inf"))),
                            h.count()
                        ));
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            render_labels(labels, None),
                            fmt_f64(h.sum())
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            render_labels(labels, None),
                            h.count()
                        ));
                    }
                }
            }
        }
        out
    }

    /// The registry as a JSON value — the machine-readable snapshot
    /// embedded in post-mortem bundles. Histograms export count/sum plus
    /// p50/p90/p99.
    pub fn to_json_value(&self) -> Json {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut members = Vec::new();
        for (name, family) in families.iter() {
            let mut series_arr = Vec::new();
            for (labels, series) in &family.series {
                let labels_json = Json::obj(
                    labels
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone()))),
                );
                let value = match series {
                    Series::Counter(c) => Json::obj([("value".to_owned(), Json::UInt(c.get()))]),
                    Series::Gauge(g) => Json::obj([("value".to_owned(), Json::Num(g.get()))]),
                    Series::Histogram(h) => {
                        let (p50, p90, p99) = h.percentiles();
                        Json::obj([
                            ("count".to_owned(), Json::UInt(h.count())),
                            ("sum".to_owned(), Json::Num(h.sum())),
                            ("p50".to_owned(), Json::Num(p50)),
                            ("p90".to_owned(), Json::Num(p90)),
                            ("p99".to_owned(), Json::Num(p99)),
                        ])
                    }
                };
                series_arr.push(Json::obj([
                    ("labels".to_owned(), labels_json),
                    ("data".to_owned(), value),
                ]));
            }
            members.push((
                name.clone(),
                Json::obj([
                    ("help".to_owned(), Json::Str(family.help.clone())),
                    (
                        "type".to_owned(),
                        Json::Str(family.kind.as_str().to_owned()),
                    ),
                    ("series".to_owned(), Json::Arr(series_arr)),
                ]),
            ));
        }
        Json::obj(members)
    }

    /// [`MetricsRegistry::render_prometheus`] written to a file.
    pub fn write_prometheus(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render_prometheus())
    }
}

/// Formats an `f64` sample value: integral values without a decimal point
/// (matching Prometheus conventions), others with full precision.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = MetricsRegistry::new();
        let c = r.counter("jobs_total", "jobs run");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same cell.
        assert_eq!(r.counter("jobs_total", "jobs run").get(), 5);
        let g = r.gauge("density", "frontier density");
        g.set(0.25);
        assert_eq!(r.gauge("density", "frontier density").get(), 0.25);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let r = MetricsRegistry::new();
        let push = r.counter_with("steps_total", "supersteps", &[("direction", "push")]);
        let pull = r.counter_with("steps_total", "supersteps", &[("direction", "pull")]);
        push.add(3);
        pull.add(1);
        assert_eq!(push.get(), 3);
        assert_eq!(pull.get(), 1);
        // Label order does not matter.
        let same = r.counter_with("steps_total", "supersteps", &[("direction", "push")]);
        assert_eq!(same.get(), 3);
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_plausible() {
        let h = Histogram::default();
        for i in 1..=100 {
            h.observe(i as f64 * 1e-3); // 1ms .. 100ms
        }
        assert_eq!(h.count(), 100);
        assert!((h.sum() - 5.05).abs() < 1e-9);
        let (p50, p90, p99) = h.percentiles();
        assert!(p50 <= p90 && p90 <= p99);
        // p50 of 1..100ms lands mid-decade; interpolation keeps it within
        // a bucket of the true value.
        assert!(p50 > 0.03 && p50 < 0.07, "p50 = {p50}");
        assert!(p99 > 0.07 && p99 <= 0.1 + 1e-9, "p99 = {p99}");
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        h.observe(0.0); // clamps into the lowest bucket
        h.observe(5000.0); // above the top boundary
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.99) >= 900.0);
        assert_eq!(h.max(), 5000.0);
    }

    #[test]
    fn empty_histogram_reports_zero_for_every_quantile() {
        let h = Histogram::default();
        assert_eq!(h.percentiles(), (0.0, 0.0, 0.0));
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn single_observation_quantiles_never_exceed_the_observed_value() {
        // 0.042 lands in a (0.04, 0.05] bucket; before clamping, every
        // quantile interpolated to the bucket's upper bound 0.05 — a
        // latency that never happened.
        let h = Histogram::default();
        h.observe(0.042);
        let (p50, p90, p99) = h.percentiles();
        assert_eq!(p50, 0.042, "p50 must be the observation itself");
        assert_eq!(p90, 0.042);
        assert_eq!(p99, 0.042);
        assert_eq!(h.max(), 0.042);
    }

    #[test]
    fn single_hot_bucket_is_clamped_to_the_observed_max() {
        // Many observations in one bucket: high quantiles interpolate
        // toward the bucket's upper bound but must stop at the max.
        let h = Histogram::default();
        for _ in 0..100 {
            h.observe(0.0411);
        }
        h.observe(0.0437);
        let (p50, p90, p99) = h.percentiles();
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 <= 0.0437 + 1e-12, "p99 = {p99} above observed max");
        assert!(p50 > 0.04, "p50 = {p50} left its bucket");
    }

    #[test]
    fn negative_and_nan_observations_clamp_to_zero() {
        let h = Histogram::default();
        h.observe(-3.0);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.max(), 0.0);
        // Both land in the lowest bucket; the clamp pins the quantile to
        // the 0.0 they were recorded as, not the bucket's upper bound.
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn observed_max_is_cas_tracked_across_threads() {
        let h = Histogram::default();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.observe((t * 1000 + i) as f64 * 1e-6);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert!((h.max() - 3999e-6).abs() < 1e-12, "max = {}", h.max());
    }

    #[test]
    fn prometheus_rendering_is_parseable_shape() {
        let r = MetricsRegistry::new();
        r.counter("a_total", "a counter").add(2);
        r.gauge("b", "a gauge").set(1.5);
        let h = r.histogram_with("c_seconds", "a histogram", &[("phase", "compute")]);
        h.observe(0.002);
        h.observe(0.004);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP a_total a counter"));
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("a_total 2"));
        assert!(text.contains("b 1.5"));
        assert!(text.contains("# TYPE c_seconds histogram"));
        assert!(
            text.contains("c_seconds_bucket{le=\"+Inf\",phase=\"compute\"} 2")
                || text.contains("c_seconds_bucket{phase=\"compute\",le=\"+Inf\"} 2")
        );
        assert!(text.contains("c_seconds_count{phase=\"compute\"} 2"));
    }

    #[test]
    fn json_snapshot_exports_percentiles() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat_seconds", "latency");
        h.observe(0.01);
        let doc = crate::json::parse(&r.to_json_value().to_string()).unwrap();
        let fam = doc.get("lat_seconds").unwrap();
        assert_eq!(fam.get("type").unwrap().as_str(), Some("histogram"));
        let series = fam.get("series").unwrap().as_arr().unwrap();
        assert_eq!(
            series[0]
                .get("data")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert!(
            series[0]
                .get("data")
                .unwrap()
                .get("p50")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
    }
}
