//! A minimal, dependency-free HTTP server: a route table over a blocking
//! listener.
//!
//! This is deliberately not a web framework. A [`Router`] maps
//! `(method, path pattern)` pairs to handlers, [`Router::serve`] binds a
//! listener whose accept loop hands each connection to a short-lived
//! handler thread (so one stalled client can never wedge the accept loop —
//! every connection gets read/write timeouts before its first byte is
//! touched), and [`serve`] keeps the original single-route
//! metrics-endpoint API as a thin wrapper. It exists so `gmc run`,
//! `figure6`, and the `gmd` daemon can expose `/metrics`, `/healthz`, and
//! a small JSON job API from one listener with
//! `curl http://127.0.0.1:<port>/...`.
//!
//! ```no_run
//! use gm_obs::metrics::MetricsRegistry;
//! use std::sync::Arc;
//!
//! let registry = Arc::new(MetricsRegistry::new());
//! let server = gm_obs::http::serve("127.0.0.1:0", registry).unwrap();
//! println!("scrape http://{}/metrics", server.addr());
//! // server shuts down when dropped
//! ```

use crate::metrics::MetricsRegistry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection socket timeout: a client that stops sending (or stops
/// reading) is cut off after this long, releasing its handler thread.
const CONN_TIMEOUT: Duration = Duration::from_secs(5);
/// Header-section cap; requests with more header bytes are rejected.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Body cap (inline Green-Marl sources are a few KiB; this is generous).
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed HTTP request, as handed to route handlers.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path with the query string stripped.
    pub path: String,
    /// The query string after `?`, if any (not decoded).
    pub query: Option<String>,
    /// Request body (empty unless the client sent `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.body)
    }

    /// The path segment after `prefix`, for `/x/*` routes:
    /// `req.trailing("/v1/jobs/")` on `/v1/jobs/17` yields `Some("17")`.
    pub fn trailing<'a>(&'a self, prefix: &str) -> Option<&'a str> {
        self.path.strip_prefix(prefix)
    }
}

/// A response a handler returns.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Extra headers, written verbatim after `Content-Type`. Names must
    /// be valid header tokens; values must not contain CR/LF.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with an explicit status, content type, and body.
    pub fn new(status: u16, content_type: impl Into<String>, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: content_type.into(),
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Appends an extra response header (builder style).
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Sets a `Retry-After: <seconds>` header — backpressure responses
    /// (429/503) use it to tell clients when resubmitting is worthwhile.
    pub fn with_retry_after(self, seconds: u64) -> Response {
        self.with_header("Retry-After", seconds.to_string())
    }

    /// `200 OK` with `text/plain` content.
    pub fn ok_text(body: impl Into<String>) -> Response {
        Response::new(200, "text/plain; charset=utf-8", body.into().into_bytes())
    }

    /// `200 OK` with `application/json` content.
    pub fn ok_json(body: impl Into<String>) -> Response {
        Response::new(200, "application/json", body.into().into_bytes())
    }

    /// An `application/json` error body with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response::new(status, "application/json", body.into().into_bytes())
    }

    /// `404 Not Found`.
    pub fn not_found() -> Response {
        Response::new(404, "text/plain; charset=utf-8", b"not found\n".to_vec())
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Status",
        }
    }
}

/// A route handler. Handlers run on per-connection threads and must be
/// shareable; panics are caught and answered as a 500.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync + 'static>;

struct Route {
    method: &'static str,
    /// Exact path, or a prefix route ending in `/*` which matches any
    /// path extending the prefix.
    pattern: String,
    handler: Handler,
}

impl Route {
    fn matches_path(&self, path: &str) -> bool {
        match self.pattern.strip_suffix('*') {
            Some(prefix) => path.starts_with(prefix),
            None => self.pattern == path,
        }
    }
}

/// A method + path-pattern route table.
///
/// Dispatch picks the first route whose pattern matches the path *and*
/// whose method matches; a path that matches some route but no method
/// yields `405`, anything else `404`.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    /// An empty route table.
    pub fn new() -> Router {
        Router::default()
    }

    /// Adds a route. `pattern` is an exact path (`"/healthz"`) or a
    /// prefix ending in `/*` (`"/v1/jobs/*"`); handlers read the trailing
    /// segment via [`Request::trailing`].
    pub fn route(
        mut self,
        method: &'static str,
        pattern: impl Into<String>,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Router {
        self.routes.push(Route {
            method,
            pattern: pattern.into(),
            handler: Arc::new(handler),
        });
        self
    }

    fn dispatch(&self, req: &Request) -> Response {
        let mut path_matched = false;
        for route in &self.routes {
            if !route.matches_path(&req.path) {
                continue;
            }
            path_matched = true;
            if route.method == req.method {
                let handler = route.handler.clone();
                // A panicking handler must not kill the connection thread
                // silently; answer 500 and keep serving.
                return std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(req)))
                    .unwrap_or_else(|_| {
                        Response::new(
                            500,
                            "text/plain; charset=utf-8",
                            b"handler panicked\n".to_vec(),
                        )
                    });
            }
        }
        if path_matched {
            Response::new(
                405,
                "text/plain; charset=utf-8",
                b"method not allowed\n".to_vec(),
            )
        } else {
            Response::not_found()
        }
    }

    /// Binds `addr` (port 0 for ephemeral) and serves the route table
    /// until the returned server is dropped. Each accepted connection is
    /// handled on its own thread with socket timeouts, so a stalled or
    /// malicious client cannot block other requests.
    pub fn serve(self, addr: impl ToSocketAddrs) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let router = Arc::new(self);
        let handle = std::thread::Builder::new()
            .name("gm-http".to_owned())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::SeqCst) {
                        break;
                    }
                    // Serving is best-effort: a bad client must not take
                    // the endpoint down.
                    if let Ok(stream) = conn {
                        let router = router.clone();
                        let _ = std::thread::Builder::new()
                            .name("gm-http-conn".to_owned())
                            .spawn(move || {
                                let _ = handle_conn(stream, &router);
                            });
                    }
                }
            })?;
        Ok(HttpServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }
}

/// A running HTTP server. Dropping it stops the accept loop (in-flight
/// connection threads finish on their own, bounded by the socket
/// timeouts).
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// The metrics endpoint returned by [`serve`] — the same server type the
/// generic [`Router::serve`] produces.
pub type MetricsServer = HttpServer;

impl HttpServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and waits for it to exit.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:9090"`, port 0 for ephemeral) and serves
/// `registry` as Prometheus text exposition until the returned server is
/// dropped — the original single-route API, now a thin wrapper over
/// [`Router`].
pub fn serve(
    addr: impl ToSocketAddrs,
    registry: Arc<MetricsRegistry>,
) -> io::Result<MetricsServer> {
    let handler = move |_req: &Request| {
        Response::new(
            200,
            // The content type Prometheus scrapers expect for the text format.
            "text/plain; version=0.0.4; charset=utf-8",
            registry.render_prometheus().into_bytes(),
        )
    };
    let h2 = handler.clone();
    Router::new()
        .route("GET", "/metrics", handler)
        .route("GET", "/", h2)
        .serve(addr)
}

/// Reads one request (headers, then `Content-Length` bytes of body),
/// dispatches it, and writes the response. `Connection: close` semantics:
/// one request per connection.
fn handle_conn(mut stream: TcpStream, router: &Router) -> io::Result<()> {
    stream.set_read_timeout(Some(CONN_TIMEOUT))?;
    stream.set_write_timeout(Some(CONN_TIMEOUT))?;
    let response = match read_request(&mut stream) {
        Ok(req) => router.dispatch(&req),
        Err(ReadError::TooLarge) => Response::new(
            413,
            "text/plain; charset=utf-8",
            b"request too large\n".to_vec(),
        ),
        Err(ReadError::Malformed(m)) => Response::new(
            400,
            "text/plain; charset=utf-8",
            format!("bad request: {m}\n").into_bytes(),
        ),
        // Socket errors (timeouts included): nothing useful to answer.
        Err(ReadError::Io(e)) => return Err(e),
    };
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

enum ReadError {
    Io(io::Error),
    TooLarge,
    Malformed(String),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    // Read up to the end of the headers. Clients may deliver the request
    // in several small writes, so loop until the blank line (or the cap)
    // arrives.
    let mut buf = vec![0u8; MAX_HEAD_BYTES];
    let mut filled = 0;
    let head_end = loop {
        if let Some(pos) = buf[..filled].windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if filled == buf.len() {
            return Err(ReadError::TooLarge);
        }
        let n = stream.read(&mut buf[filled..])?;
        if n == 0 {
            return Err(ReadError::Malformed("truncated request".to_owned()));
        }
        filled += n;
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("empty request line".to_owned()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing request target".to_owned()))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
        None => (target.to_owned(), None),
    };
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::Malformed("bad Content-Length".to_owned()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge);
    }
    let mut body = buf[head_end..filled].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want])?;
        if n == 0 {
            return Err(ReadError::Malformed("truncated body".to_owned()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let request = format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n");
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_owned(), body.to_owned())
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let request = format!(
            "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn serves_metrics_and_404s_elsewhere() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("requests_total", "requests").add(7);
        let server = serve("127.0.0.1:0", registry.clone()).unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("requests_total 7"));

        // Live values: the next scrape sees the update.
        registry.counter("requests_total", "requests").add(1);
        let (_, body) = get(addr, "/");
        assert!(body.contains("requests_total 8"));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_stops_the_thread() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut server = serve("127.0.0.1:0", registry).unwrap();
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        drop(server);
        // The port is released: binding it again succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok());
    }

    #[test]
    fn router_dispatches_posts_with_bodies_and_wildcards() {
        let server = Router::new()
            .route("GET", "/healthz", |_| Response::ok_json("{\"ok\":true}"))
            .route("POST", "/v1/jobs", |req: &Request| {
                Response::ok_json(format!("{{\"echo\":{}}}", req.body_str().len()))
            })
            .route("GET", "/v1/jobs/*", |req: &Request| {
                let id = req.trailing("/v1/jobs/").unwrap_or("");
                Response::ok_text(format!("job {id}"))
            })
            .serve("127.0.0.1:0")
            .unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        assert_eq!(body, "{\"ok\":true}");

        let (head, body) = post(addr, "/v1/jobs", "{\"graph\":\"g\"}");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "{\"echo\":13}");

        let (_, body) = get(addr, "/v1/jobs/job-42");
        assert_eq!(body, "job job-42");

        // Wrong method on a known path: 405, unknown path: 404.
        let (head, _) = post(addr, "/healthz", "");
        assert!(head.starts_with("HTTP/1.1 405"), "{head}");
        let (head, _) = get(addr, "/v2/other");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }

    #[test]
    fn extra_headers_are_written_verbatim() {
        let server = Router::new()
            .route("GET", "/busy", |_| {
                Response::json(429, "{\"error\":\"busy\"}").with_retry_after(7)
            })
            .serve("127.0.0.1:0")
            .unwrap();
        let (head, body) = get(server.addr(), "/busy");
        assert!(head.starts_with("HTTP/1.1 429"), "{head}");
        assert!(head.contains("Retry-After: 7"), "{head}");
        assert_eq!(body, "{\"error\":\"busy\"}");
    }

    #[test]
    fn stalled_client_does_not_block_other_requests() {
        let server = Router::new()
            .route("GET", "/ping", |_| Response::ok_text("pong"))
            .serve("127.0.0.1:0")
            .unwrap();
        let addr = server.addr();

        // Open a connection and send *nothing*: with a single-threaded
        // accept-and-handle loop this would wedge the server for the
        // whole read timeout.
        let stall = TcpStream::connect(addr).unwrap();

        let start = std::time::Instant::now();
        let (head, body) = get(addr, "/ping");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "pong");
        assert!(
            start.elapsed() < CONN_TIMEOUT,
            "request behind a stalled client took {:?}",
            start.elapsed()
        );
        drop(stall);
    }

    #[test]
    fn handler_panic_becomes_500_and_server_survives() {
        let server = Router::new()
            .route("GET", "/boom", |_| -> Response { panic!("kaboom") })
            .route("GET", "/ok", |_| Response::ok_text("fine"))
            .serve("127.0.0.1:0")
            .unwrap();
        let addr = server.addr();
        let (head, _) = get(addr, "/boom");
        assert!(head.starts_with("HTTP/1.1 500"), "{head}");
        let (_, body) = get(addr, "/ok");
        assert_eq!(body, "fine");
    }

    #[test]
    fn oversized_and_malformed_requests_are_rejected() {
        let server = Router::new()
            .route("POST", "/x", |_| Response::ok_text("ok"))
            .serve("127.0.0.1:0")
            .unwrap();
        let addr = server.addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        let request = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    }
}
