//! A minimal, dependency-free HTTP endpoint serving Prometheus metrics.
//!
//! This is deliberately not a web framework: one listener thread, blocking
//! accepts, `GET /metrics` (or `/`) answered with the registry's text
//! exposition, everything else a 404. It exists so `gmc run`, `figure6`,
//! and the future `gmd` daemon can be scraped with
//! `curl http://127.0.0.1:<port>/metrics` or a real Prometheus server
//! while a job runs.
//!
//! ```no_run
//! use gm_obs::metrics::MetricsRegistry;
//! use std::sync::Arc;
//!
//! let registry = Arc::new(MetricsRegistry::new());
//! let server = gm_obs::http::serve("127.0.0.1:0", registry).unwrap();
//! println!("scrape http://{}/metrics", server.addr());
//! // server shuts down when dropped
//! ```

use crate::metrics::MetricsRegistry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running metrics endpoint. Dropping it stops the listener thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:9090"`, port 0 for ephemeral) and serves
/// `registry` as Prometheus text exposition until the returned server is
/// dropped.
pub fn serve(
    addr: impl ToSocketAddrs,
    registry: Arc<MetricsRegistry>,
) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let handle = std::thread::Builder::new()
        .name("gm-metrics-http".to_owned())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                // Serving is best-effort: a bad client must not take the
                // endpoint down.
                if let Ok(stream) = conn {
                    let _ = handle_conn(stream, &registry);
                }
            }
        })?;
    Ok(MetricsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

fn handle_conn(mut stream: TcpStream, registry: &MetricsRegistry) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read up to the end of the headers; we never need a body. Clients may
    // deliver the request in several small writes, so loop until the blank
    // line (or the cap) arrives.
    let mut buf = [0u8; 4096];
    let mut filled = 0;
    while filled < buf.len() {
        let n = stream.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
        if buf[..filled].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let request = String::from_utf8_lossy(&buf[..filled]);
    let mut parts = request.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_owned(),
        )
    } else if path == "/metrics" || path == "/" {
        (
            "200 OK",
            // The content type Prometheus scrapers expect for the text format.
            "text/plain; version=0.0.4; charset=utf-8",
            registry.render_prometheus(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found (try /metrics)\n".to_owned(),
        )
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        let request = format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n");
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn serves_metrics_and_404s_elsewhere() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("requests_total", "requests").add(7);
        let server = serve("127.0.0.1:0", registry.clone()).unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("requests_total 7"));

        // Live values: the next scrape sees the update.
        registry.counter("requests_total", "requests").add(1);
        let (_, body) = get(addr, "/");
        assert!(body.contains("requests_total 8"));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_stops_the_thread() {
        let registry = Arc::new(MetricsRegistry::new());
        let mut server = serve("127.0.0.1:0", registry).unwrap();
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        drop(server);
        // The port is released: binding it again succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok());
    }
}
