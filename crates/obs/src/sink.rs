//! Trace sinks: where events go.
//!
//! Three sinks ship with the crate — [`MemorySink`] for tests and
//! programmatic inspection, [`JsonlSink`] for streaming line-delimited
//! event logs, and [`ChromeSink`] for Chrome Trace Event Format files that
//! load directly in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)
//! — plus [`TeeSink`] to fan one event stream into several sinks.

use crate::event::Event;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A destination for trace events. Implementations must be `Send + Sync`:
/// runtime workers record from their own threads.
pub trait TraceSink: Send + Sync {
    /// Records one event. Must be cheap; sinks buffer internally.
    fn record(&self, event: &Event);

    /// Flushes buffered output and finalizes the format (e.g. closes the
    /// Chrome JSON array). Called once; recording after `finish` is a
    /// logic error that sinks may ignore.
    fn finish(&self) -> io::Result<()> {
        Ok(())
    }
}

/// `Arc<S>` forwards to `S`, so shared sinks (e.g. a flight recorder that
/// must stay inspectable after recording) can sit inside a [`TeeSink`].
impl<T: TraceSink + ?Sized> TraceSink for Arc<T> {
    fn record(&self, event: &Event) {
        (**self).record(event);
    }

    fn finish(&self) -> io::Result<()> {
        (**self).finish()
    }
}

/// Collects events in memory; the test sink.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

/// Streams events as line-delimited JSON (one object per line).
pub struct JsonlSink<W: Write + Send> {
    out: Mutex<BufWriter<W>>,
}

impl JsonlSink<File> {
    /// Creates (truncating) `path` and streams events into it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(File::create(path)?))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            out: Mutex::new(BufWriter::new(writer)),
        }
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, event: &Event) {
        let mut line = event.to_jsonl().to_string();
        line.push('\n');
        let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
        // Trace output is best-effort; an exporter error must never take
        // down the computation being traced.
        let _ = out.write_all(line.as_bytes());
    }

    fn finish(&self) -> io::Result<()> {
        self.out.lock().unwrap_or_else(|e| e.into_inner()).flush()
    }
}

/// Flushes on drop (including panic unwind), so a crashed run still leaves
/// every completed line on disk.
impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

/// Streams events in Chrome Trace Event Format: a JSON object with a
/// `traceEvents` array, understood by `chrome://tracing` and Perfetto.
///
/// Thread-name metadata events (`ph: "M"`) are emitted the first time each
/// `tid` appears, so timelines render as "coordinator" / "worker N" instead
/// of bare numbers.
pub struct ChromeSink<W: Write + Send> {
    state: Mutex<ChromeState<W>>,
}

struct ChromeState<W: Write> {
    out: BufWriter<W>,
    wrote_any: bool,
    finished: bool,
    named_tids: Vec<u32>,
}

impl ChromeSink<File> {
    /// Creates (truncating) `path` and streams events into it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(File::create(path)?))
    }
}

impl<W: Write + Send> ChromeSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        ChromeSink {
            state: Mutex::new(ChromeState {
                out: BufWriter::new(writer),
                wrote_any: false,
                finished: false,
                named_tids: Vec::new(),
            }),
        }
    }
}

/// The display name for a logical thread id.
pub fn thread_name(tid: u32) -> String {
    if tid == 0 {
        "coordinator".to_owned()
    } else {
        format!("worker {}", tid - 1)
    }
}

impl<W: Write + Send> ChromeState<W> {
    fn write_element(&mut self, json: &str) {
        let sep: &[u8] = if self.wrote_any {
            b",\n"
        } else {
            b"{\"traceEvents\":[\n"
        };
        let _ = self.out.write_all(sep);
        let _ = self.out.write_all(json.as_bytes());
        self.wrote_any = true;
    }
}

impl<W: Write + Send> ChromeState<W> {
    /// Writes the array/object terminator and flushes, exactly once;
    /// shared by `finish` and the unwind-safe `Drop`.
    fn finalize(&mut self) -> io::Result<()> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        if !self.wrote_any {
            self.out.write_all(b"{\"traceEvents\":[")?;
            self.wrote_any = true;
        }
        self.out.write_all(b"\n]}\n")?;
        self.out.flush()
    }
}

impl<W: Write + Send> TraceSink for ChromeSink<W> {
    fn record(&self, event: &Event) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.finished {
            return;
        }
        if !state.named_tids.contains(&event.tid) {
            state.named_tids.push(event.tid);
            let meta = format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                event.tid,
                thread_name(event.tid)
            );
            state.write_element(&meta);
        }
        let json = event.to_chrome().to_string();
        state.write_element(&json);
    }

    fn finish(&self) -> io::Result<()> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .finalize()
    }
}

/// Finalizes on drop (including panic unwind): the trace from a crashed
/// run is still a complete, loadable Chrome JSON document.
impl<W: Write + Send> Drop for ChromeSink<W> {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

/// Fans every event into several sinks (e.g. JSONL and Chrome at once).
pub struct TeeSink {
    sinks: Vec<Box<dyn TraceSink>>,
}

impl TeeSink {
    /// Builds a tee over `sinks`.
    pub fn new(sinks: Vec<Box<dyn TraceSink>>) -> Self {
        TeeSink { sinks }
    }
}

impl TraceSink for TeeSink {
    fn record(&self, event: &Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }

    fn finish(&self) -> io::Result<()> {
        let mut result = Ok(());
        for sink in &self.sinks {
            if let Err(e) = sink.finish() {
                result = Err(e);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Category, Kind};
    use crate::json;
    use std::borrow::Cow;
    use std::sync::Arc;

    fn ev(name: &'static str, tid: u32, ts: u64, dur: u64) -> Event {
        Event {
            name: Cow::Borrowed(name),
            cat: Category::Runtime,
            kind: Kind::Span { dur_us: dur },
            ts_us: ts,
            tid,
            args: vec![],
        }
    }

    /// A sink wrapping a shared buffer so tests can read back what was
    /// streamed.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn memory_sink_collects() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(&ev("a", 0, 1, 2));
        sink.record(&ev("b", 1, 3, 4));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.events()[1].name, "b");
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = JsonlSink::new(SharedBuf(buf.clone()));
        sink.record(&ev("a", 0, 1, 2));
        sink.record(&ev("b", 2, 3, 4));
        sink.finish().unwrap();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = json::parse(line).unwrap();
            assert!(v.get("name").is_some());
            assert_eq!(v.get("kind").unwrap().as_str(), Some("span"));
        }
    }

    #[test]
    fn chrome_sink_emits_valid_trace_json_with_thread_names() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = ChromeSink::new(SharedBuf(buf.clone()));
        sink.record(&ev("compute", 1, 10, 5));
        sink.record(&ev("compute", 1, 20, 5));
        sink.record(&ev("master", 0, 0, 2));
        sink.finish().unwrap();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 3 spans + 2 thread_name metadata records (tids 1 and 0).
        assert_eq!(events.len(), 5);
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2);
        assert_eq!(
            metas[0].get("args").unwrap().get("name").unwrap().as_str(),
            Some("worker 0")
        );
    }

    #[test]
    fn empty_chrome_trace_is_still_valid() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = ChromeSink::new(SharedBuf(buf.clone()));
        sink.finish().unwrap();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let doc = json::parse(&text).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn dropped_chrome_sink_without_finish_is_still_valid_json() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        {
            let sink = ChromeSink::new(SharedBuf(buf.clone()));
            sink.record(&ev("compute", 1, 10, 5));
            // No finish(): simulate a crashed run unwinding past the sink.
        }
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2); // span + thread_name metadata
    }

    #[test]
    fn finish_then_drop_writes_terminator_once() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        {
            let sink = ChromeSink::new(SharedBuf(buf.clone()));
            sink.record(&ev("a", 0, 0, 1));
            sink.finish().unwrap();
            sink.record(&ev("ignored after finish", 0, 5, 1));
        }
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.matches("]}").count(), 1);
        let doc = json::parse(&text).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn dropped_jsonl_sink_flushes_buffered_lines() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        {
            let sink = JsonlSink::new(SharedBuf(buf.clone()));
            sink.record(&ev("a", 0, 1, 2));
            // No finish().
        }
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(json::parse(text.lines().next().unwrap()).is_ok());
    }

    #[test]
    fn arc_sink_forwards_records() {
        let inner = Arc::new(MemorySink::new());
        let tee = TeeSink::new(vec![Box::new(inner.clone())]);
        tee.record(&ev("x", 0, 0, 0));
        assert_eq!(inner.len(), 1);
    }

    #[test]
    fn tee_duplicates_events() {
        let m1 = Arc::new(MemorySink::new());
        let m2 = Arc::new(MemorySink::new());
        struct Fwd(Arc<MemorySink>);
        impl TraceSink for Fwd {
            fn record(&self, event: &Event) {
                self.0.record(event);
            }
        }
        let tee = TeeSink::new(vec![Box::new(Fwd(m1.clone())), Box::new(Fwd(m2.clone()))]);
        tee.record(&ev("x", 0, 0, 0));
        tee.finish().unwrap();
        assert_eq!(m1.len(), 1);
        assert_eq!(m2.len(), 1);
    }
}
