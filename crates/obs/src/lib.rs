//! `gm-obs` — structured tracing and metrics export for the Green-Marl →
//! Pregel system.
//!
//! The paper's evaluation is a set of *measurements* (timesteps, network
//! I/O, run-time split per phase); this crate is the layer that makes those
//! measurements observable end-to-end instead of reachable only through
//! ad-hoc prints. It is deliberately **zero-dependency** and cheap enough
//! to leave compiled in: instrumented code holds an `Option<`[`Tracer`]`>`
//! and the disabled path is one branch.
//!
//! * [`Event`] — the structured record: span / instant / counter, with a
//!   category ([`Category::Compiler`] / [`Category::Runtime`] /
//!   [`Category::Bench`]), a logical thread id (0 = coordinator, worker
//!   `w` = `w + 1`) and named arguments.
//! * [`TraceSink`] — where events go. Shipped sinks: [`MemorySink`]
//!   (tests), [`JsonlSink`] (streaming event log), [`ChromeSink`]
//!   (Chrome Trace Event Format — load the file in `chrome://tracing` or
//!   <https://ui.perfetto.dev> to see superstep × worker timelines), and
//!   [`TeeSink`] (fan-out).
//! * [`Tracer`] — the cloneable handle instrumented code records through.
//! * [`json`] — the minimal JSON writer/parser backing the exporters (and
//!   `Metrics::to_json` in `gm-pregel`).
//! * [`metrics`] — production metrics: [`MetricsRegistry`] with counters,
//!   gauges, and log-linear histograms (p50/p90/p99), rendered in the
//!   Prometheus text exposition format and servable over HTTP via
//!   [`http::serve`].
//! * [`FlightRecorder`] — a bounded ring of recent events, teed behind the
//!   live trace so crashes can dump their final moments into a
//!   post-mortem bundle.
//!
//! # Example
//!
//! ```
//! use gm_obs::{Category, Tracer};
//!
//! let (tracer, sink) = Tracer::in_memory();
//! let start = tracer.now_us();
//! // ... do work ...
//! tracer.span("superstep", Category::Runtime, 0, start, vec![
//!     ("active", 42u64.into()),
//! ]);
//! assert_eq!(sink.len(), 1);
//! ```

pub mod event;
pub mod http;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod signal;
pub mod sink;
pub mod tracer;

pub use event::{Category, Event, Field, Kind};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use recorder::FlightRecorder;
pub use sink::{thread_name, ChromeSink, JsonlSink, MemorySink, TeeSink, TraceSink};
pub use tracer::{TraceFormat, Tracer};
