//! Flight recorder: a bounded in-memory ring of the most recent trace
//! events, kept so that a crash can be explained after the fact.
//!
//! The recorder is just another [`TraceSink`], so it can be teed alongside
//! file sinks ([`Tracer::with_extra_sink`](crate::Tracer::with_extra_sink))
//! with no changes to instrumented code. When the ring is full the oldest
//! event is evicted and a drop counter incremented — memory stays bounded
//! no matter how long the run, and the tail of the trace (the part that
//! explains the failure) is always intact.
//!
//! The Pregel runtime drains the ring into a post-mortem bundle whenever a
//! run ends in a `PregelError`; see `gm-pregel`'s post-mortem module.

use crate::event::Event;
use crate::sink::TraceSink;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default ring capacity when none is configured.
pub const DEFAULT_CAPACITY: usize = 512;

/// A bounded ring buffer of recent trace events.
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            dropped: AtomicU64::new(0),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Number of events evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl TraceSink for FlightRecorder {
    fn record(&self, event: &Event) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Category, Kind};
    use std::borrow::Cow;

    fn ev(name: &'static str, ts: u64) -> Event {
        Event {
            name: Cow::Borrowed(name),
            cat: Category::Runtime,
            kind: Kind::Instant,
            ts_us: ts,
            tid: 0,
            args: vec![],
        }
    }

    #[test]
    fn retains_the_most_recent_events() {
        let rec = FlightRecorder::new(3);
        for i in 0..10 {
            rec.record(&ev("e", i));
        }
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(rec.dropped(), 7);
        let ts: Vec<u64> = events.iter().map(|e| e.ts_us).collect();
        assert_eq!(ts, vec![7, 8, 9]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let rec = FlightRecorder::new(0);
        rec.record(&ev("only", 1));
        assert_eq!(rec.capacity(), 1);
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn empty_recorder_reports_empty() {
        let rec = FlightRecorder::default();
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 0);
        assert_eq!(rec.capacity(), DEFAULT_CAPACITY);
    }
}
