//! The structured event model shared by the compiler and the runtime.
//!
//! Everything observable is an [`Event`]: a named, categorized record with
//! a timestamp (microseconds since the trace epoch), an optional duration
//! (spans), a logical thread (`tid`: 0 is the coordinating thread, worker
//! `w` is `w + 1`), and a small bag of numeric/string arguments. The model
//! maps 1:1 onto the Chrome Trace Event Format so the exporter is trivial,
//! but the JSONL and in-memory sinks see the same records.

use crate::json::Json;
use std::borrow::Cow;

/// Event category — the Chrome `cat` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Category {
    /// Compiler pipeline events (parse, sema, transforms, translate, …).
    Compiler,
    /// BSP runtime events (supersteps, phases, exchange, …).
    Runtime,
    /// Harness events (graph generation, bench setup).
    Bench,
    /// Checkpoint and recovery events (snapshot writes, restores,
    /// restarts).
    Ckpt,
    /// Message-spill events (bucket spill writes, replays, file sizes).
    Spill,
    /// Resource-budget events (in-flight byte accounting, deadline and
    /// budget trips).
    Budget,
}

impl Category {
    /// The string used in exported traces.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Compiler => "compiler",
            Category::Runtime => "runtime",
            Category::Bench => "bench",
            Category::Ckpt => "ckpt",
            Category::Spill => "spill",
            Category::Budget => "budget",
        }
    }
}

/// What kind of record this is — the Chrome `ph` (phase) field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// A complete span: `ts` start, `dur` length (Chrome `ph: "X"`).
    Span {
        /// Duration in microseconds.
        dur_us: u64,
    },
    /// A point-in-time marker (Chrome `ph: "i"`).
    Instant,
    /// A sampled counter (Chrome `ph: "C"`); args carry the series.
    Counter,
}

/// One argument value.
#[derive(Clone, Debug, PartialEq)]
pub enum Field {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(Cow<'static, str>),
}

impl Field {
    /// Converts to the JSON value used by the exporters.
    pub fn to_json(&self) -> Json {
        match self {
            Field::U64(v) => Json::UInt(*v),
            Field::I64(v) => Json::Int(*v),
            Field::F64(v) => Json::Num(*v),
            Field::Bool(v) => Json::Bool(*v),
            Field::Str(v) => Json::Str(v.to_string()),
        }
    }

    /// Numeric content as `u64`, if applicable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Field::U64(v) => Some(*v),
            Field::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }
}

impl From<u64> for Field {
    fn from(v: u64) -> Self {
        Field::U64(v)
    }
}

impl From<u32> for Field {
    fn from(v: u32) -> Self {
        Field::U64(v as u64)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Self {
        Field::U64(v as u64)
    }
}

impl From<i64> for Field {
    fn from(v: i64) -> Self {
        Field::I64(v)
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Self {
        Field::F64(v)
    }
}

impl From<bool> for Field {
    fn from(v: bool) -> Self {
        Field::Bool(v)
    }
}

impl From<&'static str> for Field {
    fn from(v: &'static str) -> Self {
        Field::Str(Cow::Borrowed(v))
    }
}

impl From<String> for Field {
    fn from(v: String) -> Self {
        Field::Str(Cow::Owned(v))
    }
}

/// A single trace record.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Event name (e.g. `"compute"`, `"superstep"`, `"pass/parse"`).
    pub name: Cow<'static, str>,
    /// Category, for filtering.
    pub cat: Category,
    /// Span / instant / counter.
    pub kind: Kind,
    /// Start (or sample) time, microseconds since the trace epoch.
    pub ts_us: u64,
    /// Logical thread: 0 = coordinator, worker `w` = `w + 1`.
    pub tid: u32,
    /// Named arguments (counters, sizes, labels).
    pub args: Vec<(&'static str, Field)>,
}

impl Event {
    /// Looks up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&Field> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Span duration, if this is a span.
    pub fn dur_us(&self) -> Option<u64> {
        match self.kind {
            Kind::Span { dur_us } => Some(dur_us),
            _ => None,
        }
    }

    /// The event as one JSONL record (flat object, `kind` spelled out).
    pub fn to_jsonl(&self) -> Json {
        let mut members = vec![
            ("name".to_owned(), Json::Str(self.name.to_string())),
            ("cat".to_owned(), Json::Str(self.cat.as_str().to_owned())),
            ("ts_us".to_owned(), Json::UInt(self.ts_us)),
            ("tid".to_owned(), Json::UInt(self.tid as u64)),
        ];
        match self.kind {
            Kind::Span { dur_us } => {
                members.push(("kind".to_owned(), Json::Str("span".to_owned())));
                members.push(("dur_us".to_owned(), Json::UInt(dur_us)));
            }
            Kind::Instant => members.push(("kind".to_owned(), Json::Str("instant".to_owned()))),
            Kind::Counter => members.push(("kind".to_owned(), Json::Str("counter".to_owned()))),
        }
        if !self.args.is_empty() {
            members.push((
                "args".to_owned(),
                Json::obj(
                    self.args
                        .iter()
                        .map(|(k, v)| ((*k).to_owned(), v.to_json())),
                ),
            ));
        }
        Json::obj(members)
    }

    /// The event in Chrome Trace Event Format (one element of the
    /// `traceEvents` array). `pid` is fixed at 0: the whole system is one
    /// process, and workers are rendered as its threads.
    pub fn to_chrome(&self) -> Json {
        let mut members = vec![
            ("name".to_owned(), Json::Str(self.name.to_string())),
            ("cat".to_owned(), Json::Str(self.cat.as_str().to_owned())),
            ("ts".to_owned(), Json::UInt(self.ts_us)),
            ("pid".to_owned(), Json::UInt(0)),
            ("tid".to_owned(), Json::UInt(self.tid as u64)),
        ];
        match self.kind {
            Kind::Span { dur_us } => {
                members.push(("ph".to_owned(), Json::Str("X".to_owned())));
                members.push(("dur".to_owned(), Json::UInt(dur_us)));
            }
            Kind::Instant => {
                members.push(("ph".to_owned(), Json::Str("i".to_owned())));
                // Scope: thread-local instant.
                members.push(("s".to_owned(), Json::Str("t".to_owned())));
            }
            Kind::Counter => {
                members.push(("ph".to_owned(), Json::Str("C".to_owned())));
            }
        }
        if !self.args.is_empty() {
            members.push((
                "args".to_owned(),
                Json::obj(
                    self.args
                        .iter()
                        .map(|(k, v)| ((*k).to_owned(), v.to_json())),
                ),
            ));
        }
        Json::obj(members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_exports_to_both_formats() {
        let ev = Event {
            name: Cow::Borrowed("compute"),
            cat: Category::Runtime,
            kind: Kind::Span { dur_us: 250 },
            ts_us: 1000,
            tid: 2,
            args: vec![("messages", Field::U64(7)), ("skew", Field::F64(1.5))],
        };
        let line = ev.to_jsonl();
        assert_eq!(line.get("kind").unwrap().as_str(), Some("span"));
        assert_eq!(line.get("dur_us").unwrap().as_u64(), Some(250));
        assert_eq!(
            line.get("args").unwrap().get("messages").unwrap().as_u64(),
            Some(7)
        );
        let chrome = ev.to_chrome();
        assert_eq!(chrome.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(chrome.get("ts").unwrap().as_u64(), Some(1000));
        assert_eq!(chrome.get("dur").unwrap().as_u64(), Some(250));
        assert_eq!(chrome.get("tid").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn instant_and_counter_phases() {
        let mut ev = Event {
            name: Cow::Borrowed("halt"),
            cat: Category::Runtime,
            kind: Kind::Instant,
            ts_us: 5,
            tid: 0,
            args: vec![],
        };
        assert_eq!(ev.to_chrome().get("ph").unwrap().as_str(), Some("i"));
        ev.kind = Kind::Counter;
        assert_eq!(ev.to_chrome().get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(ev.dur_us(), None);
    }
}
