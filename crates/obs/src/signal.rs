//! Dependency-free shutdown-signal latch for long-lived binaries.
//!
//! `gmd` and `figure6 --metrics-listen` run until told to stop; this
//! module turns SIGINT/SIGTERM into a process-wide counter that drain
//! loops poll, so the binaries can finish in-flight work, flush sinks,
//! and exit 0 instead of dying mid-write. The counter (rather than a
//! plain bool) lets callers distinguish "drain, please" (first signal)
//! from "abort now" (second signal during an in-progress drain).
//!
//! The handler itself only bumps a relaxed atomic — the one thing that
//! is async-signal-safe — and everything else happens on normal threads.
//! On non-Unix targets [`install`] is a no-op and [`request`] remains the
//! programmatic trigger (tests use it too).

use std::sync::atomic::{AtomicU32, Ordering};

static SHUTDOWN: AtomicU32 = AtomicU32::new(0);

#[cfg(unix)]
mod imp {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    extern "C" {
        // libc is always linked on unix targets; declaring `signal`
        // directly keeps the crate dependency-free. Handlers are passed
        // and returned as plain addresses.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        super::SHUTDOWN.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs SIGINT/SIGTERM handlers that latch the shutdown flag.
/// Idempotent; a no-op on non-Unix targets.
pub fn install() {
    imp::install();
}

/// Whether a shutdown has been requested (by signal or by [`request`]).
pub fn requested() -> bool {
    count() > 0
}

/// How many shutdown signals (or [`request`] calls) have landed so far.
/// `>= 2` means the operator signalled again during a drain and wants an
/// immediate abort.
pub fn count() -> u32 {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Programmatically latches the shutdown flag — what the signal handler
/// does, callable from tests and from in-process shutdown paths. Each
/// call counts as one additional signal.
pub fn request() {
    SHUTDOWN.fetch_add(1, Ordering::Relaxed);
}

/// Clears the latch. Only meaningful in tests, where several cases share
/// one process-wide flag.
pub fn reset() {
    SHUTDOWN.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_round_trip() {
        reset();
        assert!(!requested());
        assert_eq!(count(), 0);
        request();
        assert!(requested());
        assert_eq!(count(), 1);
        request();
        assert_eq!(count(), 2);
        reset();
        assert!(!requested());
        assert_eq!(count(), 0);
    }

    #[cfg(unix)]
    #[test]
    fn install_is_idempotent() {
        install();
        install();
    }
}
