//! Golden-file test for the Chrome Trace Event Format exporter.
//!
//! A fixed event sequence (two workers, two supersteps, compiler preamble)
//! must export byte-for-byte to the checked-in golden file, and the
//! exported document must be structurally valid Trace Event JSON: it
//! parses, every record has well-formed `ph`/`ts` (+ `dur` for spans), and
//! spans on the same thread are properly nested (disjoint or contained,
//! never partially overlapping).

use gm_obs::json::{self, Json};
use gm_obs::{Category, Event, Field, Kind, TraceFormat, Tracer};
use std::borrow::Cow;

fn span(name: &'static str, cat: Category, tid: u32, ts: u64, dur: u64) -> Event {
    Event {
        name: Cow::Borrowed(name),
        cat,
        kind: Kind::Span { dur_us: dur },
        ts_us: ts,
        tid,
        args: vec![],
    }
}

/// The fixed scenario: a compiler pass, then two supersteps in which two
/// workers compute/combine inside the superstep span, plus a counter.
fn scenario() -> Vec<Event> {
    let mut events = vec![
        span("pass/parse", Category::Compiler, 0, 0, 120),
        span("pass/translate", Category::Compiler, 0, 120, 80),
    ];
    for step in 0u64..2 {
        let t0 = 1_000 + step * 500;
        events.push(span("master", Category::Runtime, 0, t0, 40));
        for worker in 0u32..2 {
            let tid = worker + 1;
            events.push(Event {
                args: vec![
                    ("superstep", Field::U64(step)),
                    ("messages", Field::U64(100 * (worker as u64 + 1))),
                ],
                ..span("compute", Category::Runtime, tid, t0 + 40, 200)
            });
            events.push(span("combine", Category::Runtime, tid, t0 + 240, 50));
        }
        events.push(span("exchange", Category::Runtime, 0, t0 + 300, 100));
        events.push(Event {
            name: Cow::Borrowed("superstep"),
            cat: Category::Runtime,
            kind: Kind::Span { dur_us: 450 },
            ts_us: t0,
            tid: 0,
            args: vec![("superstep", Field::U64(step))],
        });
        events.push(Event {
            name: Cow::Borrowed("active"),
            cat: Category::Runtime,
            kind: Kind::Counter,
            ts_us: t0 + 450,
            tid: 0,
            args: vec![("active_vertices", Field::U64(64 - 16 * step))],
        });
    }
    events
}

fn export_chrome() -> String {
    let path = std::env::temp_dir().join(format!("gm_obs_golden_{}.json", std::process::id()));
    let tracer = Tracer::to_file(&path, TraceFormat::Chrome).expect("create trace file");
    for ev in scenario() {
        tracer.emit(ev);
    }
    tracer.finish().expect("finish trace");
    let text = std::fs::read_to_string(&path).expect("read trace back");
    let _ = std::fs::remove_file(&path);
    text
}

#[test]
fn chrome_export_matches_golden_file() {
    let text = export_chrome();
    let golden = include_str!("golden/chrome_trace.json");
    assert_eq!(
        text, golden,
        "Chrome trace output drifted from tests/golden/chrome_trace.json; \
         if the change is intentional, regenerate the golden file"
    );
}

#[test]
fn chrome_export_is_valid_trace_event_json() {
    let text = export_chrome();
    let doc = json::parse(&text).expect("exporter must emit parseable JSON");
    let events = doc
        .get("traceEvents")
        .expect("top-level traceEvents")
        .as_arr()
        .expect("traceEvents is an array");
    assert!(!events.is_empty());

    let mut spans_by_tid: Vec<(u64, u64, u64)> = Vec::new(); // (tid, start, end)
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .expect("every record has ph");
        assert!(
            matches!(ph, "X" | "i" | "C" | "M"),
            "unexpected phase {ph:?}"
        );
        if ph == "M" {
            // Metadata records carry no timestamp requirement.
            continue;
        }
        let ts = ev
            .get("ts")
            .and_then(Json::as_u64)
            .expect("timed records have a numeric ts");
        ev.get("pid").and_then(Json::as_u64).expect("pid present");
        let tid = ev.get("tid").and_then(Json::as_u64).expect("tid present");
        if ph == "X" {
            let dur = ev
                .get("dur")
                .and_then(Json::as_u64)
                .expect("complete spans have dur");
            spans_by_tid.push((tid, ts, ts + dur));
        }
    }

    // Per-tid nesting: any two spans on one thread must be disjoint or
    // one must contain the other — partial overlap renders as garbage in
    // a flamegraph viewer.
    for (i, &(tid_a, s_a, e_a)) in spans_by_tid.iter().enumerate() {
        for &(tid_b, s_b, e_b) in &spans_by_tid[i + 1..] {
            if tid_a != tid_b {
                continue;
            }
            let disjoint = e_a <= s_b || e_b <= s_a;
            let nested = (s_a <= s_b && e_b <= e_a) || (s_b <= s_a && e_a <= e_b);
            assert!(
                disjoint || nested,
                "spans partially overlap on tid {tid_a}: [{s_a},{e_a}) vs [{s_b},{e_b})"
            );
        }
    }

    // The scenario's worker compute spans must sit inside a superstep
    // span on the coordinator timeline — check the superstep spans exist
    // and cover the worker spans' time range.
    let supersteps: Vec<(u64, u64)> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("superstep"))
        .map(|e| {
            let ts = e.get("ts").and_then(Json::as_u64).unwrap();
            let dur = e.get("dur").and_then(Json::as_u64).unwrap();
            (ts, ts + dur)
        })
        .collect();
    assert_eq!(supersteps.len(), 2);
    for ev in events {
        if ev.get("name").and_then(Json::as_str) == Some("compute") {
            let ts = ev.get("ts").and_then(Json::as_u64).unwrap();
            let end = ts + ev.get("dur").and_then(Json::as_u64).unwrap();
            assert!(
                supersteps.iter().any(|&(s, e)| s <= ts && end <= e),
                "compute span [{ts},{end}) outside every superstep span"
            );
        }
    }
}

#[test]
fn jsonl_export_of_same_scenario_parses_line_by_line() {
    let path = std::env::temp_dir().join(format!("gm_obs_jsonl_{}.jsonl", std::process::id()));
    let tracer = Tracer::to_file(&path, TraceFormat::Jsonl).expect("create trace file");
    for ev in scenario() {
        tracer.emit(ev);
    }
    tracer.finish().expect("finish");
    let text = std::fs::read_to_string(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), scenario().len());
    for line in lines {
        let v = json::parse(line).expect("each line parses");
        assert!(v.get("name").is_some());
        assert!(v.get("ts_us").is_some());
    }
}
