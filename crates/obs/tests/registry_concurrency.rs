//! Concurrency test for the metrics path the daemon depends on: writer
//! threads hammer counters, gauges, and histograms while scraper threads
//! issue real `GET /metrics` requests over TCP. Every scrape must be a
//! well-formed exposition (parseable samples, no torn lines), and a
//! counter observed across successive scrapes must be monotone.

use gm_obs::http::serve;
use gm_obs::metrics::MetricsRegistry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn scrape(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let (head, body) = raw.split_once("\r\n\r\n").expect("has header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "scrape failed: {head}");
    body.to_owned()
}

/// Extracts the value of the first sample of `name` (no-label series).
fn sample_value(exposition: &str, name: &str) -> Option<f64> {
    exposition.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.parse().ok()
    })
}

/// Every non-comment line must be `series value` with a parseable value —
/// a torn concurrent render would fail here.
fn assert_well_formed(exposition: &str) {
    for line in exposition.lines() {
        if line.is_empty() || line.starts_with("# HELP") || line.starts_with("# TYPE") {
            continue;
        }
        let (_, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line without value: {line:?}"));
        if value != "+Inf" {
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
        }
    }
}

#[test]
fn scrapes_stay_well_formed_and_monotone_under_concurrent_mutation() {
    let registry = Arc::new(MetricsRegistry::new());
    let server = serve("127.0.0.1:0", registry.clone()).expect("bind");
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));

    // Writers: the same series shapes the daemon mutates per job —
    // labelled counters per tenant, a queue-depth gauge, a latency
    // histogram — plus fresh series registered mid-flight.
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let registry = registry.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let tenant = format!("tenant-{w}");
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    registry.counter("jobs_total", "all jobs").inc();
                    registry
                        .counter_with("jobs_by_tenant_total", "per tenant", &[("tenant", &tenant)])
                        .inc();
                    registry.gauge("queue_depth", "waiting").set((i % 7) as f64);
                    registry
                        .histogram_with("latency_ms", "latency", &[("tenant", &tenant)])
                        .observe((i % 100) as f64);
                    if i.is_multiple_of(50) {
                        // Registration churn while scrapers iterate families.
                        registry
                            .counter(&format!("churn_{w}_{}", i / 50), "mid-flight series")
                            .inc();
                    }
                    i += 1;
                }
                i
            })
        })
        .collect();

    // Scrapers: concurrent real HTTP requests, each asserting exposition
    // shape and counter monotonicity against its own previous scrape.
    let scrapers: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut last = 0.0f64;
                let mut scrapes = 0u32;
                for _ in 0..40 {
                    let body = scrape(addr);
                    assert_well_formed(&body);
                    if let Some(v) = sample_value(&body, "jobs_total") {
                        assert!(
                            v >= last,
                            "counter went backwards across scrapes: {last} -> {v}"
                        );
                        last = v;
                        scrapes += 1;
                    }
                }
                scrapes
            })
        })
        .collect();

    let mut observed = 0;
    for s in scrapers {
        observed += s.join().expect("scraper thread");
    }
    stop.store(true, Ordering::Relaxed);
    let mut writes = 0;
    for w in writers {
        writes += w.join().expect("writer thread");
    }
    assert!(writes > 0, "writers made progress");
    assert!(observed > 0, "at least one scrape saw the counter");

    // The final quiescent scrape agrees exactly with the writer tallies.
    let body = scrape(addr);
    assert_eq!(sample_value(&body, "jobs_total"), Some(writes as f64));
}
