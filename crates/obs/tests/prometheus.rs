//! Format check for the Prometheus text exposition: every line the
//! registry renders must parse as `# HELP`, `# TYPE`, or a sample, and
//! histogram series must expose monotone cumulative buckets ending at
//! `+Inf` with matching `_sum`/`_count`.

use gm_obs::metrics::MetricsRegistry;
use std::collections::HashMap;

/// One parsed sample line: name, labels, value.
#[derive(Debug)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Parses a sample line, panicking with context on any malformation.
fn parse_sample(line: &str) -> Sample {
    let (series, value) = line
        .rsplit_once(' ')
        .unwrap_or_else(|| panic!("sample line has no value separator: {line:?}"));
    let value: f64 = if value == "+Inf" {
        f64::INFINITY
    } else {
        value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable sample value in {line:?}"))
    };
    let (name, labels) = match series.split_once('{') {
        None => (series.to_owned(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unterminated label set in {line:?}"));
            let labels = body
                .split(',')
                .map(|pair| {
                    let (k, v) = pair
                        .split_once('=')
                        .unwrap_or_else(|| panic!("label without '=' in {line:?}"));
                    assert!(
                        v.starts_with('"') && v.ends_with('"') && v.len() >= 2,
                        "unquoted label value in {line:?}"
                    );
                    assert!(
                        k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                        "bad label name {k:?} in {line:?}"
                    );
                    (k.to_owned(), v[1..v.len() - 1].to_owned())
                })
                .collect();
            (name.to_owned(), labels)
        }
    };
    assert!(
        name.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "bad metric name {name:?} in {line:?}"
    );
    Sample {
        name,
        labels,
        value,
    }
}

/// Validates a full exposition document, returning `(types, samples)`.
fn check_exposition(text: &str) -> (HashMap<String, String>, Vec<Sample>) {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut helps: HashMap<String, String> = HashMap::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        assert!(!line.trim().is_empty(), "blank line in exposition");
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP without text");
            assert!(
                helps.insert(name.to_owned(), help.to_owned()).is_none(),
                "duplicate HELP for {name}"
            );
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, ty) = rest.split_once(' ').expect("TYPE without kind");
            assert!(
                matches!(ty, "counter" | "gauge" | "histogram"),
                "unknown TYPE {ty:?}"
            );
            assert!(
                types.insert(name.to_owned(), ty.to_owned()).is_none(),
                "duplicate TYPE for {name}"
            );
        } else {
            assert!(
                !line.starts_with('#'),
                "comment line that is neither HELP nor TYPE: {line:?}"
            );
            samples.push(parse_sample(line));
        }
    }
    // Every sample belongs to a declared family (histograms via suffixes).
    for s in &samples {
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .filter_map(|suf| s.name.strip_suffix(suf))
            .find(|base| types.get(*base).map(String::as_str) == Some("histogram"))
            .unwrap_or(&s.name);
        assert!(
            types.contains_key(family),
            "sample {} has no TYPE declaration",
            s.name
        );
        assert!(
            helps.contains_key(family),
            "sample {} has no HELP declaration",
            s.name
        );
    }
    (types, samples)
}

/// A registry shaped like the runtime's: per-phase latency histograms plus
/// direction-labeled counters and a gauge.
fn runtime_like_registry() -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    for phase in ["master", "compute", "combine", "exchange", "barrier"] {
        let h = registry.histogram_with(
            "gm_phase_seconds",
            "wall-clock per superstep phase",
            &[("phase", phase)],
        );
        for i in 1..=50 {
            h.observe(i as f64 * 2e-4);
        }
    }
    registry
        .counter_with(
            "gm_supersteps_total",
            "supersteps by direction",
            &[("direction", "push")],
        )
        .add(9);
    registry
        .counter_with(
            "gm_supersteps_total",
            "supersteps by direction",
            &[("direction", "pull")],
        )
        .add(4);
    registry
        .gauge("gm_frontier_density", "frontier edges / total edges")
        .set(0.125);
    registry
}

#[test]
fn every_line_parses_as_help_type_or_sample() {
    let registry = runtime_like_registry();
    let text = registry.render_prometheus();
    assert!(!text.is_empty());
    let (types, samples) = check_exposition(&text);
    assert_eq!(
        types.get("gm_phase_seconds").map(String::as_str),
        Some("histogram")
    );
    assert_eq!(
        types.get("gm_supersteps_total").map(String::as_str),
        Some("counter")
    );
    assert_eq!(
        types.get("gm_frontier_density").map(String::as_str),
        Some("gauge")
    );
    assert!(samples.len() > 5 * 3); // at least buckets+sum+count per phase
}

#[test]
fn histogram_buckets_are_cumulative_and_close_at_inf() {
    let registry = runtime_like_registry();
    let (_, samples) = check_exposition(&registry.render_prometheus());
    for phase in ["master", "compute", "combine", "exchange", "barrier"] {
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| {
                s.name == "gm_phase_seconds_bucket"
                    && s.labels.contains(&("phase".to_owned(), phase.to_owned()))
            })
            .collect();
        assert!(!buckets.is_empty(), "no buckets for phase {phase}");
        // Cumulative counts are non-decreasing in `le` order (the render
        // order), and the last bucket is +Inf with the full count.
        let les: Vec<f64> = buckets
            .iter()
            .map(|s| {
                let le = &s.labels.iter().find(|(k, _)| k == "le").unwrap().1;
                if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().unwrap()
                }
            })
            .collect();
        assert!(
            les.windows(2).all(|w| w[0] < w[1]),
            "le out of order: {les:?}"
        );
        let counts: Vec<f64> = buckets.iter().map(|s| s.value).collect();
        assert!(
            counts.windows(2).all(|w| w[0] <= w[1]),
            "non-cumulative buckets for {phase}: {counts:?}"
        );
        assert_eq!(*les.last().unwrap(), f64::INFINITY);
        assert_eq!(*counts.last().unwrap(), 50.0);
        let count = samples
            .iter()
            .find(|s| {
                s.name == "gm_phase_seconds_count"
                    && s.labels.contains(&("phase".to_owned(), phase.to_owned()))
            })
            .expect("missing _count");
        assert_eq!(count.value, 50.0);
        let sum = samples
            .iter()
            .find(|s| {
                s.name == "gm_phase_seconds_sum"
                    && s.labels.contains(&("phase".to_owned(), phase.to_owned()))
            })
            .expect("missing _sum");
        assert!((sum.value - 0.255).abs() < 1e-9, "sum = {}", sum.value);
    }
}

#[test]
fn per_phase_percentiles_are_extractable() {
    let registry = runtime_like_registry();
    for phase in ["master", "compute", "combine", "exchange", "barrier"] {
        let h = registry.histogram_with(
            "gm_phase_seconds",
            "wall-clock per superstep phase",
            &[("phase", phase)],
        );
        let (p50, _p90, p99) = h.percentiles();
        // Observations are 0.2ms..10ms; the quantiles must land inside
        // and stay ordered.
        assert!(p50 > 1e-4 && p50 < 1e-2, "{phase} p50 = {p50}");
        assert!(p99 >= p50 && p99 <= 1e-2 + 1e-9, "{phase} p99 = {p99}");
    }
}

#[test]
fn label_values_are_escaped() {
    let registry = MetricsRegistry::new();
    registry
        .counter_with("odd_total", "odd labels", &[("path", "a\\b\"c\nd")])
        .inc();
    let text = registry.render_prometheus();
    let line = text.lines().find(|l| l.starts_with("odd_total")).unwrap();
    assert!(line.contains("a\\\\b\\\"c\\nd"), "{line}");
}
