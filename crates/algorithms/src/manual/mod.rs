//! Hand-written Pregel implementations of the five algorithms the paper
//! also coded natively for GPS.
//!
//! These are the Figure-6 baselines. They are written the way the paper's
//! programmers wrote theirs — the same phase discipline the translation
//! rules produce ("all the translation and transformation rules that our
//! compiler applies ... are what programmers typically do when implementing
//! algorithms manually", §5.2) — so supersteps and network I/O match the
//! compiler-generated programs *exactly*, and the wall-clock comparison
//! isolates the execution-style difference (typed Rust here vs interpreted
//! state machine there).
//!
//! Message byte accounting uses the same wire model as the generated code:
//! a 4-byte destination envelope, the payload, and a type byte when the
//! program uses several message kinds (the paper's own manual example,
//! Fig. 3, tags its messages the same way).
//!
//! There is deliberately **no manual Betweenness Centrality**: the paper's
//! point (§5.1) is that writing one by hand is prohibitively difficult.

mod avg_teen;
mod bipartite;
mod conductance;
mod pagerank;
mod sssp;

pub use avg_teen::{run_avg_teen, AvgTeenOutcome};
pub use bipartite::{run_bipartite_matching, MatchingOutcome};
pub use conductance::{run_conductance, ConductanceOutcome};
pub use pagerank::{run_pagerank, PagerankOutcome};
pub use sssp::{run_sssp, SsspOutcome};

/// Envelope size shared with the generated-code accounting.
pub(crate) const ENVELOPE: u64 = gm_core::pir::ENVELOPE_BYTES;
