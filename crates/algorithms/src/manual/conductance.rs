//! Manual Pregel Conductance.
//!
//! Membership of a neighbor is not visible to a Pregel vertex, so crossing
//! edges are counted by communication: non-members announce themselves
//! along *reverse* edges, which first requires materializing each vertex's
//! in-neighbor array (the same §4.3 preamble the generated code uses).
//! Phases: send-ids / collect / din / dout+announce / count / finalize.

use super::ENVELOPE;
use gm_graph::{Graph, NodeId};
use gm_pregel::{
    run_with_recovery, ByteReader, CkptError, GlobalValue, MasterContext, MasterDecision, Metrics,
    Persist, PregelConfig, PregelError, ReduceOp, VertexContext, VertexProgram,
};

/// Messages: the id announcement of the preamble, or a crossing-edge mark.
#[derive(Clone, Debug)]
enum Msg {
    /// "I am your in-neighbor" (preamble).
    Id(u32),
    /// "A non-member points at you."
    Mark,
}

impl Persist for Msg {
    fn persist(&self, out: &mut Vec<u8>) {
        match self {
            Msg::Id(src) => {
                0u8.persist(out);
                src.persist(out);
            }
            Msg::Mark => 1u8.persist(out),
        }
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        match u8::restore(r)? {
            0 => Ok(Msg::Id(u32::restore(r)?)),
            1 => Ok(Msg::Mark),
            t => Err(CkptError::Decode(format!(
                "invalid conductance message tag {t:#04x}"
            ))),
        }
    }
}

#[derive(Clone, Debug)]
struct V {
    member: bool,
    in_nbrs: Vec<u32>,
}

impl Persist for V {
    fn persist(&self, out: &mut Vec<u8>) {
        self.member.persist(out);
        self.in_nbrs.persist(out);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok(V {
            member: Persist::restore(r)?,
            in_nbrs: Persist::restore(r)?,
        })
    }
}

struct Conductance {
    din: i64,
    dout: i64,
    cross: i64,
    result: f64,
}

impl VertexProgram for Conductance {
    type VertexValue = V;
    type Message = Msg;

    fn message_bytes(&self, m: &Msg) -> u64 {
        // Two message kinds → a type byte, as in the generated class.
        match m {
            Msg::Id(_) => ENVELOPE + 4 + 1,
            Msg::Mark => ENVELOPE + 1,
        }
    }

    fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
        // Aggregates live for one superstep; fold each as it arrives.
        self.din += ctx.agg_or("din", GlobalValue::Int(0)).as_int();
        self.dout += ctx.agg_or("dout", GlobalValue::Int(0)).as_int();
        self.cross += ctx.agg_or("cross", GlobalValue::Int(0)).as_int();
        if ctx.superstep() == 5 {
            let m = self.din.min(self.dout) as f64;
            self.result = if m == 0.0 {
                if self.cross == 0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                self.cross as f64 / m
            };
            return MasterDecision::Halt;
        }
        MasterDecision::Continue
    }

    fn vertex_compute(
        &self,
        ctx: &mut VertexContext<'_, '_, Msg>,
        value: &mut V,
        messages: &[Msg],
    ) {
        match ctx.superstep() {
            0 => {
                let id = ctx.id().0;
                ctx.send_to_nbrs(Msg::Id(id));
            }
            1 => {
                for m in messages {
                    if let Msg::Id(src) = m {
                        value.in_nbrs.push(*src);
                    }
                }
            }
            2 => {
                if value.member {
                    ctx.reduce_global(
                        "din",
                        ReduceOp::Sum,
                        GlobalValue::Int(ctx.out_degree() as i64),
                    );
                }
            }
            3 => {
                if !value.member {
                    ctx.reduce_global(
                        "dout",
                        ReduceOp::Sum,
                        GlobalValue::Int(ctx.out_degree() as i64),
                    );
                    for &nbr in &value.in_nbrs.clone() {
                        ctx.send(NodeId(nbr), Msg::Mark);
                    }
                }
            }
            _ => {
                if value.member {
                    let crossing =
                        messages.iter().filter(|m| matches!(m, Msg::Mark)).count() as i64;
                    ctx.reduce_global("cross", ReduceOp::Sum, GlobalValue::Int(crossing));
                }
            }
        }
    }

    fn save_master_state(&self, out: &mut Vec<u8>) {
        self.din.persist(out);
        self.dout.persist(out);
        self.cross.persist(out);
        self.result.persist(out);
    }

    fn restore_master_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CkptError> {
        self.din = Persist::restore(r)?;
        self.dout = Persist::restore(r)?;
        self.cross = Persist::restore(r)?;
        self.result = Persist::restore(r)?;
        Ok(())
    }
}

/// Result of [`run_conductance`].
#[derive(Clone, Debug)]
pub struct ConductanceOutcome {
    /// The conductance value.
    pub conductance: f64,
    /// Runtime counters.
    pub metrics: Metrics,
}

/// Runs the manual Conductance baseline.
///
/// # Errors
///
/// Propagates runtime errors from the BSP engine.
///
/// # Panics
///
/// Panics if `member.len()` does not match the vertex count.
pub fn run_conductance(
    graph: &Graph,
    member: &[bool],
    config: &PregelConfig,
) -> Result<ConductanceOutcome, PregelError> {
    assert_eq!(
        member.len(),
        graph.num_nodes() as usize,
        "membership must be per-vertex"
    );
    let mut program = Conductance {
        din: 0,
        dout: 0,
        cross: 0,
        result: 0.0,
    };
    let result = run_with_recovery(
        graph,
        &mut program,
        |n| V {
            member: member[n.index()],
            in_nbrs: Vec::new(),
        },
        config,
    )?;
    Ok(ConductanceOutcome {
        conductance: program.result,
        metrics: result.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gm_graph::gen;

    #[test]
    fn matches_reference() {
        let g = gen::rmat(200, 1400, 13);
        let member: Vec<bool> = (0..200).map(|i| i % 4 == 0).collect();
        let out = run_conductance(&g, &member, &PregelConfig::sequential()).unwrap();
        assert_eq!(out.conductance, reference::conductance(&g, &member));
        assert_eq!(out.metrics.supersteps, 6);
    }

    #[test]
    fn degenerate_sets() {
        let g = gen::complete(5);
        let none = vec![false; 5];
        let out = run_conductance(&g, &none, &PregelConfig::sequential()).unwrap();
        assert_eq!(out.conductance, 0.0);
        let all = vec![true; 5];
        let out = run_conductance(&g, &all, &PregelConfig::sequential()).unwrap();
        assert_eq!(out.conductance, 0.0);
    }
}
