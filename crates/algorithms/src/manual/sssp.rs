//! Manual Pregel SSSP: the classic one-superstep-per-wave formulation
//! (receive tentative distances, relax, immediately propagate).

use super::ENVELOPE;
use gm_graph::{Graph, NodeId};
use gm_pregel::{
    run_with_recovery, ByteReader, CkptError, GlobalValue, MasterContext, MasterDecision, Metrics,
    Persist, PregelConfig, PregelError, ReduceOp, VertexContext, VertexProgram,
};

/// Per-vertex state.
#[derive(Clone, Debug)]
struct V {
    dist: i64,
    dist_nxt: i64,
    updated: bool,
}

impl Persist for V {
    fn persist(&self, out: &mut Vec<u8>) {
        self.dist.persist(out);
        self.dist_nxt.persist(out);
        self.updated.persist(out);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok(V {
            dist: Persist::restore(r)?,
            dist_nxt: Persist::restore(r)?,
            updated: Persist::restore(r)?,
        })
    }
}

struct Sssp<'a> {
    root: NodeId,
    weights: &'a [i64],
}

impl Sssp<'_> {
    fn relax_and_send(&self, ctx: &mut VertexContext<'_, '_, i64>, value: &V) {
        if value.updated {
            for (t, e) in ctx.out_neighbors() {
                ctx.send(t, value.dist + self.weights[e.index()]);
            }
        }
    }
}

impl VertexProgram for Sssp<'_> {
    type VertexValue = V;
    type Message = i64;

    fn message_bytes(&self, _m: &i64) -> u64 {
        ENVELOPE + 4 // the paper's `Int` distances
    }

    fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
        if ctx.superstep() >= 3 {
            let any = ctx.agg_or("upd", GlobalValue::Bool(false)).as_bool();
            if !any {
                return MasterDecision::Halt;
            }
        }
        MasterDecision::Continue
    }

    fn vertex_compute(
        &self,
        ctx: &mut VertexContext<'_, '_, i64>,
        value: &mut V,
        messages: &[i64],
    ) {
        match ctx.superstep() {
            0 => {
                let is_root = ctx.id() == self.root;
                value.dist = if is_root { 0 } else { i64::MAX };
                value.dist_nxt = value.dist;
                value.updated = is_root;
            }
            1 => self.relax_and_send(ctx, &value.clone()),
            _ => {
                for m in messages {
                    value.dist_nxt = value.dist_nxt.min(*m);
                }
                value.updated = value.dist_nxt < value.dist;
                value.dist = value.dist_nxt;
                if value.updated {
                    ctx.reduce_global("upd", ReduceOp::Or, GlobalValue::Bool(true));
                }
                self.relax_and_send(ctx, &value.clone());
            }
        }
    }
}

/// Result of [`run_sssp`].
#[derive(Clone, Debug)]
pub struct SsspOutcome {
    /// Shortest distances (`i64::MAX` = unreachable).
    pub dist: Vec<i64>,
    /// Runtime counters.
    pub metrics: Metrics,
}

/// Runs the manual SSSP baseline.
///
/// # Errors
///
/// Propagates runtime errors from the BSP engine.
///
/// # Panics
///
/// Panics if `weights.len()` does not match the edge count.
pub fn run_sssp(
    graph: &Graph,
    root: NodeId,
    weights: &[i64],
    config: &PregelConfig,
) -> Result<SsspOutcome, PregelError> {
    assert_eq!(
        weights.len(),
        graph.num_edges() as usize,
        "weights must be per-edge"
    );
    let mut program = Sssp { root, weights };
    let result = run_with_recovery(
        graph,
        &mut program,
        |_| V {
            dist: i64::MAX,
            dist_nxt: i64::MAX,
            updated: false,
        },
        config,
    )?;
    Ok(SsspOutcome {
        dist: result.values.iter().map(|v| v.dist).collect(),
        metrics: result.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gm_graph::gen;

    #[test]
    fn matches_dijkstra() {
        let g = gen::rmat(250, 1500, 7);
        let weights: Vec<i64> = (0..1500).map(|i| 1 + (i * 11) % 9).collect();
        let out = run_sssp(&g, NodeId(2), &weights, &PregelConfig::sequential()).unwrap();
        assert_eq!(out.dist, reference::dijkstra(&g, NodeId(2), &weights));
    }

    #[test]
    fn path_takes_one_superstep_per_hop() {
        let g = gen::path(5);
        let weights = vec![1; 4];
        let out = run_sssp(&g, NodeId(0), &weights, &PregelConfig::sequential()).unwrap();
        assert_eq!(out.dist, vec![0, 1, 2, 3, 4]);
        // init + first send + 4 waves + one quiet round + halt-discovery
        // (the last wave's `updated` flag keeps the loop alive one extra
        // superstep — exactly as in the generated machine).
        assert_eq!(out.metrics.supersteps, 8);
        assert_eq!(out.metrics.total_messages, 4);
    }
}
