//! Manual Pregel Average Teenage Followers (the paper's Fig. 3, on this
//! runtime).
//!
//! Superstep 0: every teenager messages its out-neighbors ("I follow you").
//! Superstep 1: each vertex counts received messages into `teen_cnt`;
//! vertices older than `K` reduce their count into the `S`/`C` globals.
//! Superstep 2: the master finalizes the average and halts.

use super::ENVELOPE;
use gm_graph::{Graph, NodeId};
use gm_pregel::{
    run_with_recovery, ByteReader, CkptError, GlobalValue, MasterContext, MasterDecision, Metrics,
    Persist, PregelConfig, PregelError, ReduceOp, VertexContext, VertexProgram,
};

/// Per-vertex state.
#[derive(Clone, Debug)]
struct V {
    age: i64,
    teen_cnt: i64,
}

impl Persist for V {
    fn persist(&self, out: &mut Vec<u8>) {
        self.age.persist(out);
        self.teen_cnt.persist(out);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok(V {
            age: Persist::restore(r)?,
            teen_cnt: Persist::restore(r)?,
        })
    }
}

struct AvgTeen {
    k: i64,
    avg: f64,
}

impl VertexProgram for AvgTeen {
    type VertexValue = V;
    type Message = ();

    fn message_bytes(&self, _m: &()) -> u64 {
        ENVELOPE // empty payload, single message kind
    }

    fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
        match ctx.superstep() {
            0 | 1 => MasterDecision::Continue,
            _ => {
                let s = ctx.agg_or("S", GlobalValue::Int(0)).as_int();
                let c = ctx.agg_or("C", GlobalValue::Int(0)).as_int();
                self.avg = if c == 0 { 0.0 } else { s as f64 / c as f64 };
                MasterDecision::Halt
            }
        }
    }

    fn vertex_compute(&self, ctx: &mut VertexContext<'_, '_, ()>, value: &mut V, messages: &[()]) {
        match ctx.superstep() {
            0 => {
                if (13..20).contains(&value.age) {
                    ctx.send_to_nbrs(());
                }
            }
            _ => {
                value.teen_cnt = messages.len() as i64;
                if value.age > self.k {
                    ctx.reduce_global("S", ReduceOp::Sum, GlobalValue::Int(value.teen_cnt));
                    ctx.reduce_global("C", ReduceOp::Sum, GlobalValue::Int(1));
                }
            }
        }
    }

    fn save_master_state(&self, out: &mut Vec<u8>) {
        self.avg.persist(out);
    }

    fn restore_master_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CkptError> {
        self.avg = Persist::restore(r)?;
        Ok(())
    }
}

/// Result of [`run_avg_teen`].
#[derive(Clone, Debug)]
pub struct AvgTeenOutcome {
    /// Teenage-follower count per vertex.
    pub teen_cnt: Vec<i64>,
    /// Average over vertices with `age > k`.
    pub avg: f64,
    /// Runtime counters.
    pub metrics: Metrics,
}

/// Runs the manual AvgTeen baseline.
///
/// # Errors
///
/// Propagates runtime errors from the BSP engine.
///
/// # Panics
///
/// Panics if `ages.len()` does not match the vertex count.
pub fn run_avg_teen(
    graph: &Graph,
    ages: &[i64],
    k: i64,
    config: &PregelConfig,
) -> Result<AvgTeenOutcome, PregelError> {
    assert_eq!(
        ages.len(),
        graph.num_nodes() as usize,
        "ages must be per-vertex"
    );
    let mut program = AvgTeen { k, avg: 0.0 };
    let init = |n: NodeId| V {
        age: ages[n.index()],
        teen_cnt: 0,
    };
    let result = run_with_recovery(graph, &mut program, init, config)?;
    Ok(AvgTeenOutcome {
        teen_cnt: result.values.iter().map(|v| v.teen_cnt).collect(),
        avg: program.avg,
        metrics: result.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gm_graph::gen;

    #[test]
    fn matches_reference() {
        let g = gen::rmat(300, 2000, 3);
        let ages: Vec<i64> = (0..300).map(|i| (i * 31) % 90).collect();
        let out = run_avg_teen(&g, &ages, 25, &PregelConfig::sequential()).unwrap();
        let (ref_cnt, ref_avg) = reference::avg_teen(&g, &ages, 25);
        assert_eq!(out.teen_cnt, ref_cnt);
        assert_eq!(out.avg, ref_avg);
        assert_eq!(out.metrics.supersteps, 3);
    }

    #[test]
    fn message_count_is_teen_out_degree_sum() {
        let g = gen::star(4);
        let ages = vec![15, 30, 30, 30, 30]; // hub is a teen with 4 out-edges
        let out = run_avg_teen(&g, &ages, 20, &PregelConfig::sequential()).unwrap();
        assert_eq!(out.metrics.total_messages, 4);
        assert_eq!(out.metrics.total_message_bytes, 4 * ENVELOPE);
        assert_eq!(out.teen_cnt, vec![0, 1, 1, 1, 1]);
    }
}
