//! Manual Pregel PageRank, with the single-superstep-per-iteration
//! structure hand-tuned GPS programs use (receive contributions, update,
//! immediately send the next round's contributions; the final round's
//! messages dangle and are dropped).

use super::ENVELOPE;
use gm_graph::{Graph, NodeId};
use gm_pregel::{
    run_with_recovery, ByteReader, CkptError, GlobalValue, MasterContext, MasterDecision, Metrics,
    Persist, PregelConfig, PregelError, ReduceOp, VertexContext, VertexProgram,
};

struct Pagerank {
    n: f64,
    e: f64,
    d: f64,
    max_iter: i64,
    cnt: i64,
}

impl VertexProgram for Pagerank {
    type VertexValue = f64;
    type Message = f64;

    fn message_bytes(&self, _m: &f64) -> u64 {
        ENVELOPE + 8
    }

    fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
        // Superstep 0: init. Superstep 1: first send. Superstep ≥ 2: one
        // full iteration per superstep; the aggregate from iteration k is
        // visible at superstep k + 3.
        if ctx.superstep() >= 3 {
            let diff = ctx.agg_or("diff", GlobalValue::Double(0.0)).as_double();
            self.cnt += 1;
            if !(diff > self.e && self.cnt < self.max_iter) {
                return MasterDecision::Halt;
            }
        }
        MasterDecision::Continue
    }

    fn vertex_compute(
        &self,
        ctx: &mut VertexContext<'_, '_, f64>,
        value: &mut f64,
        messages: &[f64],
    ) {
        match ctx.superstep() {
            0 => *value = 1.0 / self.n,
            1 => {
                let contribution = *value / ctx.out_degree() as f64;
                ctx.send_to_nbrs(contribution);
            }
            _ => {
                let mut sum = 0.0;
                for m in messages {
                    sum += *m;
                }
                let val = (1.0 - self.d) / self.n + self.d * sum;
                ctx.reduce_global(
                    "diff",
                    ReduceOp::Sum,
                    GlobalValue::Double((val - *value).abs()),
                );
                *value = val;
                // Speculative send for the next iteration (dangles on the
                // last one, exactly like the merged generated loop).
                let contribution = *value / ctx.out_degree() as f64;
                ctx.send_to_nbrs(contribution);
            }
        }
    }

    fn save_master_state(&self, out: &mut Vec<u8>) {
        self.cnt.persist(out);
    }

    fn restore_master_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CkptError> {
        self.cnt = Persist::restore(r)?;
        Ok(())
    }
}

/// Result of [`run_pagerank`].
#[derive(Clone, Debug)]
pub struct PagerankOutcome {
    /// Final PageRank values.
    pub pr: Vec<f64>,
    /// Iterations executed.
    pub iterations: i64,
    /// Runtime counters.
    pub metrics: Metrics,
}

/// Runs the manual PageRank baseline.
///
/// # Errors
///
/// Propagates runtime errors from the BSP engine.
pub fn run_pagerank(
    graph: &Graph,
    e: f64,
    d: f64,
    max_iter: i64,
    config: &PregelConfig,
) -> Result<PagerankOutcome, PregelError> {
    let mut program = Pagerank {
        n: graph.num_nodes() as f64,
        e,
        d,
        max_iter,
        cnt: 0,
    };
    let result = run_with_recovery(graph, &mut program, |_: NodeId| 0.0, config)?;
    Ok(PagerankOutcome {
        pr: result.values,
        iterations: program.cnt,
        metrics: result.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gm_graph::gen;

    #[test]
    fn matches_reference_exactly() {
        let g = gen::rmat(200, 1400, 5);
        let out = run_pagerank(&g, 1e-9, 0.85, 20, &PregelConfig::sequential()).unwrap();
        let (ref_pr, ref_iters) = reference::pagerank(&g, 1e-9, 0.85, 20);
        assert_eq!(out.iterations, ref_iters);
        assert_eq!(out.pr, ref_pr);
    }

    #[test]
    fn superstep_structure() {
        let g = gen::cycle(10);
        let iters = 5;
        // Negative epsilon forces the loop to run out the iteration budget.
        let out = run_pagerank(&g, -1.0, 0.85, iters, &PregelConfig::sequential()).unwrap();
        assert_eq!(out.iterations, iters);
        // init + first send + iters merged supersteps + final halt check.
        assert_eq!(out.metrics.supersteps as i64, 2 + iters + 1);
        // (iters + 1) rounds of sends (the last one dangles).
        assert_eq!(out.metrics.total_messages as i64, (iters + 1) * 10);
    }
}
