//! Manual Pregel Random Bipartite Matching: the paper's three-phase
//! handshake with an explicitly tagged message class (as in the paper's
//! Fig. 3 style) and the steady-state three-supersteps-per-round loop.
//!
//! Round structure after the first proposal wave (superstep 1):
//!
//! * `A` — girls accept proposals (last writer in sender order wins) and
//!   write back to their chosen suitor;
//! * `B` — boys accept write-backs, finalize the match, notify the girl,
//!   and bump the global match counter;
//! * `C` — girls record the notification; the round's activity is reduced
//!   to the master; suitors reset and unmatched boys speculatively propose
//!   for the next round (dangling on the last).

use super::ENVELOPE;
use gm_graph::{Graph, NodeId};
use gm_pregel::{
    run_with_recovery, ByteReader, CkptError, GlobalValue, MasterContext, MasterDecision, Metrics,
    Persist, PregelConfig, PregelError, ReduceOp, VertexContext, VertexProgram,
};

const NIL: u32 = u32::MAX;

/// The tagged message class.
#[derive(Clone, Debug)]
enum Msg {
    /// Boy → girl: "marry me" (carries the boy's id).
    Propose(u32),
    /// Girl → boy: "yes" (carries the girl's id).
    WriteBack(u32),
    /// Boy → girl: "deal" (carries the boy's id).
    Notify(u32),
}

impl Persist for Msg {
    fn persist(&self, out: &mut Vec<u8>) {
        let (tag, id) = match self {
            Msg::Propose(b) => (0u8, *b),
            Msg::WriteBack(g) => (1u8, *g),
            Msg::Notify(b) => (2u8, *b),
        };
        tag.persist(out);
        id.persist(out);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        let tag = u8::restore(r)?;
        let id = u32::restore(r)?;
        match tag {
            0 => Ok(Msg::Propose(id)),
            1 => Ok(Msg::WriteBack(id)),
            2 => Ok(Msg::Notify(id)),
            t => Err(CkptError::Decode(format!(
                "invalid matching message tag {t:#04x}"
            ))),
        }
    }
}

#[derive(Clone, Debug)]
struct V {
    is_boy: bool,
    matched: u32,
    suitor: u32,
}

impl Persist for V {
    fn persist(&self, out: &mut Vec<u8>) {
        self.is_boy.persist(out);
        self.matched.persist(out);
        self.suitor.persist(out);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok(V {
            is_boy: Persist::restore(r)?,
            matched: Persist::restore(r)?,
            suitor: Persist::restore(r)?,
        })
    }
}

struct Matching {
    count: i64,
}

fn propose(ctx: &mut VertexContext<'_, '_, Msg>, value: &mut V) {
    value.suitor = NIL;
    if value.is_boy && value.matched == NIL {
        let id = ctx.id().0;
        ctx.send_to_nbrs(Msg::Propose(id));
    }
}

impl VertexProgram for Matching {
    type VertexValue = V;
    type Message = Msg;

    fn message_bytes(&self, _m: &Msg) -> u64 {
        ENVELOPE + 4 + 1 // one vertex id + the type byte
    }

    fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
        self.count += ctx.agg_or("cnt", GlobalValue::Int(0)).as_int();
        // Phase C runs at supersteps 4, 7, 10, ...; its activity flag is
        // visible one superstep later.
        let t = ctx.superstep();
        if t >= 5 && (t - 5) % 3 == 0 {
            let any = ctx.agg_or("any", GlobalValue::Bool(false)).as_bool();
            if !any {
                return MasterDecision::Halt;
            }
        }
        MasterDecision::Continue
    }

    fn vertex_compute(
        &self,
        ctx: &mut VertexContext<'_, '_, Msg>,
        value: &mut V,
        messages: &[Msg],
    ) {
        let t = ctx.superstep();
        if t == 0 {
            value.matched = NIL;
            value.suitor = NIL;
            return;
        }
        if t == 1 {
            propose(ctx, value);
            return;
        }
        match (t - 2) % 3 {
            // Phase A: girls accept proposals, write back.
            0 => {
                if !value.is_boy && value.matched == NIL {
                    for m in messages {
                        if let Msg::Propose(b) = m {
                            value.suitor = *b;
                        }
                    }
                }
                if !value.is_boy && value.suitor != NIL {
                    let id = ctx.id().0;
                    ctx.send(NodeId(value.suitor), Msg::WriteBack(id));
                }
            }
            // Phase B: boys accept write-backs, finalize, notify, count.
            1 => {
                if value.is_boy {
                    for m in messages {
                        if let Msg::WriteBack(g) = m {
                            value.suitor = *g;
                        }
                    }
                    if value.matched == NIL && value.suitor != NIL {
                        value.matched = value.suitor;
                        let id = ctx.id().0;
                        ctx.send(NodeId(value.suitor), Msg::Notify(id));
                        ctx.reduce_global("cnt", ReduceOp::Sum, GlobalValue::Int(1));
                    }
                }
            }
            // Phase C: girls record; activity check; speculative proposals.
            _ => {
                if !value.is_boy {
                    for m in messages {
                        if let Msg::Notify(b) = m {
                            value.matched = *b;
                        }
                    }
                    if value.suitor != NIL {
                        ctx.reduce_global("any", ReduceOp::Or, GlobalValue::Bool(true));
                    }
                }
                propose(ctx, value);
            }
        }
    }

    fn save_master_state(&self, out: &mut Vec<u8>) {
        self.count.persist(out);
    }

    fn restore_master_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CkptError> {
        self.count = Persist::restore(r)?;
        Ok(())
    }
}

/// Result of [`run_bipartite_matching`].
#[derive(Clone, Debug)]
pub struct MatchingOutcome {
    /// Partner per vertex (`u32::MAX` = unmatched).
    pub matching: Vec<u32>,
    /// Matched pairs.
    pub pairs: i64,
    /// Runtime counters.
    pub metrics: Metrics,
}

/// Runs the manual bipartite-matching baseline.
///
/// # Errors
///
/// Propagates runtime errors from the BSP engine.
///
/// # Panics
///
/// Panics if `is_boy.len()` does not match the vertex count.
pub fn run_bipartite_matching(
    graph: &Graph,
    is_boy: &[bool],
    config: &PregelConfig,
) -> Result<MatchingOutcome, PregelError> {
    assert_eq!(
        is_boy.len(),
        graph.num_nodes() as usize,
        "side marks must be per-vertex"
    );
    let mut program = Matching { count: 0 };
    let result = run_with_recovery(
        graph,
        &mut program,
        |n| V {
            is_boy: is_boy[n.index()],
            matched: NIL,
            suitor: NIL,
        },
        config,
    )?;
    Ok(MatchingOutcome {
        matching: result.values.iter().map(|v| v.matched).collect(),
        pairs: program.count,
        metrics: result.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gm_graph::gen;

    #[test]
    fn produces_valid_maximal_matching() {
        let g = gen::bipartite(40, 50, 220, 3);
        let is_boy: Vec<bool> = (0..90).map(|i| i < 40).collect();
        let out = run_bipartite_matching(&g, &is_boy, &PregelConfig::sequential()).unwrap();
        let stats = reference::check_matching(&g, &is_boy, &out.matching);
        assert!(stats.valid);
        assert!(stats.maximal);
        assert_eq!(out.pairs, stats.pairs as i64);
    }

    #[test]
    fn perfect_matching_on_disjoint_pairs() {
        // Boys 0..3 each know exactly one girl 3..6.
        let mut b = gm_graph::GraphBuilder::new(6);
        b.extend([(0, 3), (1, 4), (2, 5)]);
        let g = b.build();
        let is_boy = vec![true, true, true, false, false, false];
        let out = run_bipartite_matching(&g, &is_boy, &PregelConfig::sequential()).unwrap();
        assert_eq!(out.pairs, 3);
        assert_eq!(out.matching, vec![3, 4, 5, 0, 1, 2]);
        // init, propose, A, B, C (activity still observed), one quiet
        // A/B/C round, halt check — matching the generated machine.
        assert_eq!(out.metrics.supersteps, 9);
    }

    #[test]
    fn contended_girl_matches_last_proposer() {
        // Both boys know only girl 2: ascending-sender order makes boy 1 win.
        let mut b = gm_graph::GraphBuilder::new(3);
        b.extend([(0, 2), (1, 2)]);
        let g = b.build();
        let is_boy = vec![true, true, false];
        let out = run_bipartite_matching(&g, &is_boy, &PregelConfig::sequential()).unwrap();
        assert_eq!(out.pairs, 1);
        assert_eq!(out.matching[2], 1);
        assert_eq!(out.matching[1], 2);
        assert_eq!(out.matching[0], NIL);
    }
}
