//! Sequential reference implementations — the correctness oracles.
//!
//! Floating-point accumulation orders deliberately mirror the BSP
//! execution (ascending sender id), so differential tests against the
//! compiled and manual Pregel runs can demand exact equality.

use gm_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Average Teenage Followers: per-vertex teenage in-neighbor counts plus
/// the average over vertices with `age > k`.
pub fn avg_teen(graph: &Graph, age: &[i64], k: i64) -> (Vec<i64>, f64) {
    let mut teen_cnt = vec![0i64; graph.num_nodes() as usize];
    for v in graph.nodes() {
        teen_cnt[v.index()] = graph
            .in_neighbors(v)
            .filter(|(s, _)| (13..20).contains(&age[s.index()]))
            .count() as i64;
    }
    let mut s = 0.0f64;
    let mut c = 0i64;
    for v in graph.nodes() {
        if age[v.index()] > k {
            s += teen_cnt[v.index()] as f64;
            c += 1;
        }
    }
    let avg = if c == 0 { 0.0 } else { s / c as f64 };
    (teen_cnt, avg)
}

/// PageRank with the paper's update rule and stopping condition
/// (`L1 delta ≤ e` or `max_iter` rounds). Returns `(pr, iterations)`.
pub fn pagerank(graph: &Graph, e: f64, d: f64, max_iter: i64) -> (Vec<f64>, i64) {
    let n = graph.num_nodes() as usize;
    let nn = n as f64;
    let mut pr = vec![1.0 / nn; n];
    let mut cnt = 0i64;
    loop {
        let mut diff = 0.0f64;
        let mut next = vec![0.0f64; n];
        for v in graph.nodes() {
            // Ascending in-neighbor (sender) order, matching message order.
            let mut sum = 0.0f64;
            for (w, _) in graph.in_neighbors(v) {
                sum += pr[w.index()] / graph.out_degree(w) as f64;
            }
            let val = (1.0 - d) / nn + d * sum;
            diff += (val - pr[v.index()]).abs();
            next[v.index()] = val;
        }
        pr = next;
        cnt += 1;
        if !(diff > e && cnt < max_iter) {
            break;
        }
    }
    (pr, cnt)
}

/// Conductance of the `member` set: `cross / min(din, dout)` with the
/// degenerate cases of the paper.
pub fn conductance(graph: &Graph, member: &[bool]) -> f64 {
    let mut din = 0i64;
    let mut dout = 0i64;
    let mut cross = 0i64;
    for v in graph.nodes() {
        let deg = graph.out_degree(v) as i64;
        if member[v.index()] {
            din += deg;
            cross += graph
                .out_neighbors(v)
                .filter(|(t, _)| !member[t.index()])
                .count() as i64;
        } else {
            dout += deg;
        }
    }
    let m = din.min(dout) as f64;
    if m == 0.0 {
        if cross == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        cross as f64 / m
    }
}

/// Dijkstra shortest paths; `i64::MAX` marks unreachable vertices.
///
/// # Panics
///
/// Panics on negative weights.
pub fn dijkstra(graph: &Graph, root: NodeId, weights: &[i64]) -> Vec<i64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    assert!(weights.iter().all(|&w| w >= 0), "negative edge weight");
    let n = graph.num_nodes() as usize;
    let mut dist = vec![i64::MAX; n];
    dist[root.index()] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0i64, root.0)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for (t, e) in graph.out_neighbors(NodeId(u)) {
            let nd = d + weights[e.index()];
            if nd < dist[t.index()] {
                dist[t.index()] = nd;
                heap.push(Reverse((nd, t.0)));
            }
        }
    }
    dist
}

/// BFS levels from `root` over out-edges; `u32::MAX` marks unreachable.
pub fn bfs_levels(graph: &Graph, root: NodeId) -> Vec<u32> {
    let n = graph.num_nodes() as usize;
    let mut lev = vec![u32::MAX; n];
    lev[root.index()] = 0;
    let mut frontier = vec![root.0];
    let mut depth = 0;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            for (t, _) in graph.out_neighbors(NodeId(u)) {
                if lev[t.index()] == u32::MAX {
                    lev[t.index()] = depth + 1;
                    next.push(t.0);
                }
            }
        }
        next.sort_unstable();
        frontier = next;
        depth += 1;
    }
    lev
}

/// Approximate Betweenness Centrality: `k` rounds of Brandes-style
/// forward/backward accumulation from roots drawn with the same seeded RNG
/// sequence the compiled program's `G.PickRandom()` uses. Returns the
/// per-vertex scores and their sum.
pub fn bc_approx(graph: &Graph, k: i64, seed: u64) -> (Vec<f64>, f64) {
    let n = graph.num_nodes() as usize;
    let mut bc = vec![0.0f64; n];
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..k {
        let s = NodeId(rng.gen_range(0..graph.num_nodes()));
        accumulate_bc(graph, s, &mut bc);
    }
    let sum = bc.iter().sum();
    (bc, sum)
}

/// One Brandes round from `s`, with level-synchronous sigma/delta and
/// ascending-neighbor float accumulation (matching the BSP order).
fn accumulate_bc(graph: &Graph, s: NodeId, bc: &mut [f64]) {
    let lev = bfs_levels(graph, s);
    let n = graph.num_nodes() as usize;
    let mut sigma = vec![0.0f64; n];
    sigma[s.index()] = 1.0;
    let max_lev = lev
        .iter()
        .filter(|&&l| l != u32::MAX)
        .max()
        .copied()
        .unwrap_or(0);
    let mut by_level: Vec<Vec<u32>> = vec![Vec::new(); max_lev as usize + 1];
    for v in graph.nodes() {
        if lev[v.index()] != u32::MAX {
            by_level[lev[v.index()] as usize].push(v.0);
        }
    }
    // Forward: sigma sums over parents, ascending parent id (per edge).
    for (level, nodes) in by_level.iter().enumerate().skip(1) {
        for &v in nodes {
            let mut parents: Vec<u32> = graph
                .in_neighbors(NodeId(v))
                .filter(|(w, _)| lev[w.index()] == level as u32 - 1)
                .map(|(w, _)| w.0)
                .collect();
            parents.sort_unstable();
            for w in parents {
                sigma[v as usize] += sigma[w as usize];
            }
        }
    }
    // Backward: delta sums over children, ascending child id (per edge).
    let mut delta = vec![0.0f64; n];
    for (level, nodes) in by_level.iter().enumerate().rev() {
        for &v in nodes {
            let mut kids: Vec<u32> = graph
                .out_neighbors(NodeId(v))
                .filter(|(w, _)| lev[w.index()] == level as u32 + 1)
                .map(|(w, _)| w.0)
                .collect();
            kids.sort_unstable();
            let mut acc = 0.0f64;
            for w in kids {
                acc += (sigma[v as usize] / sigma[w as usize]) * (1.0 + delta[w as usize]);
            }
            delta[v as usize] = acc;
            if NodeId(v) != s {
                bc[v as usize] += delta[v as usize];
            }
        }
    }
}

/// Validity/maximality report for a bipartite matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatchStats {
    /// Number of matched pairs.
    pub pairs: u32,
    /// Every match is mutual and along an edge.
    pub valid: bool,
    /// No unmatched boy has an unmatched girl neighbor.
    pub maximal: bool,
}

/// Checks a matching produced over a bipartite graph (`is_boy` marks the
/// proposing side; `matching[v]` is the partner id or `u32::MAX`).
pub fn check_matching(graph: &Graph, is_boy: &[bool], matching: &[u32]) -> MatchStats {
    const NIL: u32 = u32::MAX;
    let mut pairs = 0;
    let mut valid = true;
    for v in graph.nodes() {
        let m = matching[v.index()];
        if m == NIL {
            continue;
        }
        if is_boy[v.index()] {
            pairs += 1;
            // Mutual?
            if matching[m as usize] != v.0 {
                valid = false;
            }
            // Along an edge?
            if !graph.out_neighbors(v).any(|(t, _)| t.0 == m) {
                valid = false;
            }
        }
    }
    let mut maximal = true;
    for v in graph.nodes() {
        if is_boy[v.index()] && matching[v.index()] == NIL {
            for (g, _) in graph.out_neighbors(v) {
                if matching[g.index()] == NIL {
                    maximal = false;
                }
            }
        }
    }
    MatchStats {
        pairs,
        valid,
        maximal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_graph::gen;

    #[test]
    fn avg_teen_star() {
        // Spokes 1..=4 follow nothing; hub 0 followed by nobody. Flip:
        // edges 0→spokes, so spokes' followers = {0}.
        let g = gen::star(4);
        let age = vec![15, 30, 40, 50, 12];
        let (cnt, avg) = avg_teen(&g, &age, 20);
        // Vertex 0 is a teen; it follows (points at) 1..4, so each spoke
        // has one teenage follower.
        assert_eq!(cnt, vec![0, 1, 1, 1, 1]);
        // Over-20 vertices: 1,2,3 (ages 30,40,50) → avg = 1.
        assert!((avg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        let g = gen::cycle(10);
        let (pr, _) = pagerank(&g, 1e-12, 0.85, 100);
        for v in &pr {
            assert!((v - 0.1).abs() < 1e-9, "{pr:?}");
        }
    }

    #[test]
    fn pagerank_sums_to_one_without_sinks() {
        let g = gen::cycle(50);
        let (pr, iters) = pagerank(&g, 1e-10, 0.85, 200);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(iters >= 1);
    }

    #[test]
    fn conductance_extremes() {
        let g = gen::complete(6);
        let all = vec![true; 6];
        assert_eq!(conductance(&g, &all), 0.0); // dout = 0, cross = 0 → 0
        let none = vec![false; 6];
        assert_eq!(conductance(&g, &none), 0.0);
        let half = vec![true, true, true, false, false, false];
        let c = conductance(&g, &half);
        // din = 15, dout = 15, cross = 9 → 0.6
        assert!((c - 0.6).abs() < 1e-12, "{c}");
    }

    #[test]
    fn dijkstra_on_weighted_path() {
        let g = gen::path(4);
        let w = vec![2, 3, 4];
        let d = dijkstra(&g, NodeId(0), &w);
        assert_eq!(d, vec![0, 2, 5, 9]);
        let d1 = dijkstra(&g, NodeId(1), &w);
        assert_eq!(d1[0], i64::MAX); // unreachable backwards
    }

    #[test]
    fn bfs_levels_diamond() {
        let mut b = gm_graph::GraphBuilder::new(5);
        b.extend([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let g = b.build();
        assert_eq!(bfs_levels(&g, NodeId(0)), vec![0, 1, 1, 2, 3]);
    }

    #[test]
    fn bc_exact_on_path_middle_vertex() {
        // Undirected path via bidirectional edges: centrality of the middle
        // vertex of a 3-path from every source = known values.
        let g = gen::grid(1, 3); // 0 ↔ 1 ↔ 2
        let mut bc = vec![0.0; 3];
        for s in 0..3 {
            accumulate_bc(&g, NodeId(s), &mut bc);
        }
        // Vertex 1 lies on the unique 0↔2 shortest paths: 2 (once per
        // direction); endpoints get 0.
        assert_eq!(bc, vec![0.0, 2.0, 0.0]);
    }

    #[test]
    fn bc_approx_is_seed_deterministic() {
        let g = gen::rmat(64, 256, 3);
        let (a, sa) = bc_approx(&g, 4, 9);
        let (b, sb) = bc_approx(&g, 4, 9);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn matching_checker() {
        // 2 boys (0,1), 2 girls (2,3); edges 0→2, 0→3, 1→2.
        let mut b = gm_graph::GraphBuilder::new(4);
        b.extend([(0, 2), (0, 3), (1, 2)]);
        let g = b.build();
        let is_boy = vec![true, true, false, false];
        const NIL: u32 = u32::MAX;
        // Perfect-ish matching: 0-3, 1-2.
        let m = vec![3, 2, 1, 0];
        let stats = check_matching(&g, &is_boy, &m);
        assert_eq!(
            stats,
            MatchStats {
                pairs: 2,
                valid: true,
                maximal: true
            }
        );
        // 0-2 only: leaves girl 3 free but boy 1 blocked (only knows 2) —
        // still maximal. Boy 0 matched.
        let m2 = vec![2, NIL, 0, NIL];
        let s2 = check_matching(&g, &is_boy, &m2);
        assert!(s2.valid);
        assert!(s2.maximal);
        assert_eq!(s2.pairs, 1);
        // Non-mutual match is invalid.
        let m3 = vec![2, NIL, NIL, NIL];
        assert!(!check_matching(&g, &is_boy, &m3).valid);
        // Non-maximal: everyone free though edges exist.
        let m4 = vec![NIL, NIL, NIL, NIL];
        assert!(!check_matching(&g, &is_boy, &m4).maximal);
    }
}
