//! The paper's six benchmark algorithms, three ways:
//!
//! * [`sources`] — the Green-Marl programs (Fig. 2, Fig. 4, Appendix B),
//!   compiled by `gm-core` and executed by `gm-interp`;
//! * [`manual`] — hand-written Pregel implementations of the five
//!   algorithms the paper also coded natively for GPS (Betweenness
//!   Centrality deliberately has none: the paper's point is that a manual
//!   Pregel BC is prohibitively difficult);
//! * [`reference`] — sequential oracles used by the differential tests.
//! * [`native`] — `gm-core::rustgen` output compiled into the binary
//!   (the `--backend native` modules), bit-identical to the interpreter.

pub mod manual;
pub mod native;
pub mod reference;
pub mod sources;
