//! The embedded Green-Marl sources for the paper's six algorithms.

/// Average Teenage Followers (paper Fig. 2).
pub const AVG_TEEN: &str = include_str!("../gm/avg_teen.gm");
/// PageRank (paper Appendix B).
pub const PAGERANK: &str = include_str!("../gm/pagerank.gm");
/// Conductance (paper Appendix B).
pub const CONDUCTANCE: &str = include_str!("../gm/conductance.gm");
/// Single-Source Shortest Paths (paper Appendix B).
pub const SSSP: &str = include_str!("../gm/sssp.gm");
/// Random Bipartite Matching (paper Appendix B).
pub const BIPARTITE_MATCHING: &str = include_str!("../gm/bipartite_matching.gm");
/// Approximate Betweenness Centrality (paper Fig. 4).
pub const BC_APPROX: &str = include_str!("../gm/bc_approx.gm");

/// `(table-2 label, source)` for every algorithm, in the paper's order.
pub const ALL: [(&str, &str); 6] = [
    ("Average Teenage Follower (AvgTeen)", AVG_TEEN),
    ("PageRank", PAGERANK),
    ("Conductance (Conduct)", CONDUCTANCE),
    ("Single Source Shortest Paths (SSSP)", SSSP),
    ("Random Bipartite Matching (Bipartite)", BIPARTITE_MATCHING),
    ("Approximate Betweenness Centrality (BC)", BC_APPROX),
];

/// Counts non-blank, non-comment-only lines — the Green-Marl LoC metric of
/// Table 2.
pub fn loc(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_are_nonempty_and_small() {
        for (name, src) in ALL {
            let n = loc(src);
            assert!(n > 5, "{name} suspiciously short: {n}");
            assert!(
                n < 60,
                "{name} suspiciously long: {n} — DSL should be terse"
            );
        }
    }

    #[test]
    fn loc_skips_comments_and_blanks() {
        assert_eq!(loc("// c\n\nInt x;\n  // d\ny;\n"), 2);
    }

    #[test]
    fn all_six_parse() {
        for (name, src) in ALL {
            gm_core::parser::parse(src).unwrap_or_else(|e| {
                panic!("{name} failed to parse:\n{}", e.render(src));
            });
        }
    }
}
