//! The six paper algorithms compiled to *native* Rust by
//! `gm-core::rustgen` — the third backend next to [`crate::sources`]
//! (interpreted PIR) and [`crate::manual`] (hand-written Pregel).
//!
//! Every submodule here is `@generated` output of `gmc emit-rust`,
//! checked in verbatim so (a) the goldens are guaranteed to compile —
//! they *are* the crate — and (b) `gmc run --backend native` can select
//! a module by byte-equality between freshly emitted source and
//! [`NativeAlgorithm::generated`]. Regenerate with `GM_UPDATE_GOLDEN=1
//! cargo test -p gm-algorithms --test rustgen_golden` after compiler
//! changes.

// `@generated` emitter output is pinned byte-for-byte by the golden
// tests; rustfmt must not rewrite it.
#[rustfmt::skip]
pub mod avg_teen;
#[rustfmt::skip]
pub mod bc_approx;
#[rustfmt::skip]
pub mod bipartite_matching;
#[rustfmt::skip]
pub mod conductance;
#[rustfmt::skip]
pub mod pagerank;
#[rustfmt::skip]
pub mod sssp;

use gm_core::seqinterp::ArgValue;
use gm_graph::Graph;
use gm_interp::{CompiledOutcome, RunError};
use gm_pregel::PregelConfig;
use std::collections::HashMap;

/// The uniform entry point every generated module exports: same argument
/// conventions and outcome shape as `gm_interp::run_compiled`.
pub type NativeRun =
    fn(&Graph, &HashMap<String, ArgValue>, u64, &PregelConfig) -> Result<CompiledOutcome, RunError>;

/// One compiled-in algorithm: its procedure name, the Green-Marl source it
/// came from, the generated module text, and the native entry point.
pub struct NativeAlgorithm {
    /// The Green-Marl procedure name (`avg_teen_cnt`, `pagerank`, ...).
    pub name: &'static str,
    /// The `.gm` file stem, used for golden paths and bench labels.
    pub stem: &'static str,
    /// The Green-Marl source the module was generated from.
    pub source: &'static str,
    /// The checked-in generated Rust — the golden `gmc emit-rust` output.
    pub generated: &'static str,
    /// Runs the native module.
    pub run: NativeRun,
}

/// All six, in the paper's order (matching [`crate::sources::ALL`]).
pub const ALL: [NativeAlgorithm; 6] = [
    NativeAlgorithm {
        name: "avg_teen_cnt",
        stem: "avg_teen",
        source: crate::sources::AVG_TEEN,
        generated: include_str!("avg_teen.rs"),
        run: avg_teen::run,
    },
    NativeAlgorithm {
        name: "pagerank",
        stem: "pagerank",
        source: crate::sources::PAGERANK,
        generated: include_str!("pagerank.rs"),
        run: pagerank::run,
    },
    NativeAlgorithm {
        name: "conductance",
        stem: "conductance",
        source: crate::sources::CONDUCTANCE,
        generated: include_str!("conductance.rs"),
        run: conductance::run,
    },
    NativeAlgorithm {
        name: "sssp",
        stem: "sssp",
        source: crate::sources::SSSP,
        generated: include_str!("sssp.rs"),
        run: sssp::run,
    },
    NativeAlgorithm {
        name: "bipartite_match",
        stem: "bipartite_matching",
        source: crate::sources::BIPARTITE_MATCHING,
        generated: include_str!("bipartite_matching.rs"),
        run: bipartite_matching::run,
    },
    NativeAlgorithm {
        name: "bc_approx",
        stem: "bc_approx",
        source: crate::sources::BC_APPROX,
        generated: include_str!("bc_approx.rs"),
        run: bc_approx::run,
    },
];

/// Finds the compiled-in module whose generated source is byte-identical
/// to `generated` — the `gmc run --backend native` selection rule.
pub fn find_for_generated(generated: &str) -> Option<&'static NativeAlgorithm> {
    ALL.iter().find(|a| a.generated == generated)
}

/// Finds a compiled-in module by procedure name.
pub fn find_by_name(name: &str) -> Option<&'static NativeAlgorithm> {
    ALL.iter().find(|a| a.name == name)
}
