//! The combiner extension (beyond the paper): enabling sender-side
//! combining must preserve results exactly for integer reductions while
//! reducing message traffic, and must leave supersteps unchanged.

use gm_algorithms::sources;
use gm_core::seqinterp::ArgValue;
use gm_core::value::Value;
use gm_core::{compile, CompileOptions};
use gm_graph::{gen, NodeId};
use gm_interp::run_compiled;
use gm_pregel::PregelConfig;
use std::collections::HashMap;

#[test]
fn sssp_is_marked_combinable() {
    let c = compile(sources::SSSP, &CompileOptions::with_combiners()).unwrap();
    assert!(
        c.program.combinable.iter().any(Option::is_some),
        "SSSP's min-relaxation messages should be combinable"
    );
    // Without the option the marks stay clear (paper-faithful default).
    let plain = compile(sources::SSSP, &CompileOptions::default()).unwrap();
    assert!(plain.program.combinable.iter().all(Option::is_none));
}

#[test]
fn sssp_with_combiners_same_result_fewer_messages() {
    let g = gen::rmat(500, 8000, 21);
    let weights: Vec<Value> = (0..g.num_edges() as i64)
        .map(|i| Value::Int(1 + (i * 7) % 13))
        .collect();
    let args = HashMap::from([
        ("root".to_owned(), ArgValue::Scalar(Value::Node(0))),
        ("len".to_owned(), ArgValue::EdgeProp(weights.clone())),
    ]);
    let plain = compile(sources::SSSP, &CompileOptions::default()).unwrap();
    let combined = compile(sources::SSSP, &CompileOptions::with_combiners()).unwrap();
    // Run with several workers: combining is per-worker, like Pregel's.
    let cfg = PregelConfig::with_workers(3);
    let a = run_compiled(&g, &plain, &args, 0, &cfg).unwrap();
    let b = run_compiled(&g, &combined, &args, 0, &cfg).unwrap();
    assert_eq!(a.node_props["dist"], b.node_props["dist"]);
    assert_eq!(a.metrics.supersteps, b.metrics.supersteps);
    assert!(
        b.metrics.total_messages < a.metrics.total_messages,
        "combining should reduce traffic: {} vs {}",
        b.metrics.total_messages,
        a.metrics.total_messages
    );
    assert!(b.metrics.total_message_bytes < a.metrics.total_message_bytes);
    // Sanity: both agree with Dijkstra.
    let w: Vec<i64> = weights.iter().map(|v| v.as_int()).collect();
    let oracle = gm_algorithms::reference::dijkstra(&g, NodeId(0), &w);
    let dist: Vec<i64> = b.node_props["dist"].iter().map(|v| v.as_int()).collect();
    assert_eq!(dist, oracle);
}

#[test]
fn avg_teen_is_not_combinable() {
    // AvgTeen's messages are empty (the receiver counts them), so
    // combining would change the count — the compiler must not mark them.
    let c = compile(sources::AVG_TEEN, &CompileOptions::with_combiners()).unwrap();
    assert!(c.program.combinable.iter().all(Option::is_none));
}

#[test]
fn bipartite_is_not_combinable() {
    // Plain (non-reduction) assignment receives cannot be combined.
    let c = compile(
        sources::BIPARTITE_MATCHING,
        &CompileOptions::with_combiners(),
    )
    .unwrap();
    assert!(c.program.combinable.iter().all(Option::is_none));
}

#[test]
fn pagerank_combiners_preserve_results_closely() {
    // PageRank's contribution sum is a float reduction; combining reorders
    // additions, so results match within floating tolerance rather than
    // bit-for-bit.
    let g = gen::rmat(300, 3000, 9);
    let args = HashMap::from([
        ("e".to_owned(), ArgValue::Scalar(Value::Double(-1.0))),
        ("d".to_owned(), ArgValue::Scalar(Value::Double(0.85))),
        ("max_iter".to_owned(), ArgValue::Scalar(Value::Int(8))),
    ]);
    let plain = compile(sources::PAGERANK, &CompileOptions::default()).unwrap();
    let combined = compile(sources::PAGERANK, &CompileOptions::with_combiners()).unwrap();
    let cfg = PregelConfig::with_workers(2);
    let a = run_compiled(&g, &plain, &args, 0, &cfg).unwrap();
    let b = run_compiled(&g, &combined, &args, 0, &cfg).unwrap();
    for (x, y) in a.node_props["pr"].iter().zip(&b.node_props["pr"]) {
        let (x, y) = (x.as_f64(), y.as_f64());
        assert!((x - y).abs() < 1e-12, "{x} vs {y}");
    }
    assert!(b.metrics.total_messages < a.metrics.total_messages);
}
