//! End-to-end crash/recovery tests for the five manual algorithms: inject
//! a deterministic worker fault mid-run, let the recovery supervisor
//! restore from the newest snapshot, and require the final result to be
//! identical to the uninterrupted run — values, supersteps, message count,
//! and message bytes.

use gm_algorithms::manual;
use gm_graph::gen;
use gm_pregel::{CheckpointConfig, FaultPlan, PregelConfig, RecoveryPolicy};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// A unique, pre-cleaned snapshot directory per test case.
fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gm-alg-recovery-{}-{}-{}",
        std::process::id(),
        tag,
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn plain(workers: usize) -> PregelConfig {
    PregelConfig::with_workers(workers)
}

/// Checkpoint every `every` supersteps, panic worker 0 at `fail_at`, and
/// allow one supervised restart.
fn faulty(workers: usize, tag: &str, every: u32, fail_at: u32) -> PregelConfig {
    PregelConfig {
        checkpoint: Some(CheckpointConfig::new(fresh_dir(tag), every)),
        faults: FaultPlan::builder()
            .panic_in_compute(fail_at, Some(0))
            .build(),
        recovery: Some(RecoveryPolicy::with_max_restarts(2)),
        ..PregelConfig::with_workers(workers)
    }
}

#[test]
fn pagerank_recovers_exactly_across_worker_counts() {
    let g = gen::rmat(200, 1400, 5);
    for workers in [1usize, 2, 4] {
        let base = manual::run_pagerank(&g, 1e-9, 0.85, 20, &plain(workers)).unwrap();
        let cfg = faulty(workers, "pr", 2, 5);
        let out = manual::run_pagerank(&g, 1e-9, 0.85, 20, &cfg).unwrap();
        assert_eq!(out.pr, base.pr, "workers={workers}");
        assert_eq!(out.iterations, base.iterations);
        assert_eq!(out.metrics.supersteps, base.metrics.supersteps);
        assert_eq!(out.metrics.total_messages, base.metrics.total_messages);
        assert_eq!(
            out.metrics.total_message_bytes,
            base.metrics.total_message_bytes
        );
        assert_eq!(out.metrics.recovery.restarts, 1);
        assert_eq!(out.metrics.recovery.restores, 1);
    }
}

#[test]
fn sssp_recovers_exactly_across_worker_counts() {
    let g = gen::rmat(250, 1500, 7);
    let weights: Vec<i64> = (0..1500).map(|i| 1 + (i * 11) % 9).collect();
    for workers in [1usize, 2, 4] {
        let base = manual::run_sssp(&g, gm_graph::NodeId(2), &weights, &plain(workers)).unwrap();
        let cfg = faulty(workers, "sssp", 2, 4);
        let out = manual::run_sssp(&g, gm_graph::NodeId(2), &weights, &cfg).unwrap();
        assert_eq!(out.dist, base.dist, "workers={workers}");
        assert_eq!(out.metrics.supersteps, base.metrics.supersteps);
        assert_eq!(out.metrics.total_messages, base.metrics.total_messages);
        assert_eq!(
            out.metrics.total_message_bytes,
            base.metrics.total_message_bytes
        );
        assert_eq!(out.metrics.recovery.restarts, 1);
        assert!(out.metrics.recovery.restores >= 1);
    }
}

#[test]
fn avg_teen_recovers_exactly() {
    let g = gen::rmat(300, 2000, 3);
    let ages: Vec<i64> = (0..300).map(|i| (i * 31) % 90).collect();
    let base = manual::run_avg_teen(&g, &ages, 25, &plain(2)).unwrap();
    // Only three supersteps and the last one runs no compute phase:
    // checkpoint every superstep, fail in the middle one.
    let cfg = faulty(2, "teen", 1, 1);
    let out = manual::run_avg_teen(&g, &ages, 25, &cfg).unwrap();
    assert_eq!(out.teen_cnt, base.teen_cnt);
    assert_eq!(out.avg, base.avg);
    assert_eq!(out.metrics.supersteps, base.metrics.supersteps);
    assert_eq!(out.metrics.total_messages, base.metrics.total_messages);
    assert_eq!(
        out.metrics.total_message_bytes,
        base.metrics.total_message_bytes
    );
    assert_eq!(out.metrics.recovery.restarts, 1);
    assert_eq!(out.metrics.recovery.restores, 1);
}

#[test]
fn conductance_recovers_exactly() {
    let g = gen::rmat(200, 1400, 13);
    let member: Vec<bool> = (0..200).map(|i| i % 4 == 0).collect();
    let base = manual::run_conductance(&g, &member, &plain(2)).unwrap();
    let cfg = faulty(2, "cond", 2, 4);
    let out = manual::run_conductance(&g, &member, &cfg).unwrap();
    assert_eq!(out.conductance, base.conductance);
    assert_eq!(out.metrics.supersteps, base.metrics.supersteps);
    assert_eq!(out.metrics.total_messages, base.metrics.total_messages);
    assert_eq!(
        out.metrics.total_message_bytes,
        base.metrics.total_message_bytes
    );
    assert_eq!(out.metrics.recovery.restarts, 1);
}

#[test]
fn bipartite_matching_recovers_exactly() {
    let g = gen::bipartite(40, 50, 220, 3);
    let is_boy: Vec<bool> = (0..90).map(|i| i < 40).collect();
    let base = manual::run_bipartite_matching(&g, &is_boy, &plain(2)).unwrap();
    let cfg = faulty(2, "match", 2, 5);
    let out = manual::run_bipartite_matching(&g, &is_boy, &cfg).unwrap();
    assert_eq!(out.matching, base.matching);
    assert_eq!(out.pairs, base.pairs);
    assert_eq!(out.metrics.supersteps, base.metrics.supersteps);
    assert_eq!(out.metrics.total_messages, base.metrics.total_messages);
    assert_eq!(
        out.metrics.total_message_bytes,
        base.metrics.total_message_bytes
    );
    assert_eq!(out.metrics.recovery.restarts, 1);
    assert_eq!(out.metrics.recovery.restores, 1);
}

#[test]
fn corrupt_snapshot_falls_back_to_previous_and_still_recovers() {
    let g = gen::rmat(200, 1400, 5);
    let base = manual::run_pagerank(&g, 1e-9, 0.85, 20, &plain(2)).unwrap();
    // Flip a byte in the superstep-4 snapshot after it is written: the
    // checksum must reject it and recovery must restore from superstep 2.
    let cfg = PregelConfig {
        checkpoint: Some(CheckpointConfig::new(fresh_dir("corrupt"), 2)),
        faults: FaultPlan::builder()
            .corrupt_snapshot(4)
            .panic_in_compute(5, Some(0))
            .build(),
        recovery: Some(RecoveryPolicy::with_max_restarts(2)),
        ..PregelConfig::with_workers(2)
    };
    let out = manual::run_pagerank(&g, 1e-9, 0.85, 20, &cfg).unwrap();
    assert_eq!(out.pr, base.pr);
    assert_eq!(out.iterations, base.iterations);
    assert_eq!(out.metrics.supersteps, base.metrics.supersteps);
    assert_eq!(out.metrics.recovery.restarts, 1);
    assert_eq!(out.metrics.recovery.corrupt_snapshots_discarded, 1);
}

#[test]
fn truncated_snapshot_falls_back_to_previous_and_still_recovers() {
    let g = gen::rmat(250, 1500, 7);
    let weights: Vec<i64> = (0..1500).map(|i| 1 + (i * 11) % 9).collect();
    let base = manual::run_sssp(&g, gm_graph::NodeId(2), &weights, &plain(2)).unwrap();
    let cfg = PregelConfig {
        checkpoint: Some(CheckpointConfig::new(fresh_dir("trunc"), 2)),
        faults: FaultPlan::builder()
            .truncate_snapshot(4)
            .panic_in_compute(5, Some(0))
            .build(),
        recovery: Some(RecoveryPolicy::with_max_restarts(2)),
        ..PregelConfig::with_workers(2)
    };
    let out = manual::run_sssp(&g, gm_graph::NodeId(2), &weights, &cfg).unwrap();
    assert_eq!(out.dist, base.dist);
    assert_eq!(out.metrics.supersteps, base.metrics.supersteps);
    assert_eq!(out.metrics.recovery.restarts, 1);
    assert_eq!(out.metrics.recovery.corrupt_snapshots_discarded, 1);
}
