//! Schedule-axis tests: pullability of the shipped algorithms, and
//! differential push/pull/auto equivalence on the runtime.

use gm_algorithms::sources;
use gm_core::seqinterp::ArgValue;
use gm_core::value::Value;
use gm_core::{compile, CompileOptions, Pullability};
use gm_graph::gen;
use gm_interp::CompiledOutcome;
use gm_pregel::{PregelConfig, Schedule};
use std::collections::HashMap;

fn verdicts(src: &str) -> Vec<Pullability> {
    let compiled = compile(src, &CompileOptions::default()).expect("compile");
    compiled.program.pullable.clone()
}

#[test]
fn pagerank_send_state_is_captured_pullable() {
    let v = verdicts(sources::PAGERANK);
    assert!(
        v.iter().any(|p| matches!(
            p,
            Pullability::Pullable {
                edge_dependent: false
            }
        )),
        "{v:?}"
    );
}

#[test]
fn sssp_send_state_is_recompute_pullable() {
    let v = verdicts(sources::SSSP);
    assert!(
        v.iter().any(|p| matches!(
            p,
            Pullability::Pullable {
                edge_dependent: true
            }
        )),
        "{v:?}"
    );
}

#[test]
fn every_algorithm_reports_verdicts_for_all_states() {
    for (name, src) in sources::ALL {
        let compiled = compile(src, &CompileOptions::default()).expect(name);
        assert_eq!(
            compiled.program.pullable.len(),
            compiled.program.states.len(),
            "{name}: verdicts not aligned with states"
        );
        println!("{name}: {:?}", compiled.program.pullable);
    }
}

#[test]
fn bipartite_random_writing_states_are_push_only() {
    // Phases 2-3 of the matching handshake send to computed destinations.
    let v = verdicts(sources::BIPARTITE_MATCHING);
    assert!(
        v.iter().any(|p| matches!(p, Pullability::PushOnly { .. })),
        "{v:?}"
    );
}

// ---------------------------------------------------------------------------
// Differential runtime tests: every algorithm must produce bit-identical
// values AND identical structural metrics (supersteps, message/byte counts,
// per-superstep activity) under {Push, Pull, Auto} × {1, 2, 4} workers.
// ---------------------------------------------------------------------------

/// Structural fingerprint of a run: everything the paper treats as the
/// program's observable behavior, down to per-superstep activity.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    node_props: Vec<(String, Vec<Value>)>,
    ret: Option<Value>,
    supersteps: u32,
    total_messages: u64,
    total_message_bytes: u64,
    per_superstep: Vec<(u32, u64, u64)>,
}

fn fingerprint(out: &CompiledOutcome) -> Fingerprint {
    let mut node_props: Vec<(String, Vec<Value>)> = out
        .node_props
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    node_props.sort_by(|a, b| a.0.cmp(&b.0));
    Fingerprint {
        node_props,
        ret: out.ret,
        supersteps: out.metrics.supersteps,
        total_messages: out.metrics.total_messages,
        total_message_bytes: out.metrics.total_message_bytes,
        per_superstep: out
            .metrics
            .per_superstep
            .iter()
            .map(|s| (s.active_vertices, s.messages_sent, s.message_bytes))
            .collect(),
    }
}

type Case = (
    &'static str,
    &'static str,
    gm_graph::Graph,
    HashMap<String, ArgValue>,
    u64,
);

fn algorithm_cases() -> Vec<Case> {
    let mut cases = Vec::new();

    let ages: Vec<Value> = (0..200).map(|i| Value::Int((i * 37) % 80)).collect();
    cases.push((
        "avg_teen",
        sources::AVG_TEEN,
        gen::rmat(200, 1200, 17),
        HashMap::from([
            ("age".to_owned(), ArgValue::NodeProp(ages)),
            ("K".to_owned(), ArgValue::Scalar(Value::Int(25))),
        ]),
        0,
    ));

    cases.push((
        "pagerank",
        sources::PAGERANK,
        gen::rmat(150, 900, 23),
        HashMap::from([
            ("e".to_owned(), ArgValue::Scalar(Value::Double(1e-8))),
            ("d".to_owned(), ArgValue::Scalar(Value::Double(0.85))),
            ("max_iter".to_owned(), ArgValue::Scalar(Value::Int(30))),
        ]),
        0,
    ));

    let member: Vec<Value> = (0..120).map(|i| Value::Bool(i % 3 == 0)).collect();
    cases.push((
        "conductance",
        sources::CONDUCTANCE,
        gen::rmat(120, 700, 31),
        HashMap::from([("member".to_owned(), ArgValue::NodeProp(member))]),
        0,
    ));

    let weights: Vec<Value> = (0..1000).map(|i| Value::Int(1 + (i * 7) % 20)).collect();
    cases.push((
        "sssp",
        sources::SSSP,
        gen::rmat(180, 1000, 41),
        HashMap::from([
            ("root".to_owned(), ArgValue::Scalar(Value::Node(3))),
            ("len".to_owned(), ArgValue::EdgeProp(weights)),
        ]),
        0,
    ));

    let is_boy: Vec<Value> = (0..130).map(|i| Value::Bool(i < 60)).collect();
    cases.push((
        "bipartite",
        sources::BIPARTITE_MATCHING,
        gen::bipartite(60, 70, 350, 13),
        HashMap::from([("is_boy".to_owned(), ArgValue::NodeProp(is_boy))]),
        0,
    ));

    cases.push((
        "bc_approx",
        sources::BC_APPROX,
        gen::rmat(100, 500, 29),
        HashMap::from([("K".to_owned(), ArgValue::Scalar(Value::Int(6)))]),
        77,
    ));

    cases
}

#[test]
fn all_algorithms_bit_identical_across_schedules_and_workers() {
    for (name, src, graph, args, seed) in algorithm_cases() {
        let compiled = compile(src, &CompileOptions::default()).expect(name);
        let seq = gm_interp::run_compiled(
            &graph,
            &compiled,
            &args,
            seed,
            &PregelConfig::sequential().with_schedule(Schedule::Push),
        )
        .unwrap_or_else(|e| panic!("{name} push baseline: {e}"));
        let seq_fp = fingerprint(&seq);

        for workers in [1usize, 2, 4] {
            // Push at this worker count is the baseline the schedule axis
            // must match *bit-identically, return value included*.
            let push = gm_interp::run_compiled(
                &graph,
                &compiled,
                &args,
                seed,
                &PregelConfig::with_workers(workers).with_schedule(Schedule::Push),
            )
            .unwrap_or_else(|e| panic!("{name} Push×{workers}: {e}"));
            let push_fp = fingerprint(&push);
            assert_eq!(push.metrics.pull_supersteps, 0, "{name}: push gathered");

            // Across worker counts everything matches except the master's
            // float return: the aggregator folds per-worker partials in
            // worker order, so a float Sum can round differently. That is
            // a pre-existing property of the partitioning, not of the
            // schedule — node values and structural metrics stay exact.
            assert_eq!(push_fp.node_props, seq_fp.node_props, "{name}×{workers}");
            assert_eq!(push_fp.supersteps, seq_fp.supersteps, "{name}×{workers}");
            assert_eq!(
                push_fp.total_messages, seq_fp.total_messages,
                "{name}×{workers}"
            );
            assert_eq!(
                push_fp.total_message_bytes, seq_fp.total_message_bytes,
                "{name}×{workers}"
            );
            assert_eq!(
                push_fp.per_superstep, seq_fp.per_superstep,
                "{name}×{workers}"
            );

            for schedule in [Schedule::Pull, Schedule::Auto] {
                let config = PregelConfig::with_workers(workers).with_schedule(schedule);
                let out = gm_interp::run_compiled(&graph, &compiled, &args, seed, &config)
                    .unwrap_or_else(|e| panic!("{name} {schedule:?}×{workers}: {e}"));
                assert_eq!(
                    fingerprint(&out),
                    push_fp,
                    "{name}: {schedule:?}×{workers} diverged from Push×{workers}"
                );
                if schedule == Schedule::Pull {
                    assert!(
                        out.metrics.pull_supersteps > 0,
                        "{name}: forced pull never gathered"
                    );
                }
            }
        }
    }
}

#[test]
fn auto_with_zero_threshold_gathers_every_pullable_superstep() {
    // dense_threshold = 0 makes any nonempty frontier "dense", so Auto
    // must behave exactly like forced Pull (and still match Push).
    let compiled = compile(sources::PAGERANK, &CompileOptions::default()).unwrap();
    let g = gen::rmat(150, 900, 23);
    let args = HashMap::from([
        ("e".to_owned(), ArgValue::Scalar(Value::Double(1e-8))),
        ("d".to_owned(), ArgValue::Scalar(Value::Double(0.85))),
        ("max_iter".to_owned(), ArgValue::Scalar(Value::Int(30))),
    ]);
    let push =
        gm_interp::run_compiled(&g, &compiled, &args, 0, &PregelConfig::sequential()).unwrap();
    let auto = gm_interp::run_compiled(
        &g,
        &compiled,
        &args,
        0,
        &PregelConfig::with_workers(4)
            .with_schedule(Schedule::Auto)
            .with_dense_threshold(0.0),
    )
    .unwrap();
    assert_eq!(fingerprint(&auto), fingerprint(&push));
    let pull = gm_interp::run_compiled(
        &g,
        &compiled,
        &args,
        0,
        &PregelConfig::with_workers(4).with_schedule(Schedule::Pull),
    )
    .unwrap();
    assert_eq!(auto.metrics.pull_supersteps, pull.metrics.pull_supersteps);
    assert!(auto.metrics.pull_supersteps > 0);
    // The heuristic flipped direction at least once: PageRank opens with
    // master-only/no-send states that cannot gather.
    assert!(auto.metrics.direction_switches > 0);
}

#[test]
fn forced_pull_on_push_only_program_is_a_structured_error() {
    use gm_pregel::{
        run, MasterContext, MasterDecision, PregelError, VertexContext, VertexProgram,
    };

    /// Sends to a computed destination (vertex 0) — never pullable, and the
    /// default `pull_supported()` says so.
    struct HubCounter;

    impl VertexProgram for HubCounter {
        type VertexValue = u32;
        type Message = ();

        fn message_bytes(&self, _m: &()) -> u64 {
            8
        }

        fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
            if ctx.superstep() == 2 {
                MasterDecision::Halt
            } else {
                MasterDecision::Continue
            }
        }

        fn vertex_compute(
            &self,
            ctx: &mut VertexContext<'_, '_, ()>,
            value: &mut u32,
            messages: &[()],
        ) {
            if ctx.superstep() == 0 {
                ctx.send(gm_graph::NodeId(0), ());
            } else {
                *value = messages.len() as u32;
            }
        }
    }

    let g = gen::star(4);
    let err = run(
        &g,
        &mut HubCounter,
        |_| 0u32,
        &PregelConfig::with_workers(2).with_schedule(Schedule::Pull),
    )
    .unwrap_err();
    assert!(
        matches!(err, PregelError::NotPullable { .. }),
        "expected NotPullable, got: {err}"
    );
    assert!(err.to_string().contains("pullable"));
    assert!(!err.is_recoverable());
}
