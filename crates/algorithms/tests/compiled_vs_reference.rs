//! Differential tests: every Green-Marl source, compiled to Pregel and
//! executed on the BSP runtime, must match the sequential reference
//! implementation exactly (floats included — accumulation orders are
//! aligned by construction).

use gm_algorithms::{reference, sources};
use gm_core::seqinterp::ArgValue;
use gm_core::value::{Value, NIL_NODE};
use gm_core::{compile, CompileOptions, Compiled};
use gm_graph::{gen, Graph, NodeId};
use gm_interp::{run_compiled, CompiledOutcome};
use gm_pregel::PregelConfig;
use std::collections::HashMap;

fn compiled(src: &str) -> Compiled {
    compile(src, &CompileOptions::default()).unwrap_or_else(|e| {
        panic!("compilation failed:\n{}", e.render(src));
    })
}

fn run(g: &Graph, c: &Compiled, args: &HashMap<String, ArgValue>, seed: u64) -> CompiledOutcome {
    run_compiled(g, c, args, seed, &PregelConfig::sequential()).expect("runs")
}

fn int_prop(out: &CompiledOutcome, name: &str) -> Vec<i64> {
    out.node_props[name].iter().map(|v| v.as_int()).collect()
}

fn f64_prop(out: &CompiledOutcome, name: &str) -> Vec<f64> {
    out.node_props[name].iter().map(|v| v.as_f64()).collect()
}

#[test]
fn avg_teen_matches_reference() {
    let g = gen::rmat(200, 1200, 17);
    let ages: Vec<i64> = (0..200).map(|i| (i * 37) % 80).collect();
    let c = compiled(sources::AVG_TEEN);
    let args = HashMap::from([
        (
            "age".to_owned(),
            ArgValue::NodeProp(ages.iter().map(|&a| Value::Int(a)).collect()),
        ),
        ("K".to_owned(), ArgValue::Scalar(Value::Int(25))),
    ]);
    let out = run(&g, &c, &args, 0);
    let (ref_cnt, ref_avg) = reference::avg_teen(&g, &ages, 25);
    assert_eq!(int_prop(&out, "teen_cnt"), ref_cnt);
    assert_eq!(out.ret, Some(Value::Double(ref_avg)));
}

#[test]
fn pagerank_matches_reference_exactly() {
    let g = gen::rmat(150, 900, 23);
    let c = compiled(sources::PAGERANK);
    let args = HashMap::from([
        ("e".to_owned(), ArgValue::Scalar(Value::Double(1e-8))),
        ("d".to_owned(), ArgValue::Scalar(Value::Double(0.85))),
        ("max_iter".to_owned(), ArgValue::Scalar(Value::Int(30))),
    ]);
    let out = run(&g, &c, &args, 0);
    let (ref_pr, _iters) = reference::pagerank(&g, 1e-8, 0.85, 30);
    let pr = f64_prop(&out, "pr");
    for (i, (a, b)) in pr.iter().zip(&ref_pr).enumerate() {
        assert_eq!(a, b, "vertex {i}: compiled {a} vs reference {b}");
    }
}

#[test]
fn conductance_matches_reference() {
    let g = gen::rmat(120, 700, 31);
    let member: Vec<bool> = (0..120).map(|i| i % 3 == 0).collect();
    let c = compiled(sources::CONDUCTANCE);
    let args = HashMap::from([(
        "member".to_owned(),
        ArgValue::NodeProp(member.iter().map(|&b| Value::Bool(b)).collect()),
    )]);
    let out = run(&g, &c, &args, 0);
    let expected = reference::conductance(&g, &member);
    assert_eq!(out.ret, Some(Value::Double(expected)));
}

#[test]
fn sssp_matches_dijkstra() {
    let g = gen::rmat(180, 1000, 41);
    let weights: Vec<i64> = (0..1000).map(|i| 1 + (i * 7) % 20).collect();
    let c = compiled(sources::SSSP);
    let args = HashMap::from([
        ("root".to_owned(), ArgValue::Scalar(Value::Node(3))),
        (
            "len".to_owned(),
            ArgValue::EdgeProp(weights.iter().map(|&w| Value::Int(w)).collect()),
        ),
    ]);
    let out = run(&g, &c, &args, 0);
    let expected = reference::dijkstra(&g, NodeId(3), &weights);
    assert_eq!(int_prop(&out, "dist"), expected);
}

#[test]
fn bipartite_matching_is_valid_and_maximal() {
    let g = gen::bipartite(60, 70, 350, 13);
    let is_boy: Vec<bool> = (0..130).map(|i| i < 60).collect();
    let c = compiled(sources::BIPARTITE_MATCHING);
    let args = HashMap::from([(
        "is_boy".to_owned(),
        ArgValue::NodeProp(is_boy.iter().map(|&b| Value::Bool(b)).collect()),
    )]);
    let out = run(&g, &c, &args, 0);
    let matching: Vec<u32> = out.node_props["match"]
        .iter()
        .map(|v| v.as_node())
        .collect();
    let stats = reference::check_matching(&g, &is_boy, &matching);
    assert!(stats.valid, "matching must be valid");
    assert!(stats.maximal, "matching must be maximal");
    assert_eq!(out.ret, Some(Value::Int(stats.pairs as i64)));
    // NIL round-trips as the sentinel.
    assert!(matching.contains(&NIL_NODE) || stats.pairs == 60);
}

#[test]
fn bc_matches_brandes_reference() {
    let g = gen::rmat(100, 500, 29);
    let c = compiled(sources::BC_APPROX);
    let seed = 77;
    let k = 6;
    let args = HashMap::from([("K".to_owned(), ArgValue::Scalar(Value::Int(k)))]);
    let out = run(&g, &c, &args, seed);
    let (ref_bc, ref_sum) = reference::bc_approx(&g, k, seed);
    let bc = f64_prop(&out, "bc");
    for (i, (a, b)) in bc.iter().zip(&ref_bc).enumerate() {
        assert_eq!(a, b, "vertex {i}: compiled {a} vs reference {b}");
    }
    assert_eq!(out.ret, Some(Value::Double(ref_sum)));
}

#[test]
fn bc_compiles_to_multiple_kernels_and_message_types() {
    // §5.1: the generated BC program is highly nontrivial.
    let c = compiled(sources::BC_APPROX);
    assert!(
        c.program.num_vertex_kernels() >= 6,
        "expected a complex state machine, got {} kernels",
        c.program.num_vertex_kernels()
    );
    assert!(
        c.program.num_message_types() >= 3,
        "expected several message types, got {}",
        c.program.num_message_types()
    );
    assert!(c.program.uses_in_nbrs);
}

#[test]
fn all_six_compile_with_and_without_optimizations() {
    for (name, src) in sources::ALL {
        for opts in [CompileOptions::default(), CompileOptions::unoptimized()] {
            compile(src, &opts).unwrap_or_else(|e| {
                panic!("{name} failed to compile: {}", e.render(src));
            });
        }
    }
}
