//! Golden-file tests for the GPS Java backend: the exact generated source
//! and its counted LoC (the paper's Table 1 comparison axis) are pinned
//! for the five Table 1 algorithms. Any codegen change shows up as a
//! readable diff against `tests/golden/*.java` instead of a silent drift
//! in the LoC numbers.
//!
//! To regenerate after an intentional backend change:
//!
//! ```text
//! GM_UPDATE_GOLDEN=1 cargo test -p gm-algorithms --test javagen_golden
//! ```

use gm_algorithms::sources;
use gm_core::javagen::{count_loc, emit_java};
use gm_core::{compile, CompileOptions};
use std::path::PathBuf;

const ALGORITHMS: [(&str, &str); 5] = [
    ("avg_teen", sources::AVG_TEEN),
    ("pagerank", sources::PAGERANK),
    ("conductance", sources::CONDUCTANCE),
    ("sssp", sources::SSSP),
    ("bipartite_matching", sources::BIPARTITE_MATCHING),
];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.java"))
}

fn generate(src: &str) -> String {
    let compiled = compile(src, &CompileOptions::default().verified())
        .unwrap_or_else(|e| panic!("compile failed:\n{}", e.render(src)));
    emit_java(&compiled.program)
}

#[test]
fn generated_java_matches_golden_files() {
    let update = std::env::var_os("GM_UPDATE_GOLDEN").is_some();
    let mut mismatches = Vec::new();
    for (name, src) in ALGORITHMS {
        let java = generate(src);
        let path = golden_path(name);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &java).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run with GM_UPDATE_GOLDEN=1 to create it",
                path.display()
            )
        });
        if java != expected {
            mismatches.push(name);
            // A targeted first-difference report beats a full dump.
            for (i, (got, want)) in java.lines().zip(expected.lines()).enumerate() {
                if got != want {
                    eprintln!(
                        "{name}: first difference at line {}:\n  generated: {got}\n  golden:    {want}",
                        i + 1
                    );
                    break;
                }
            }
            if java.lines().count() != expected.lines().count() {
                eprintln!(
                    "{name}: line count {} vs golden {}",
                    java.lines().count(),
                    expected.lines().count()
                );
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "generated Java drifted from golden files for {mismatches:?}; \
         rerun with GM_UPDATE_GOLDEN=1 if the change is intentional"
    );
}

/// Pins the Table 1 generated-LoC numbers themselves. These counts come
/// from the golden files, so this fails (with the counts side by side)
/// whenever codegen grows or shrinks the generated programs.
#[test]
fn generated_loc_matches_table1_pins() {
    let expected: [(&str, usize); 5] = [
        ("avg_teen", loc_of("avg_teen")),
        ("pagerank", loc_of("pagerank")),
        ("conductance", loc_of("conductance")),
        ("sssp", loc_of("sssp")),
        ("bipartite_matching", loc_of("bipartite_matching")),
    ];
    for ((name, src), (gname, want)) in ALGORITHMS.iter().zip(expected) {
        assert_eq!(name, &gname);
        let got = count_loc(&generate(src));
        assert_eq!(
            got, want,
            "{name}: generated LoC {got} != golden LoC {want}"
        );
        // Sanity: generated GPS programs are nontrivial, as in Table 1.
        assert!(got > 40, "{name}: implausibly small generated program");
    }
}

fn loc_of(name: &str) -> usize {
    let path = golden_path(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with GM_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    count_loc(&text)
}
