//! Golden tests for `gm-core::rustgen`: every checked-in native module
//! under `src/native/` must be byte-identical to what `gmc emit-rust`
//! produces from its Green-Marl source today.
//!
//! The goldens double as the crate's own source code, so "every golden
//! compiles" is enforced by `cargo build` itself, and `gmc run --backend
//! native` can select a module by byte-equality with fresh emitter output.
//!
//! After changing the compiler or the emitter, regenerate with:
//!
//! ```text
//! GM_UPDATE_GOLDEN=1 cargo test -p gm-algorithms --test rustgen_golden
//! ```

use gm_algorithms::native;
use gm_core::{compile, CompileOptions};
use std::path::PathBuf;

fn golden_path(stem: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("src/native")
        .join(format!("{stem}.rs"))
}

#[test]
fn generated_rust_matches_checked_in_goldens() {
    let update = std::env::var_os("GM_UPDATE_GOLDEN").is_some();
    let mut stale = Vec::new();
    for alg in &native::ALL {
        let compiled = compile(alg.source, &CompileOptions::default())
            .unwrap_or_else(|d| panic!("{}: {}", alg.stem, d.render(alg.source)));
        let emitted = gm_core::rustgen::emit_rust(&compiled.program)
            .unwrap_or_else(|e| panic!("{}: {e}", alg.stem));
        if emitted != alg.generated {
            if update {
                std::fs::write(golden_path(alg.stem), &emitted).expect("write golden");
                println!("updated {}", golden_path(alg.stem).display());
            }
            stale.push(alg.stem);
        }
    }
    if update {
        if !stale.is_empty() {
            println!(
                "rewrote {} golden(s); rebuild to compile the new modules",
                stale.len()
            );
        }
    } else {
        assert!(
            stale.is_empty(),
            "stale native goldens for {stale:?}; regenerate with \
             GM_UPDATE_GOLDEN=1 cargo test -p gm-algorithms --test rustgen_golden"
        );
    }
}

#[test]
fn emission_is_deterministic_for_every_algorithm() {
    for alg in &native::ALL {
        let compiled = compile(alg.source, &CompileOptions::default()).expect(alg.stem);
        let a = gm_core::rustgen::emit_rust(&compiled.program).expect(alg.stem);
        let b = gm_core::rustgen::emit_rust(&compiled.program).expect(alg.stem);
        assert_eq!(a, b, "{}: emission is not deterministic", alg.stem);
    }
}

#[test]
fn every_golden_carries_the_generated_marker() {
    for alg in &native::ALL {
        assert!(
            alg.generated.starts_with("//! @generated"),
            "{}: missing @generated header",
            alg.stem
        );
        assert!(
            alg.generated.contains("DO NOT EDIT"),
            "{}: missing DO-NOT-EDIT marker",
            alg.stem
        );
    }
}
