//! Differential spill tests: every paper algorithm, run under a message
//! budget tiny enough to force multi-bucket spills each superstep, must be
//! **bit-identical** to the unbudgeted run — same values and same
//! structural metrics (supersteps, message counts and bytes, per-superstep
//! series). The spill path may only change *where* sealed buckets live
//! between compute and delivery, never *what* is delivered.
//!
//! Baselines pin [`ResourceBudget::unbounded`] explicitly rather than
//! relying on `PregelConfig::default()`, which reads `GM_MAX_MSG_BYTES`
//! from the environment — a CI stress job sets that variable for the whole
//! suite, and the baseline must stay unbudgeted regardless.

use gm_algorithms::manual;
use gm_graph::{gen, NodeId};
use gm_pregel::{Metrics, PregelConfig, ResourceBudget};

/// One byte of budget: every non-empty sealed bucket spills.
fn spilling(workers: usize) -> PregelConfig {
    PregelConfig::with_workers(workers)
        .with_budget(ResourceBudget::unbounded().with_max_message_bytes(1))
}

fn unbounded(workers: usize) -> PregelConfig {
    PregelConfig::with_workers(workers).with_budget(ResourceBudget::unbounded())
}

/// Asserts the governed run's structural metrics are bit-identical to the
/// baseline's and that the budget actually forced spills.
fn assert_spill_invisible(base: &Metrics, gov: &Metrics, tag: &str) {
    assert_eq!(base.supersteps, gov.supersteps, "{tag}: supersteps");
    assert_eq!(
        base.total_messages, gov.total_messages,
        "{tag}: total messages"
    );
    assert_eq!(
        base.total_message_bytes, gov.total_message_bytes,
        "{tag}: total message bytes"
    );
    assert_eq!(
        base.remote_messages, gov.remote_messages,
        "{tag}: remote messages"
    );
    let series = |m: &Metrics| -> Vec<(u32, u64, u64)> {
        m.per_superstep
            .iter()
            .map(|s| (s.active_vertices, s.messages_sent, s.message_bytes))
            .collect()
    };
    assert_eq!(series(base), series(gov), "{tag}: per-superstep series");
    assert_eq!(
        base.spill.buckets_spilled, 0,
        "{tag}: baseline must not spill"
    );
    assert!(
        gov.spill.buckets_spilled > 0,
        "{tag}: the 1-byte budget must force spills"
    );
    assert_eq!(
        gov.spill.files_replayed, gov.spill.buckets_spilled,
        "{tag}: every spilled bucket must be replayed"
    );
    assert!(
        gov.spill.spilled_message_bytes > 0,
        "{tag}: spilled buckets must carry bytes"
    );
}

#[test]
fn pagerank_is_bit_identical_under_forced_spills() {
    let g = gen::rmat(300, 2000, 5);
    for workers in [1usize, 2, 4] {
        let base = manual::run_pagerank(&g, 1e-9, 0.85, 10, &unbounded(workers)).unwrap();
        let gov = manual::run_pagerank(&g, 1e-9, 0.85, 10, &spilling(workers)).unwrap();
        let tag = format!("pagerank/w{workers}");
        assert_eq!(base.pr, gov.pr, "{tag}: values");
        assert_eq!(base.iterations, gov.iterations, "{tag}: iterations");
        assert_spill_invisible(&base.metrics, &gov.metrics, &tag);
    }
}

#[test]
fn sssp_is_bit_identical_under_forced_spills() {
    let g = gen::rmat(250, 1500, 7);
    let weights: Vec<i64> = (0..1500).map(|i| 1 + (i * 11) % 9).collect();
    for workers in [1usize, 2, 4] {
        let base = manual::run_sssp(&g, NodeId(2), &weights, &unbounded(workers)).unwrap();
        let gov = manual::run_sssp(&g, NodeId(2), &weights, &spilling(workers)).unwrap();
        let tag = format!("sssp/w{workers}");
        assert_eq!(base.dist, gov.dist, "{tag}: values");
        assert_spill_invisible(&base.metrics, &gov.metrics, &tag);
    }
}

#[test]
fn avg_teen_is_bit_identical_under_forced_spills() {
    let g = gen::rmat(300, 2000, 3);
    let ages: Vec<i64> = (0..300).map(|i| (i * 31) % 90).collect();
    for workers in [1usize, 2, 4] {
        let base = manual::run_avg_teen(&g, &ages, 25, &unbounded(workers)).unwrap();
        let gov = manual::run_avg_teen(&g, &ages, 25, &spilling(workers)).unwrap();
        let tag = format!("avg_teen/w{workers}");
        assert_eq!(base.teen_cnt, gov.teen_cnt, "{tag}: values");
        assert_eq!(base.avg.to_bits(), gov.avg.to_bits(), "{tag}: average");
        assert_spill_invisible(&base.metrics, &gov.metrics, &tag);
    }
}

#[test]
fn conductance_is_bit_identical_under_forced_spills() {
    let g = gen::rmat(200, 1400, 13);
    let member: Vec<bool> = (0..200).map(|i| i % 4 == 0).collect();
    for workers in [1usize, 2, 4] {
        let base = manual::run_conductance(&g, &member, &unbounded(workers)).unwrap();
        let gov = manual::run_conductance(&g, &member, &spilling(workers)).unwrap();
        let tag = format!("conductance/w{workers}");
        assert_eq!(
            base.conductance.to_bits(),
            gov.conductance.to_bits(),
            "{tag}: value"
        );
        assert_spill_invisible(&base.metrics, &gov.metrics, &tag);
    }
}

#[test]
fn bipartite_matching_is_bit_identical_under_forced_spills() {
    let g = gen::bipartite(40, 50, 220, 3);
    let is_boy: Vec<bool> = (0..90).map(|i| i < 40).collect();
    for workers in [1usize, 2, 4] {
        let base = manual::run_bipartite_matching(&g, &is_boy, &unbounded(workers)).unwrap();
        let gov = manual::run_bipartite_matching(&g, &is_boy, &spilling(workers)).unwrap();
        let tag = format!("bipartite/w{workers}");
        assert_eq!(base.matching, gov.matching, "{tag}: matching");
        assert_eq!(base.pairs, gov.pairs, "{tag}: pairs");
        assert_spill_invisible(&base.metrics, &gov.metrics, &tag);
    }
}
