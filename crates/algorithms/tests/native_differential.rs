//! Three-way differential tests for the native codegen backend: for every
//! shipped algorithm, the `gm-core::rustgen` module compiled into this
//! crate, the PIR interpreter (`gm_interp::run_compiled`), and the
//! sequential Green-Marl interpreter (`gm_core::seqinterp`) must agree.
//!
//! Native vs. interpreter is held to the strictest standard: **bit-for-bit
//! identical outcomes at the same configuration** — return value, node
//! properties, master globals, superstep count, message/byte totals,
//! per-superstep activity series, and the state-machine trace — across
//! {Push, Pull, Auto} × {1, 2, 4} workers, under a 1-byte spill budget,
//! through an injected worker crash + snapshot recovery, and between two
//! identical checkpointed runs (byte-identical snapshots).
//!
//! The nightly deep-fuzz CI job re-runs this matrix alongside the
//! compiler's translation-validation fuzzers.

use gm_algorithms::native::{self, NativeAlgorithm};
use gm_algorithms::sources;
use gm_core::seqinterp::{run_procedure, ArgValue, ExecOutcome};
use gm_core::value::Value;
use gm_core::{compile, CompileOptions, Compiled};
use gm_graph::{gen, Graph};
use gm_interp::{run_compiled, CompiledOutcome, TraceStep};
use gm_pregel::{
    CheckpointConfig, FaultPlan, PregelConfig, RecoveryPolicy, ResourceBudget, Schedule, Snapshot,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

// ---------------------------------------------------------------------------
// Shared fixtures: the exact inputs of the schedule-axis differential suite.
// ---------------------------------------------------------------------------

type Case = (
    &'static str,
    &'static str,
    Graph,
    HashMap<String, ArgValue>,
    u64,
);

fn algorithm_cases() -> Vec<Case> {
    let mut cases = Vec::new();

    let ages: Vec<Value> = (0..200).map(|i| Value::Int((i * 37) % 80)).collect();
    cases.push((
        "avg_teen",
        sources::AVG_TEEN,
        gen::rmat(200, 1200, 17),
        HashMap::from([
            ("age".to_owned(), ArgValue::NodeProp(ages)),
            ("K".to_owned(), ArgValue::Scalar(Value::Int(25))),
        ]),
        0,
    ));

    cases.push((
        "pagerank",
        sources::PAGERANK,
        gen::rmat(150, 900, 23),
        HashMap::from([
            ("e".to_owned(), ArgValue::Scalar(Value::Double(1e-8))),
            ("d".to_owned(), ArgValue::Scalar(Value::Double(0.85))),
            ("max_iter".to_owned(), ArgValue::Scalar(Value::Int(30))),
        ]),
        0,
    ));

    let member: Vec<Value> = (0..120).map(|i| Value::Bool(i % 3 == 0)).collect();
    cases.push((
        "conductance",
        sources::CONDUCTANCE,
        gen::rmat(120, 700, 31),
        HashMap::from([("member".to_owned(), ArgValue::NodeProp(member))]),
        0,
    ));

    let weights: Vec<Value> = (0..1000).map(|i| Value::Int(1 + (i * 7) % 20)).collect();
    cases.push((
        "sssp",
        sources::SSSP,
        gen::rmat(180, 1000, 41),
        HashMap::from([
            ("root".to_owned(), ArgValue::Scalar(Value::Node(3))),
            ("len".to_owned(), ArgValue::EdgeProp(weights)),
        ]),
        0,
    ));

    let is_boy: Vec<Value> = (0..130).map(|i| Value::Bool(i < 60)).collect();
    cases.push((
        "bipartite",
        sources::BIPARTITE_MATCHING,
        gen::bipartite(60, 70, 350, 13),
        HashMap::from([("is_boy".to_owned(), ArgValue::NodeProp(is_boy))]),
        0,
    ));

    cases.push((
        "bc_approx",
        sources::BC_APPROX,
        gen::rmat(100, 500, 29),
        HashMap::from([("K".to_owned(), ArgValue::Scalar(Value::Int(6)))]),
        77,
    ));

    cases
}

fn native_for(src: &str) -> &'static NativeAlgorithm {
    native::ALL
        .iter()
        .find(|a| a.source == src)
        .expect("every shipped source has a compiled-in native module")
}

fn compiled_for(name: &str, src: &str) -> Compiled {
    compile(src, &CompileOptions::default()).expect(name)
}

// ---------------------------------------------------------------------------
// The full observable outcome of a run — everything but wall-clock times.
// ---------------------------------------------------------------------------

#[derive(Debug, PartialEq)]
struct Outcome {
    ret: Option<Value>,
    node_props: Vec<(String, Vec<Value>)>,
    globals: Vec<(String, Value)>,
    supersteps: u32,
    total_messages: u64,
    total_message_bytes: u64,
    pull_supersteps: u32,
    per_superstep: Vec<(u32, u64, u64)>,
    trace: Vec<TraceStep>,
}

fn outcome(out: &CompiledOutcome) -> Outcome {
    let mut node_props: Vec<(String, Vec<Value>)> = out
        .node_props
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    node_props.sort_by(|a, b| a.0.cmp(&b.0));
    let mut globals: Vec<(String, Value)> =
        out.globals.iter().map(|(k, v)| (k.clone(), *v)).collect();
    globals.sort_by(|a, b| a.0.cmp(&b.0));
    Outcome {
        ret: out.ret,
        node_props,
        globals,
        supersteps: out.metrics.supersteps,
        total_messages: out.metrics.total_messages,
        total_message_bytes: out.metrics.total_message_bytes,
        pull_supersteps: out.metrics.pull_supersteps,
        per_superstep: out
            .metrics
            .per_superstep
            .iter()
            .map(|s| (s.active_vertices, s.messages_sent, s.message_bytes))
            .collect(),
        trace: out.trace.clone(),
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gm-native-diff-{}-{}-{}",
        std::process::id(),
        tag,
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------------
// 1. Native × interpreter: bit-identical across the schedule/worker matrix.
// ---------------------------------------------------------------------------

#[test]
fn native_matches_interpreter_bit_for_bit_across_schedules_and_workers() {
    for (name, src, graph, args, seed) in algorithm_cases() {
        let alg = native_for(src);
        let compiled = compiled_for(name, src);
        for workers in [1usize, 2, 4] {
            for schedule in [Schedule::Push, Schedule::Pull, Schedule::Auto] {
                let config = PregelConfig::with_workers(workers).with_schedule(schedule);
                let interp = run_compiled(&graph, &compiled, &args, seed, &config)
                    .unwrap_or_else(|e| panic!("{name} interp {schedule:?}×{workers}: {e}"));
                let nat = (alg.run)(&graph, &args, seed, &config)
                    .unwrap_or_else(|e| panic!("{name} native {schedule:?}×{workers}: {e}"));
                assert_eq!(
                    outcome(&nat),
                    outcome(&interp),
                    "{name}: native diverged from interpreter at {schedule:?}×{workers}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Native × sequential interpreter: same values and return.
// ---------------------------------------------------------------------------

fn seq_run(g: &Graph, src: &str, args: &HashMap<String, ArgValue>, seed: u64) -> ExecOutcome {
    let mut prog = gm_core::parser::parse(src).expect("parse");
    gm_core::normalize::desugar_bulk(&mut prog);
    let infos = gm_core::sema::check(&mut prog).expect("sema");
    run_procedure(g, &prog.procedures[0], &infos[0], args, seed).expect("seq run")
}

#[test]
fn native_matches_sequential_interpreter() {
    for (name, src, graph, args, seed) in algorithm_cases() {
        let alg = native_for(src);
        let seq = seq_run(&graph, src, &args, seed);
        let nat = (alg.run)(&graph, &args, seed, &PregelConfig::sequential())
            .unwrap_or_else(|e| panic!("{name} native: {e}"));
        assert_eq!(seq.ret, nat.ret, "{name}: return values differ");
        for (prop, nat_vals) in &nat.node_props {
            if let Some(seq_vals) = seq.node_props.get(prop) {
                assert_eq!(seq_vals, nat_vals, "{name}: property `{prop}` differs");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Spill: a 1-byte message budget must be invisible to the native backend
//    and leave it bit-identical to the interpreter under the same budget.
// ---------------------------------------------------------------------------

#[test]
fn native_spill_is_invisible_and_matches_interpreter() {
    for (name, src, graph, args, seed) in algorithm_cases() {
        let alg = native_for(src);
        let compiled = compiled_for(name, src);
        let unbounded = PregelConfig::with_workers(2).with_budget(ResourceBudget::unbounded());
        let spilling = PregelConfig::with_workers(2)
            .with_budget(ResourceBudget::unbounded().with_max_message_bytes(1));

        let base = (alg.run)(&graph, &args, seed, &unbounded)
            .unwrap_or_else(|e| panic!("{name} native unbounded: {e}"));
        let gov = (alg.run)(&graph, &args, seed, &spilling)
            .unwrap_or_else(|e| panic!("{name} native spilling: {e}"));
        let interp_gov = run_compiled(&graph, &compiled, &args, seed, &spilling)
            .unwrap_or_else(|e| panic!("{name} interp spilling: {e}"));

        assert_eq!(
            outcome(&gov),
            outcome(&base),
            "{name}: spill changed the run"
        );
        assert_eq!(
            outcome(&gov),
            outcome(&interp_gov),
            "{name}: native diverged from interpreter under spill"
        );
        assert_eq!(
            base.metrics.spill.buckets_spilled, 0,
            "{name}: baseline spilled"
        );
        if base.metrics.total_messages > 0 {
            assert!(
                gov.metrics.spill.buckets_spilled > 0,
                "{name}: the 1-byte budget must force spills"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 4. Recovery: crash worker 0 mid-run, restore from the newest snapshot,
//    and require the result to stay bit-identical to the uninterrupted run
//    and to the interpreter put through the identical fault plan.
// ---------------------------------------------------------------------------

#[test]
fn native_recovery_is_exact_and_matches_interpreter() {
    for (name, src, graph, args, seed) in algorithm_cases() {
        let alg = native_for(src);
        let compiled = compiled_for(name, src);
        let plain = PregelConfig::with_workers(2);
        let base = (alg.run)(&graph, &args, seed, &plain)
            .unwrap_or_else(|e| panic!("{name} native plain: {e}"));
        let fail_at = (base.metrics.supersteps / 2).max(1);

        let faulty = |tag: &str| PregelConfig {
            checkpoint: Some(CheckpointConfig::new(fresh_dir(tag), 2)),
            faults: FaultPlan::builder()
                .panic_in_compute(fail_at, Some(0))
                .build(),
            recovery: Some(RecoveryPolicy::with_max_restarts(2)),
            ..PregelConfig::with_workers(2)
        };

        let nat = (alg.run)(&graph, &args, seed, &faulty("nat"))
            .unwrap_or_else(|e| panic!("{name} native recovery: {e}"));
        let interp = run_compiled(&graph, &compiled, &args, seed, &faulty("interp"))
            .unwrap_or_else(|e| panic!("{name} interp recovery: {e}"));

        assert_eq!(
            nat.metrics.recovery.restarts, 1,
            "{name}: injected fault at superstep {fail_at} never tripped"
        );
        assert_eq!(
            outcome(&nat),
            outcome(&base),
            "{name}: recovery changed the native result"
        );
        assert_eq!(
            outcome(&nat),
            outcome(&interp),
            "{name}: native diverged from interpreter through recovery"
        );
    }
}

// ---------------------------------------------------------------------------
// 5. Checkpoint determinism: two identical checkpointed native runs write
//    byte-identical snapshots (outside the wall-clock `metrics` section).
// ---------------------------------------------------------------------------

fn snapshots(dir: &Path) -> Vec<(String, PathBuf)> {
    let mut files: Vec<(String, PathBuf)> = std::fs::read_dir(dir)
        .expect("snapshot dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "gmck"))
        .map(|p| (p.file_name().unwrap().to_string_lossy().into_owned(), p))
        .collect();
    files.sort();
    files
}

#[test]
fn native_snapshots_are_byte_identical_between_runs() {
    for (name, src, graph, args, seed) in algorithm_cases() {
        let alg = native_for(src);
        let ckpt = |dir: &Path| PregelConfig {
            checkpoint: Some(CheckpointConfig::new(dir, 1)),
            ..PregelConfig::with_workers(2)
        };
        let (da, db) = (fresh_dir("det-a"), fresh_dir("det-b"));
        (alg.run)(&graph, &args, seed, &ckpt(&da)).unwrap_or_else(|e| panic!("{name} run A: {e}"));
        (alg.run)(&graph, &args, seed, &ckpt(&db)).unwrap_or_else(|e| panic!("{name} run B: {e}"));

        let a = snapshots(&da);
        let b = snapshots(&db);
        assert!(!a.is_empty(), "{name}: no snapshots written");
        assert_eq!(
            a.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            b.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            "{name}: runs checkpointed different supersteps"
        );
        for ((file, pa), (_, pb)) in a.iter().zip(&b) {
            let sa = Snapshot::read(pa).expect("read snapshot A");
            let sb = Snapshot::read(pb).expect("read snapshot B");
            let secs_a: Vec<&str> = sa.section_names().collect();
            let secs_b: Vec<&str> = sb.section_names().collect();
            assert_eq!(secs_a, secs_b, "{name}/{file}: section sets differ");
            for sec in secs_a {
                if sec == "metrics" {
                    continue; // wall-clock durations, legitimately run-specific
                }
                assert_eq!(
                    sa.section(sec),
                    sb.section(sec),
                    "{name}/{file}: section `{sec}` differs between identical runs"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&da);
        let _ = std::fs::remove_dir_all(&db);
    }
}
