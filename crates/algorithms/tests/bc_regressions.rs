//! Focused BC regressions: the sequential interpreter matches the
//! Brandes reference, and the fully optimized compiled program matches the
//! sequential interpreter (this once caught an unsound intra-loop merge of
//! the reverse-BFS loop).

use gm_algorithms::{reference, sources};
use gm_core::seqinterp::{run_procedure, ArgValue};
use gm_core::value::Value;
use std::collections::HashMap;

const OPTS: gm_core::CompileOptions = gm_core::CompileOptions {
    state_merging: true,
    intra_loop_merging: true,
    combiners: false,
    verify: true,
};

#[test]
fn bc_seqinterp_matches_reference_small() {
    let mut b = gm_graph::GraphBuilder::new(5);
    b.extend([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
    let g = b.build();
    let k = 2;
    let seed = 5;

    let mut prog = gm_core::parser::parse(sources::BC_APPROX).unwrap();
    gm_core::normalize::desugar_bulk(&mut prog);
    let infos = gm_core::sema::check(&mut prog).unwrap();
    let args = HashMap::from([("K".to_owned(), ArgValue::Scalar(Value::Int(k)))]);
    let seq = run_procedure(&g, &prog.procedures[0], &infos[0], &args, seed).unwrap();

    let (ref_bc, ref_sum) = reference::bc_approx(&g, k, seed);
    let seq_bc: Vec<f64> = seq.node_props["bc"].iter().map(|v| v.as_f64()).collect();
    assert_eq!(seq_bc, ref_bc, "seqinterp vs reference");
    assert_eq!(seq.ret, Some(Value::Double(ref_sum)));
}

#[test]
fn bc_compiled_matches_seqinterp_small() {
    let mut b = gm_graph::GraphBuilder::new(5);
    b.extend([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
    let g = b.build();
    let k = 2;
    let seed = 5;

    let mut prog = gm_core::parser::parse(sources::BC_APPROX).unwrap();
    gm_core::normalize::desugar_bulk(&mut prog);
    let infos = gm_core::sema::check(&mut prog).unwrap();
    let args = HashMap::from([("K".to_owned(), ArgValue::Scalar(Value::Int(k)))]);
    let seq = run_procedure(&g, &prog.procedures[0], &infos[0], &args, seed).unwrap();

    let compiled = gm_core::compile(sources::BC_APPROX, &OPTS).unwrap();
    let out = gm_interp::run_compiled(
        &g,
        &compiled,
        &args,
        seed,
        &gm_pregel::PregelConfig::sequential(),
    )
    .unwrap();
    let seq_bc: Vec<f64> = seq.node_props["bc"].iter().map(|v| v.as_f64()).collect();
    let out_bc: Vec<f64> = out.node_props["bc"].iter().map(|v| v.as_f64()).collect();
    assert_eq!(seq_bc, out_bc, "compiled vs seqinterp");
    assert_eq!(seq.ret, out.ret);
}
