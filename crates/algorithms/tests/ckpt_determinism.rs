//! Snapshot determinism: two identical checkpointed runs must produce
//! byte-identical snapshots at every checkpointed superstep, for all five
//! manual algorithms. The only exception is the `metrics` section, which
//! records measured wall-clock durations; every other section (`coord`,
//! `master`, `values`, `halted`, `inbox`) is compared byte-for-byte.

use gm_algorithms::manual;
use gm_graph::gen;
use gm_pregel::{CheckpointConfig, PregelConfig, Snapshot};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gm-alg-determinism-{}-{}-{}",
        std::process::id(),
        tag,
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ckpt_config(dir: &Path) -> PregelConfig {
    PregelConfig {
        checkpoint: Some(CheckpointConfig::new(dir, 1)),
        ..PregelConfig::with_workers(2)
    }
}

/// Lists the snapshot files of a run, sorted by superstep.
fn snapshots(dir: &Path) -> Vec<(String, PathBuf)> {
    let mut files: Vec<(String, PathBuf)> = std::fs::read_dir(dir)
        .expect("snapshot dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "gmck"))
        .map(|p| (p.file_name().unwrap().to_string_lossy().into_owned(), p))
        .collect();
    files.sort();
    files
}

/// Asserts both runs checkpointed the same supersteps and that every
/// snapshot pair matches byte-for-byte outside the `metrics` section.
fn assert_identical_snapshots(dir_a: &Path, dir_b: &Path, alg: &str) {
    let a = snapshots(dir_a);
    let b = snapshots(dir_b);
    assert!(!a.is_empty(), "{alg}: no snapshots written");
    assert_eq!(
        a.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        b.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        "{alg}: runs checkpointed different supersteps"
    );
    for ((name, path_a), (_, path_b)) in a.iter().zip(&b) {
        let snap_a = Snapshot::read(path_a).expect("read snapshot A");
        let snap_b = Snapshot::read(path_b).expect("read snapshot B");
        assert_eq!(snap_a.superstep, snap_b.superstep, "{alg}/{name}");
        assert_eq!(snap_a.num_nodes, snap_b.num_nodes, "{alg}/{name}");
        let sections_a: Vec<&str> = snap_a.section_names().collect();
        let sections_b: Vec<&str> = snap_b.section_names().collect();
        assert_eq!(sections_a, sections_b, "{alg}/{name}: section sets differ");
        for sec in sections_a {
            if sec == "metrics" {
                continue; // wall-clock durations, legitimately run-specific
            }
            assert_eq!(
                snap_a.section(sec),
                snap_b.section(sec),
                "{alg}/{name}: section `{sec}` differs between identical runs"
            );
        }
    }
    let _ = std::fs::remove_dir_all(dir_a);
    let _ = std::fs::remove_dir_all(dir_b);
}

#[test]
fn pagerank_snapshots_are_byte_identical() {
    let g = gen::rmat(200, 1400, 5);
    let (da, db) = (fresh_dir("pr-a"), fresh_dir("pr-b"));
    manual::run_pagerank(&g, 1e-9, 0.85, 10, &ckpt_config(&da)).unwrap();
    manual::run_pagerank(&g, 1e-9, 0.85, 10, &ckpt_config(&db)).unwrap();
    assert_identical_snapshots(&da, &db, "pagerank");
}

#[test]
fn sssp_snapshots_are_byte_identical() {
    let g = gen::rmat(250, 1500, 7);
    let weights: Vec<i64> = (0..1500).map(|i| 1 + (i * 11) % 9).collect();
    let (da, db) = (fresh_dir("sssp-a"), fresh_dir("sssp-b"));
    manual::run_sssp(&g, gm_graph::NodeId(2), &weights, &ckpt_config(&da)).unwrap();
    manual::run_sssp(&g, gm_graph::NodeId(2), &weights, &ckpt_config(&db)).unwrap();
    assert_identical_snapshots(&da, &db, "sssp");
}

#[test]
fn avg_teen_snapshots_are_byte_identical() {
    let g = gen::rmat(300, 2000, 3);
    let ages: Vec<i64> = (0..300).map(|i| (i * 31) % 90).collect();
    let (da, db) = (fresh_dir("teen-a"), fresh_dir("teen-b"));
    manual::run_avg_teen(&g, &ages, 25, &ckpt_config(&da)).unwrap();
    manual::run_avg_teen(&g, &ages, 25, &ckpt_config(&db)).unwrap();
    assert_identical_snapshots(&da, &db, "avg_teen");
}

#[test]
fn conductance_snapshots_are_byte_identical() {
    let g = gen::rmat(200, 1400, 13);
    let member: Vec<bool> = (0..200).map(|i| i % 4 == 0).collect();
    let (da, db) = (fresh_dir("cond-a"), fresh_dir("cond-b"));
    manual::run_conductance(&g, &member, &ckpt_config(&da)).unwrap();
    manual::run_conductance(&g, &member, &ckpt_config(&db)).unwrap();
    assert_identical_snapshots(&da, &db, "conductance");
}

#[test]
fn bipartite_matching_snapshots_are_byte_identical() {
    let g = gen::bipartite(40, 50, 220, 3);
    let is_boy: Vec<bool> = (0..90).map(|i| i < 40).collect();
    let (da, db) = (fresh_dir("match-a"), fresh_dir("match-b"));
    manual::run_bipartite_matching(&g, &is_boy, &ckpt_config(&da)).unwrap();
    manual::run_bipartite_matching(&g, &is_boy, &ckpt_config(&db)).unwrap();
    assert_identical_snapshots(&da, &db, "bipartite");
}
