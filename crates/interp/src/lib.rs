//! Executes compiled [`gm_core::pir::PregelProgram`] state machines on the
//! [`gm_pregel`] BSP runtime.
//!
//! This crate is the "deployment" half of the paper's pipeline: the
//! compiler (gm-core) produces the same state machine it would print as GPS
//! Java, and this interpreter runs it with real supersteps, real messages,
//! and real global-object traffic, so the measured timesteps and network
//! I/O are those of the generated program.
//!
//! # Example
//!
//! ```
//! use gm_core::{compile, CompileOptions};
//! use gm_interp::run_compiled;
//! use gm_pregel::PregelConfig;
//! use std::collections::HashMap;
//!
//! let src = "Procedure count_in(G: Graph, cnt: N_P<Int>) {
//!     Foreach (n: G.Nodes) {
//!         Foreach (t: n.Nbrs) {
//!             t.cnt += 1;
//!         }
//!     }
//! }";
//! let compiled = compile(src, &CompileOptions::default()).unwrap();
//! let g = gm_graph::gen::star(3);
//! let out = run_compiled(&g, &compiled, &HashMap::new(), 0, &PregelConfig::sequential()).unwrap();
//! assert_eq!(out.node_props["cnt"][1], gm_core::Value::Int(1));
//! ```

mod eval;
mod exec;
mod precompile;
mod run;

pub use eval::PickRng;
pub use run::{run_compiled, CompiledOutcome, RunError, TraceStep};
