//! Allocation-light evaluation of precompiled expressions.

use crate::precompile::CExpr;
use gm_core::ast::BinOp;
use gm_core::value::{apply_bin, apply_un, Value};

/// Evaluation context for one vertex.
pub struct EvalCx<'a> {
    /// Live property row.
    pub props: &'a [Value],
    /// Snapshot row for receive-phase reads (None ⇒ read live).
    pub snapshot: Option<&'a [Value]>,
    /// Message payload (empty outside receive handlers).
    pub payload: &'a [Value],
    /// Kernel locals.
    pub locals: &'a [Value],
    /// Broadcast globals in kernel slot order.
    pub globals: &'a [Value],
    /// The executing vertex.
    pub self_id: u32,
    /// Its out-degree.
    pub out_degree: u32,
    /// Length of its in-neighbor array.
    pub in_nbrs_len: usize,
    /// Edge-property columns.
    pub edge_cols: &'a [Vec<Value>],
    /// The connecting edge for `SendToNbrs` payloads.
    pub edge: usize,
    /// Graph size.
    pub num_nodes: u32,
    /// Graph edge count.
    pub num_edges: u32,
}

/// Evaluates a precompiled expression.
///
/// # Panics
///
/// Panics only on programs the compiler cannot produce (e.g. payload reads
/// outside a receive handler).
pub fn eval(e: &CExpr, cx: &EvalCx<'_>) -> Value {
    match e {
        CExpr::Const(v) => *v,
        CExpr::Prop(slot) => match cx.snapshot {
            Some(snap) => snap[*slot],
            None => cx.props[*slot],
        },
        CExpr::EdgeProp(col) => cx.edge_cols[*col][cx.edge],
        CExpr::Payload(i) => cx.payload[*i],
        CExpr::Local(slot) => cx.locals[*slot],
        CExpr::Global(slot) => cx.globals[*slot],
        CExpr::SelfId => Value::Node(cx.self_id),
        CExpr::OutDegree => Value::Int(cx.out_degree as i64),
        CExpr::InDegree => Value::Int(cx.in_nbrs_len as i64),
        CExpr::NumNodes => Value::Int(cx.num_nodes as i64),
        CExpr::NumEdges => Value::Int(cx.num_edges as i64),
        CExpr::Un(op, inner) => apply_un(*op, eval(inner, cx)),
        CExpr::Bin(BinOp::And, a, b) => {
            if !eval(a, cx).as_bool() {
                Value::Bool(false)
            } else {
                Value::Bool(eval(b, cx).as_bool())
            }
        }
        CExpr::Bin(BinOp::Or, a, b) => {
            if eval(a, cx).as_bool() {
                Value::Bool(true)
            } else {
                Value::Bool(eval(b, cx).as_bool())
            }
        }
        CExpr::Bin(op, a, b) => apply_bin(*op, eval(a, cx), eval(b, cx)),
        CExpr::Ternary {
            cond,
            then_val,
            else_val,
            coerce,
        } => {
            let v = if eval(cond, cx).as_bool() {
                eval(then_val, cx)
            } else {
                eval(else_val, cx)
            };
            match coerce {
                Some(t) => v.coerce(t),
                None => v,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_core::ast::UnOp;
    use gm_core::types::Ty;

    fn cx<'a>(props: &'a [Value], locals: &'a [Value]) -> EvalCx<'a> {
        EvalCx {
            props,
            snapshot: None,
            payload: &[],
            locals,
            globals: &[],
            self_id: 3,
            out_degree: 5,
            in_nbrs_len: 2,
            edge_cols: &[],
            edge: 0,
            num_nodes: 10,
            num_edges: 20,
        }
    }

    #[test]
    fn slots_and_builtins() {
        let props = [Value::Int(7)];
        let locals = [Value::Double(0.5)];
        let c = cx(&props, &locals);
        assert_eq!(eval(&CExpr::Prop(0), &c), Value::Int(7));
        assert_eq!(eval(&CExpr::Local(0), &c), Value::Double(0.5));
        assert_eq!(eval(&CExpr::SelfId, &c), Value::Node(3));
        assert_eq!(eval(&CExpr::OutDegree, &c), Value::Int(5));
        assert_eq!(eval(&CExpr::InDegree, &c), Value::Int(2));
        assert_eq!(eval(&CExpr::NumNodes, &c), Value::Int(10));
        assert_eq!(eval(&CExpr::NumEdges, &c), Value::Int(20));
    }

    #[test]
    fn snapshot_reads_override_live() {
        let props = [Value::Int(7)];
        let snap = [Value::Int(4)];
        let locals = [];
        let mut c = cx(&props, &locals);
        c.snapshot = Some(&snap);
        assert_eq!(eval(&CExpr::Prop(0), &c), Value::Int(4));
    }

    #[test]
    fn short_circuit_logic() {
        let props = [];
        let locals = [];
        let c = cx(&props, &locals);
        // (false && <payload read that would panic>) must short-circuit.
        let e = CExpr::Bin(
            BinOp::And,
            Box::new(CExpr::Const(Value::Bool(false))),
            Box::new(CExpr::Payload(0)),
        );
        assert_eq!(eval(&e, &c), Value::Bool(false));
        let e = CExpr::Bin(
            BinOp::Or,
            Box::new(CExpr::Const(Value::Bool(true))),
            Box::new(CExpr::Payload(0)),
        );
        assert_eq!(eval(&e, &c), Value::Bool(true));
    }

    #[test]
    fn ternary_coercion() {
        let props = [];
        let locals = [];
        let c = cx(&props, &locals);
        let e = CExpr::Ternary {
            cond: Box::new(CExpr::Const(Value::Bool(false))),
            then_val: Box::new(CExpr::Const(Value::Double(0.0))),
            else_val: Box::new(CExpr::Const(Value::Int(3))),
            coerce: Some(Ty::Double),
        };
        assert_eq!(eval(&e, &c), Value::Double(3.0));
        let e = CExpr::Un(UnOp::Neg, Box::new(CExpr::Const(Value::Int(4))));
        assert_eq!(eval(&e, &c), Value::Int(-4));
    }
}
