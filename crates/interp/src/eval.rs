//! Expression evaluation for master and vertex contexts.

use gm_core::ast::{BinOp, Expr, ExprKind};
use gm_core::value::{apply_bin, apply_un, Value, NIL_NODE};
use gm_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The seeded RNG behind `G.PickRandom()`, with a draw counter so that
/// checkpoint snapshots can restore the stream position exactly.
///
/// `PickRandom` is the only consumer and every draw uses the same fixed
/// range (`0..num_nodes`), so `(seed, draws)` fully determines the RNG
/// state: [`PickRng::replay`] re-seeds and fast-forwards.
pub struct PickRng {
    rng: StdRng,
    draws: u64,
}

impl PickRng {
    /// Fresh stream seeded from `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        PickRng {
            rng: StdRng::seed_from_u64(seed),
            draws: 0,
        }
    }

    /// Draws a node id uniformly from `0..n`.
    pub fn pick(&mut self, n: u32) -> u32 {
        self.draws += 1;
        self.rng.gen_range(0..n)
    }

    /// Draws consumed so far (persisted in master-state snapshots).
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Re-seeds and fast-forwards `draws` draws of `0..n`, reproducing
    /// the exact stream position a snapshot captured.
    pub fn replay(seed: u64, draws: u64, n: u32) -> Self {
        let mut rng = PickRng::seed_from_u64(seed);
        for _ in 0..draws {
            rng.pick(n);
        }
        rng
    }
}

/// Master-side evaluation environment: globals plus the graph and the
/// master RNG (for `PickRandom`).
pub struct MasterEnv<'a> {
    /// Master variables.
    pub globals: &'a mut HashMap<String, Value>,
    /// The input graph (for `NumNodes`/`NumEdges`/`PickRandom`).
    pub graph: &'a Graph,
    /// Seeded RNG driving `PickRandom`.
    pub rng: &'a mut PickRng,
}

impl MasterEnv<'_> {
    /// Evaluates a master-context expression.
    ///
    /// # Panics
    ///
    /// Panics on references the type checker ruled out (unknown globals).
    pub fn eval(&mut self, e: &Expr) -> Value {
        match &e.kind {
            ExprKind::IntLit(v) => Value::Int(*v),
            ExprKind::FloatLit(v) => Value::Double(*v),
            ExprKind::BoolLit(v) => Value::Bool(*v),
            ExprKind::Inf { negative } => Value::inf_for(e.ty(), *negative),
            ExprKind::Nil => Value::Node(NIL_NODE),
            ExprKind::Var(name) => *self
                .globals
                .get(name)
                .unwrap_or_else(|| panic!("unknown master global `{name}`")),
            ExprKind::Unary { op, expr } => {
                let v = self.eval(expr);
                apply_un(*op, v)
            }
            ExprKind::Binary { op, lhs, rhs } => match op {
                BinOp::And => {
                    if !self.eval(lhs).as_bool() {
                        Value::Bool(false)
                    } else {
                        Value::Bool(self.eval(rhs).as_bool())
                    }
                }
                BinOp::Or => {
                    if self.eval(lhs).as_bool() {
                        Value::Bool(true)
                    } else {
                        Value::Bool(self.eval(rhs).as_bool())
                    }
                }
                _ => {
                    let l = self.eval(lhs);
                    let r = self.eval(rhs);
                    apply_bin(*op, l, r)
                }
            },
            ExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                let v = if self.eval(cond).as_bool() {
                    self.eval(then_val)
                } else {
                    self.eval(else_val)
                };
                match &e.ty {
                    Some(t) if t.is_value() => v.coerce(t),
                    _ => v,
                }
            }
            ExprKind::Call { method, .. } => match method.as_str() {
                "NumNodes" => Value::Int(self.graph.num_nodes() as i64),
                "NumEdges" => Value::Int(self.graph.num_edges() as i64),
                "PickRandom" => {
                    let n = self.graph.num_nodes();
                    assert!(n > 0, "PickRandom on an empty graph");
                    Value::Node(self.rng.pick(n))
                }
                other => panic!("master built-in `{other}` not supported"),
            },
            ExprKind::Prop { .. } | ExprKind::Agg(_) => {
                panic!("vertex-context expression reached the master: {e:?}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_core::parser::parse_expr;
    use gm_core::types::Ty;

    #[test]
    fn master_eval_basics() {
        let g = gm_graph::gen::path(5);
        let mut globals = HashMap::from([
            ("k".to_owned(), Value::Int(3)),
            ("f".to_owned(), Value::Bool(false)),
        ]);
        let mut rng = PickRng::seed_from_u64(1);
        let mut env = MasterEnv {
            globals: &mut globals,
            graph: &g,
            rng: &mut rng,
        };
        let mut e = parse_expr("k * 2 + G.NumNodes()").unwrap();
        // Annotate types the checker would provide.
        fn annotate(e: &mut gm_core::ast::Expr) {
            e.ty = Some(Ty::Int);
            if let ExprKind::Binary { lhs, rhs, .. } = &mut e.kind {
                annotate(lhs);
                annotate(rhs);
            }
        }
        annotate(&mut e);
        assert_eq!(env.eval(&e), Value::Int(11));

        let e2 = parse_expr("!f || f").unwrap();
        assert_eq!(env.eval(&e2), Value::Bool(true));
    }

    #[test]
    fn master_pick_random_is_seeded() {
        let g = gm_graph::gen::path(100);
        let pick = |seed| {
            let mut globals = HashMap::new();
            let mut rng = PickRng::seed_from_u64(seed);
            let mut env = MasterEnv {
                globals: &mut globals,
                graph: &g,
                rng: &mut rng,
            };
            env.eval(&parse_expr("G.PickRandom()").unwrap())
        };
        assert_eq!(pick(7), pick(7));
    }

    #[test]
    fn pick_rng_replay_restores_stream_position() {
        let mut a = PickRng::seed_from_u64(99);
        for _ in 0..5 {
            a.pick(1000);
        }
        let mut b = PickRng::replay(99, a.draws(), 1000);
        for _ in 0..10 {
            assert_eq!(a.pick(1000), b.pick(1000));
        }
    }
}
