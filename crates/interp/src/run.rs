//! The state-machine driver: implements [`gm_pregel::VertexProgram`] for a
//! compiled [`PregelProgram`].
//!
//! Kernels are precompiled into slot-resolved programs
//! ([`crate::precompile`]) so the hot per-vertex path performs no string
//! hashing and no map lookups; broadcast globals are materialized once per
//! superstep by the master; message payloads are shared via `Arc` so a
//! fan-out to ten thousand neighbors clones a pointer, not a vector.

use crate::eval::{MasterEnv, PickRng};
use crate::exec::{eval, EvalCx};
use crate::precompile::{precompile, CAction, CInstr, Precompiled};
use gm_core::ast::AssignOp;
use gm_core::pir::{MInstr, PregelProgram, StateId, Transition, IN_NBRS_TAG};
use gm_core::seqinterp::ArgValue;
use gm_core::types::Ty;
use gm_core::value::{apply_reduce, Value};
use gm_core::{Compiled, Pullability};
use gm_graph::{EdgeId, Graph, NodeId};
use gm_pregel::{
    run_with_recovery, ByteReader, CkptError, GlobalValue, MasterContext, MasterDecision, Metrics,
    Persist, PregelConfig, PregelError, PullMode, ReduceOp, VertexContext, VertexProgram,
};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Per-vertex state: the property row plus the in-neighbor array.
#[derive(Clone, Debug)]
pub struct VertexData {
    props: Vec<Value>,
    in_nbrs: Vec<u32>,
}

/// A message: tag plus payload values in layout order (shared on fan-out).
#[derive(Clone, Debug)]
pub struct Msg {
    tag: u8,
    payload: Arc<[Value]>,
}

// `Value` lives in gm-core and `Persist` in gm-ckpt, so the orphan rule
// forbids a trait impl; a local tag-byte codec bridges the two.
fn put_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Int(x) => {
            0u8.persist(out);
            x.persist(out);
        }
        Value::Double(x) => {
            1u8.persist(out);
            x.persist(out);
        }
        Value::Bool(x) => {
            2u8.persist(out);
            x.persist(out);
        }
        Value::Node(x) => {
            3u8.persist(out);
            x.persist(out);
        }
        Value::Edge(x) => {
            4u8.persist(out);
            x.persist(out);
        }
    }
}

fn get_value(r: &mut ByteReader<'_>) -> Result<Value, CkptError> {
    Ok(match u8::restore(r)? {
        0 => Value::Int(Persist::restore(r)?),
        1 => Value::Double(Persist::restore(r)?),
        2 => Value::Bool(Persist::restore(r)?),
        3 => Value::Node(Persist::restore(r)?),
        4 => Value::Edge(Persist::restore(r)?),
        t => return Err(CkptError::Decode(format!("invalid Value tag {t:#04x}"))),
    })
}

impl Persist for VertexData {
    fn persist(&self, out: &mut Vec<u8>) {
        self.props.len().persist(out);
        for v in &self.props {
            put_value(v, out);
        }
        self.in_nbrs.persist(out);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        let n = usize::restore(r)?;
        let mut props = Vec::new();
        for _ in 0..n {
            props.push(get_value(r)?);
        }
        Ok(VertexData {
            props,
            in_nbrs: Persist::restore(r)?,
        })
    }
}

impl Persist for Msg {
    fn persist(&self, out: &mut Vec<u8>) {
        self.tag.persist(out);
        self.payload.len().persist(out);
        for v in self.payload.iter() {
            put_value(v, out);
        }
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        let tag = u8::restore(r)?;
        let n = usize::restore(r)?;
        let mut payload = Vec::new();
        for _ in 0..n {
            payload.push(get_value(r)?);
        }
        Ok(Msg {
            tag,
            payload: Arc::from(payload),
        })
    }
}

/// Errors from [`run_compiled`].
#[derive(Debug)]
pub enum RunError {
    /// Bad or missing procedure argument.
    BadArgument(String),
    /// The BSP runtime failed (e.g. superstep limit).
    Pregel(PregelError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::BadArgument(m) => write!(f, "bad argument: {m}"),
            RunError::Pregel(e) => write!(f, "pregel runtime error: {e}"),
        }
    }
}

impl Error for RunError {}

impl From<PregelError> for RunError {
    fn from(e: PregelError) -> Self {
        RunError::Pregel(e)
    }
}

/// One executed superstep, for tracing/debugging generated programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStep {
    /// Which state of the machine ran its vertex phase.
    pub state: usize,
    /// Vertices whose kernel executed.
    pub active_vertices: u32,
    /// Messages sent during the superstep.
    pub messages_sent: u64,
    /// Serialized bytes of those messages.
    pub message_bytes: u64,
}

/// Result of executing a compiled program.
#[derive(Debug, Clone)]
pub struct CompiledOutcome {
    /// The `Return` value, if any.
    pub ret: Option<Value>,
    /// Final node-property contents by (unique) name.
    pub node_props: HashMap<String, Vec<Value>>,
    /// Final master globals.
    pub globals: HashMap<String, Value>,
    /// Superstep/message/timing counters from the BSP runtime.
    pub metrics: Metrics,
    /// Which machine state each superstep executed (aligned with
    /// [`Metrics::per_superstep`]) — the execution trace of the generated
    /// state machine.
    pub trace: Vec<TraceStep>,
}

/// Executes `compiled` on `graph` with the given arguments.
///
/// Arguments use the same convention as the sequential interpreter
/// ([`gm_core::seqinterp::run_procedure`]), so differential tests can feed
/// both sides identically. `seed` drives `G.PickRandom()` with the same
/// draw sequence as the sequential interpreter.
///
/// # Errors
///
/// Returns [`RunError::BadArgument`] for malformed arguments and
/// [`RunError::Pregel`] for runtime failures.
pub fn run_compiled(
    graph: &Graph,
    compiled: &Compiled,
    args: &HashMap<String, ArgValue>,
    seed: u64,
    config: &PregelConfig,
) -> Result<CompiledOutcome, RunError> {
    let program = &compiled.program;

    // Property index maps and initial columns.
    let mut prop_idx = HashMap::new();
    let mut prop_tys = Vec::new();
    let mut columns: Vec<Option<Vec<Value>>> = Vec::new();
    for (i, (name, ty)) in program.node_props.iter().enumerate() {
        prop_idx.insert(name.clone(), i);
        prop_tys.push(ty.clone());
        match args.get(name) {
            Some(ArgValue::NodeProp(v)) => {
                if v.len() != graph.num_nodes() as usize {
                    return Err(RunError::BadArgument(format!(
                        "node property `{name}` has wrong length"
                    )));
                }
                columns.push(Some(v.clone()));
            }
            Some(_) => {
                return Err(RunError::BadArgument(format!(
                    "`{name}` must be a node property"
                )))
            }
            None => columns.push(None),
        }
    }

    let mut edge_idx = HashMap::new();
    let mut edge_cols = Vec::new();
    for (i, (name, ty)) in program.edge_props.iter().enumerate() {
        edge_idx.insert(name.clone(), i);
        let values = match args.get(name) {
            Some(ArgValue::EdgeProp(v)) => {
                if v.len() != graph.num_edges() as usize {
                    return Err(RunError::BadArgument(format!(
                        "edge property `{name}` has wrong length"
                    )));
                }
                v.clone()
            }
            Some(_) => {
                return Err(RunError::BadArgument(format!(
                    "`{name}` must be an edge property"
                )))
            }
            None => vec![Value::default_for(ty); graph.num_edges() as usize],
        };
        edge_cols.push(values);
    }

    // Master globals: params from args, locals at defaults.
    let mut globals = HashMap::new();
    let mut global_tys = HashMap::new();
    for (name, ty) in &program.globals {
        global_tys.insert(name.clone(), ty.clone());
        globals.insert(name.clone(), Value::default_for(ty));
    }
    for (name, ty) in &program.scalar_params {
        match args.get(name) {
            Some(ArgValue::Scalar(v)) => {
                globals.insert(name.clone(), v.coerce(ty));
            }
            Some(_) => return Err(RunError::BadArgument(format!("`{name}` must be a scalar"))),
            None => {
                return Err(RunError::BadArgument(format!(
                    "missing scalar argument `{name}`"
                )))
            }
        }
    }

    let pre = precompile(program, &prop_idx, &edge_idx);

    let defaults: Vec<Value> = prop_tys.iter().map(Value::default_for).collect();
    let init = |n: NodeId| VertexData {
        props: columns
            .iter()
            .enumerate()
            .map(|(i, col)| match col {
                Some(v) => v[n.index()],
                None => defaults[i],
            })
            .collect(),
        in_nbrs: Vec::new(),
    };

    // Per-state pullability verdicts: recorded by the compiler pass when it
    // ran, recomputed here otherwise (hand-built PIR in tests).
    let pullable = if program.pullable.len() == program.states.len() {
        program.pullable.clone()
    } else {
        gm_core::pullability::analyze(program)
    };

    let mut machine = Machine {
        program,
        pre,
        pullable,
        global_tys: &global_tys,
        edge_cols: &edge_cols,
        graph,
        globals,
        seed,
        rng: PickRng::seed_from_u64(seed),
        prev_state: None,
        cur_state: 0,
        cur_globals: Vec::new(),
        state_log: Vec::new(),
        ret: None,
        finished: false,
    };

    let result = run_with_recovery(graph, &mut machine, init, config)?;

    let mut node_props: HashMap<String, Vec<Value>> = HashMap::new();
    for (name, &i) in &prop_idx {
        node_props.insert(
            name.clone(),
            result.values.iter().map(|v| v.props[i]).collect(),
        );
    }
    let trace = machine
        .state_log
        .iter()
        .zip(&result.metrics.per_superstep)
        .map(|(&state, m)| TraceStep {
            state,
            active_vertices: m.active_vertices,
            messages_sent: m.messages_sent,
            message_bytes: m.message_bytes,
        })
        .collect();
    Ok(CompiledOutcome {
        ret: machine.ret,
        node_props,
        globals: machine.globals,
        metrics: result.metrics,
        trace,
    })
}

struct Machine<'a> {
    program: &'a PregelProgram,
    pre: Precompiled,
    /// Pullability verdict per state (aligned with `program.states`).
    pullable: Vec<Pullability>,
    global_tys: &'a HashMap<String, Ty>,
    edge_cols: &'a [Vec<Value>],
    graph: &'a Graph,
    globals: HashMap<String, Value>,
    seed: u64,
    rng: PickRng,
    prev_state: Option<StateId>,
    /// Set by the master before each vertex phase.
    cur_state: StateId,
    /// Broadcast values in the current kernel's slot order.
    cur_globals: Vec<Value>,
    /// States visited, one per vertex superstep (the execution trace).
    state_log: Vec<StateId>,
    ret: Option<Value>,
    finished: bool,
}

impl Machine<'_> {
    fn run_minstrs(&mut self, instrs: &[MInstr], agg: Option<&MasterContext<'_>>) {
        for m in instrs {
            if self.finished {
                return;
            }
            match m {
                MInstr::Assign { name, op, value } => {
                    let v = {
                        let mut env = MasterEnv {
                            globals: &mut self.globals,
                            graph: self.graph,
                            rng: &mut self.rng,
                        };
                        env.eval(value)
                    };
                    let ty = self.global_tys[name].clone();
                    let v = v.coerce(&ty);
                    let cur = self.globals[name];
                    self.globals.insert(name.clone(), apply_reduce(*op, cur, v));
                }
                MInstr::FoldAgg { name, op, agg_key } => {
                    if let Some(ctx) = agg {
                        if let Some(gv) = ctx.agg(agg_key) {
                            let cur = self.globals[name];
                            let v = from_g(gv);
                            self.globals.insert(name.clone(), apply_reduce(*op, cur, v));
                        }
                    }
                }
                MInstr::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let c = {
                        let mut env = MasterEnv {
                            globals: &mut self.globals,
                            graph: self.graph,
                            rng: &mut self.rng,
                        };
                        env.eval(cond).as_bool()
                    };
                    if c {
                        self.run_minstrs(then_branch, agg);
                    } else {
                        self.run_minstrs(else_branch, agg);
                    }
                }
                MInstr::SetReturn(e) => {
                    self.ret = e.as_ref().map(|e| {
                        let mut env = MasterEnv {
                            globals: &mut self.globals,
                            graph: self.graph,
                            rng: &mut self.rng,
                        };
                        let v = env.eval(e);
                        match &self.program.ret {
                            Some(t) => v.coerce(t),
                            None => v,
                        }
                    });
                    self.finished = true;
                }
            }
        }
    }

    fn eval_transition(&mut self, t: &Transition) -> Option<StateId> {
        match t {
            Transition::Goto(id) => Some(*id),
            Transition::Branch {
                cond,
                then_to,
                else_to,
            } => {
                let mut env = MasterEnv {
                    globals: &mut self.globals,
                    graph: self.graph,
                    rng: &mut self.rng,
                };
                if env.eval(cond).as_bool() {
                    Some(*then_to)
                } else {
                    Some(*else_to)
                }
            }
            Transition::Halt => None,
        }
    }
}

impl VertexProgram for Machine<'_> {
    type VertexValue = VertexData;
    type Message = Msg;

    fn message_bytes(&self, m: &Msg) -> u64 {
        if m.tag == IN_NBRS_TAG {
            self.pre.in_nbrs_bytes
        } else {
            self.pre.msg_bytes[m.tag as usize]
        }
    }

    fn has_combiner(&self) -> bool {
        self.program.combinable.iter().any(Option::is_some)
    }

    fn combine(&self, a: &Msg, b: &Msg) -> Option<Msg> {
        if a.tag != b.tag || a.tag == IN_NBRS_TAG {
            return None;
        }
        let op = self
            .program
            .combinable
            .get(a.tag as usize)
            .copied()
            .flatten()?;
        Some(Msg {
            tag: a.tag,
            payload: Arc::from(vec![apply_reduce(op, a.payload[0], b.payload[0])]),
        })
    }

    fn pull_supported(&self) -> bool {
        self.pullable
            .iter()
            .any(|p| matches!(p, Pullability::Pullable { .. }))
    }

    fn pull_mode(&self) -> PullMode {
        // `NoSends` states map to `Unsupported` on purpose: a gather walks
        // every in-edge, which is wasted work when nothing was sent.
        match self.pullable.get(self.cur_state) {
            Some(Pullability::Pullable {
                edge_dependent: false,
            }) => PullMode::Captured,
            Some(Pullability::Pullable {
                edge_dependent: true,
            }) => PullMode::Recomputed,
            _ => PullMode::Unsupported,
        }
    }

    fn pull_message(
        &self,
        graph: &Graph,
        src: NodeId,
        edge: EdgeId,
        src_value: &VertexData,
    ) -> Msg {
        let site = self.pre.kernels[self.cur_state]
            .as_ref()
            .and_then(|k| k.send_site.as_ref())
            .expect("Recomputed verdict implies a recorded single send site");
        // The pullability analysis guarantees the payload reads no kernel
        // locals and no kernel-written properties, so evaluating it here —
        // after the sender's kernel ran — reproduces the pushed payload.
        let cx = EvalCx {
            props: &src_value.props,
            snapshot: None,
            payload: &[],
            locals: &[],
            globals: &self.cur_globals,
            self_id: src.0,
            out_degree: graph.out_degree(src),
            in_nbrs_len: src_value.in_nbrs.len(),
            edge_cols: self.edge_cols,
            edge: edge.index(),
            num_nodes: graph.num_nodes(),
            num_edges: graph.num_edges(),
        };
        Msg {
            tag: site.tag,
            payload: site.payload.iter().map(|p| eval(p, &cx)).collect(),
        }
    }

    fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
        if self.finished {
            return MasterDecision::Halt;
        }
        let mut current = match self.prev_state {
            None => 0,
            Some(prev) => {
                let post = self.program.states[prev].post.clone();
                self.run_minstrs(&post, Some(ctx));
                if self.finished {
                    return MasterDecision::Halt;
                }
                match self.eval_transition(&self.program.states[prev].transition.clone()) {
                    Some(id) => id,
                    None => return MasterDecision::Halt,
                }
            }
        };
        // Master chain: run through master-only states within this call.
        let mut steps: u64 = 0;
        loop {
            steps += 1;
            assert!(
                steps < 10_000_000,
                "master state machine did not reach a vertex state"
            );
            let master = self.program.states[current].master.clone();
            self.run_minstrs(&master, None);
            if self.finished {
                return MasterDecision::Halt;
            }
            if self.program.states[current].vertex.is_some() {
                break;
            }
            let post = self.program.states[current].post.clone();
            self.run_minstrs(&post, None);
            match self.eval_transition(&self.program.states[current].transition.clone()) {
                Some(next) => current = next,
                None => return MasterDecision::Halt,
            }
        }
        // Broadcast the state number (as GPS does) and materialize the
        // globals the kernel reads, in slot order, for the vertex phase.
        ctx.put_global("_state", GlobalValue::Int(current as i64));
        let kernel = self.pre.kernels[current]
            .as_ref()
            .expect("loop exits on vertex states");
        self.cur_globals = kernel
            .reads_globals
            .iter()
            .map(|g| self.globals[g])
            .collect();
        for (name, v) in kernel.reads_globals.iter().zip(&self.cur_globals) {
            ctx.put_global(name, to_g(*v));
        }
        self.cur_state = current;
        self.prev_state = Some(current);
        self.state_log.push(current);
        MasterDecision::Continue
    }

    fn vertex_compute(
        &self,
        ctx: &mut VertexContext<'_, '_, Msg>,
        value: &mut VertexData,
        messages: &[Msg],
    ) {
        let Some(kernel) = self.pre.kernels[self.cur_state].as_ref() else {
            return;
        };
        let self_id = ctx.id().0;
        let out_degree = ctx.out_degree();

        // ---- receive phase (messages from the previous superstep) ----
        if !messages.is_empty() {
            let snapshot: Option<Vec<Value>> = kernel.snapshot_needed.then(|| value.props.clone());
            for msg in messages {
                if msg.tag == IN_NBRS_TAG {
                    if kernel.stores_in_nbrs {
                        value.in_nbrs.push(msg.payload[0].as_node());
                    }
                    continue;
                }
                let Some(handler) = kernel
                    .recv_by_tag
                    .get(msg.tag as usize)
                    .and_then(|h| h.as_ref())
                else {
                    continue; // dangling message — dropped, as in the paper
                };
                let in_nbrs_len = value.in_nbrs.len();
                let eval_recv = |props: &[Value], e: &crate::precompile::CExpr| -> Value {
                    eval(
                        e,
                        &EvalCx {
                            props,
                            snapshot: snapshot.as_deref(),
                            payload: &msg.payload,
                            locals: &[],
                            globals: &self.cur_globals,
                            self_id,
                            out_degree,
                            in_nbrs_len,
                            edge_cols: self.edge_cols,
                            edge: 0,
                            num_nodes: self.graph.num_nodes(),
                            num_edges: self.graph.num_edges(),
                        },
                    )
                };
                if let Some(g) = &handler.guard {
                    if !eval_recv(&value.props, g).as_bool() {
                        continue;
                    }
                }
                for step in &handler.steps {
                    if let Some(g) = &step.guard {
                        if !eval_recv(&value.props, g).as_bool() {
                            continue;
                        }
                    }
                    match &step.action {
                        CAction::WriteOwn {
                            prop,
                            op,
                            value: ve,
                            ty,
                        } => {
                            let v = eval_recv(&value.props, ve).coerce(ty);
                            value.props[*prop] = apply_reduce(*op, value.props[*prop], v);
                        }
                        CAction::ReduceGlobal {
                            name,
                            op,
                            value: ve,
                        } => {
                            let v = eval_recv(&value.props, ve);
                            ctx.reduce_global(name, to_reduce_op(*op), to_g(v));
                        }
                        CAction::StoreInNbr => {
                            value.in_nbrs.push(msg.payload[0].as_node());
                        }
                    }
                }
            }
        }

        // ---- body phase ----
        let VertexData { props, in_nbrs } = value;
        let mut locals = vec![Value::Int(0); kernel.num_locals];
        let mut deferred: Vec<(usize, Value)> = Vec::new();
        let filter_ok = match &kernel.filter {
            Some(f) => {
                let cx = EvalCx {
                    props,
                    snapshot: None,
                    payload: &[],
                    locals: &locals,
                    globals: &self.cur_globals,
                    self_id,
                    out_degree,
                    in_nbrs_len: in_nbrs.len(),
                    edge_cols: self.edge_cols,
                    edge: 0,
                    num_nodes: self.graph.num_nodes(),
                    num_edges: self.graph.num_edges(),
                };
                eval(f, &cx).as_bool()
            }
            None => true,
        };
        if filter_ok {
            self.exec_instrs(
                ctx,
                &kernel.body,
                props,
                in_nbrs,
                &mut locals,
                &mut deferred,
                self_id,
                out_degree,
            );
        }
        for (idx, v) in deferred {
            props[idx] = v;
        }
    }

    // Snapshots are cut before `master_compute`, so `cur_state` and
    // `cur_globals` need not be saved — the master recomputes them on the
    // first post-restore superstep. The RNG is stored as its draw count
    // and replayed from the seed (see [`PickRng`]).
    fn save_master_state(&self, out: &mut Vec<u8>) {
        self.rng.draws().persist(out);
        self.prev_state.map(|s| s as u64).persist(out);
        self.finished.persist(out);
        self.ret.is_some().persist(out);
        if let Some(v) = &self.ret {
            put_value(v, out);
        }
        let mut names: Vec<&String> = self.globals.keys().collect();
        names.sort();
        names.len().persist(out);
        for name in names {
            name.persist(out);
            put_value(&self.globals[name], out);
        }
        self.state_log.len().persist(out);
        for &s in &self.state_log {
            (s as u64).persist(out);
        }
    }

    fn restore_master_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CkptError> {
        let draws = u64::restore(r)?;
        self.rng = PickRng::replay(self.seed, draws, self.graph.num_nodes());
        let prev: Option<u64> = Persist::restore(r)?;
        self.prev_state = prev.map(|s| s as StateId);
        self.finished = Persist::restore(r)?;
        self.ret = if bool::restore(r)? {
            Some(get_value(r)?)
        } else {
            None
        };
        let n = usize::restore(r)?;
        let mut globals = HashMap::with_capacity(n);
        for _ in 0..n {
            let name = String::restore(r)?;
            let v = get_value(r)?;
            globals.insert(name, v);
        }
        self.globals = globals;
        let n = usize::restore(r)?;
        let mut log = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            log.push(u64::restore(r)? as StateId);
        }
        self.state_log = log;
        Ok(())
    }
}

impl Machine<'_> {
    #[allow(clippy::too_many_arguments)]
    fn exec_instrs(
        &self,
        ctx: &mut VertexContext<'_, '_, Msg>,
        instrs: &[CInstr],
        props: &mut Vec<Value>,
        in_nbrs: &[u32],
        locals: &mut Vec<Value>,
        deferred: &mut Vec<(usize, Value)>,
        self_id: u32,
        out_degree: u32,
    ) {
        macro_rules! cx {
            () => {
                cx!(0)
            };
            ($edge:expr) => {
                EvalCx {
                    props,
                    snapshot: None,
                    payload: &[],
                    locals,
                    globals: &self.cur_globals,
                    self_id,
                    out_degree,
                    in_nbrs_len: in_nbrs.len(),
                    edge_cols: self.edge_cols,
                    edge: $edge,
                    num_nodes: self.graph.num_nodes(),
                    num_edges: self.graph.num_edges(),
                }
            };
        }
        for instr in instrs {
            match instr {
                CInstr::Local {
                    slot,
                    op,
                    value,
                    ty,
                } => {
                    let v = eval(value, &cx!()).coerce(ty);
                    locals[*slot] = match op {
                        AssignOp::Assign => v,
                        _ => apply_reduce(*op, locals[*slot], v),
                    };
                }
                CInstr::WriteOwn {
                    prop,
                    op,
                    value,
                    ty,
                } => {
                    let v = eval(value, &cx!()).coerce(ty);
                    if *op == AssignOp::Defer {
                        deferred.push((*prop, v));
                    } else {
                        props[*prop] = apply_reduce(*op, props[*prop], v);
                    }
                }
                CInstr::ReduceGlobal { name, op, value } => {
                    let v = eval(value, &cx!());
                    ctx.reduce_global(name, to_reduce_op(*op), to_g(v));
                }
                CInstr::SendToNbrs {
                    tag,
                    payload,
                    edge_dependent,
                } => {
                    if *edge_dependent {
                        // In a Recomputed gather superstep `mark_send`
                        // absorbs the broadcast; the runtime re-evaluates
                        // the payload per in-edge via `pull_message`.
                        if !ctx.mark_send() {
                            for (t, e) in ctx.out_neighbors() {
                                let values: Arc<[Value]> =
                                    payload.iter().map(|p| eval(p, &cx!(e.index()))).collect();
                                ctx.send(
                                    t,
                                    Msg {
                                        tag: *tag,
                                        payload: values,
                                    },
                                );
                            }
                        }
                    } else {
                        let values: Arc<[Value]> =
                            payload.iter().map(|p| eval(p, &cx!())).collect();
                        ctx.send_to_nbrs(Msg {
                            tag: *tag,
                            payload: values,
                        });
                    }
                }
                CInstr::SendToInNbrs { tag, payload } => {
                    let values: Arc<[Value]> = payload.iter().map(|p| eval(p, &cx!())).collect();
                    for &nbr in in_nbrs {
                        ctx.send(
                            NodeId(nbr),
                            Msg {
                                tag: *tag,
                                payload: Arc::clone(&values),
                            },
                        );
                    }
                }
                CInstr::SendTo { dst, tag, payload } => {
                    let d = eval(dst, &cx!()).as_node();
                    let values: Arc<[Value]> = payload.iter().map(|p| eval(p, &cx!())).collect();
                    ctx.send(
                        NodeId(d),
                        Msg {
                            tag: *tag,
                            payload: values,
                        },
                    );
                }
                CInstr::SendIdToNbrs => {
                    let payload: Arc<[Value]> = Arc::from(vec![Value::Node(self_id)]);
                    ctx.send_to_nbrs(Msg {
                        tag: IN_NBRS_TAG,
                        payload,
                    });
                }
                CInstr::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let c = eval(cond, &cx!()).as_bool();
                    let branch = if c { then_branch } else { else_branch };
                    self.exec_instrs(
                        ctx, branch, props, in_nbrs, locals, deferred, self_id, out_degree,
                    );
                }
            }
        }
    }
}

fn to_g(v: Value) -> GlobalValue {
    match v {
        Value::Int(x) => GlobalValue::Int(x),
        Value::Double(x) => GlobalValue::Double(x),
        Value::Bool(x) => GlobalValue::Bool(x),
        Value::Node(x) => GlobalValue::Node(x),
        Value::Edge(x) => GlobalValue::Int(x as i64),
    }
}

fn from_g(g: GlobalValue) -> Value {
    match g {
        GlobalValue::Int(x) => Value::Int(x),
        GlobalValue::Double(x) => Value::Double(x),
        GlobalValue::Bool(x) => Value::Bool(x),
        GlobalValue::Node(x) => Value::Node(x),
    }
}

fn to_reduce_op(op: AssignOp) -> ReduceOp {
    match op {
        AssignOp::Add => ReduceOp::Sum,
        AssignOp::Min => ReduceOp::Min,
        AssignOp::Max => ReduceOp::Max,
        AssignOp::Or => ReduceOp::Or,
        AssignOp::And => ReduceOp::And,
        other => panic!("global reduction operator {other:?} not supported by the runtime"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_core::{compile, CompileOptions};

    fn run_src(graph: &Graph, src: &str, args: &HashMap<String, ArgValue>) -> CompiledOutcome {
        let compiled = compile(src, &CompileOptions::default()).expect("compiles");
        run_compiled(graph, &compiled, args, 42, &PregelConfig::sequential()).expect("runs")
    }

    /// Also runs the sequential interpreter on the *original* source and
    /// compares node-prop and return results.
    fn differential(graph: &Graph, src: &str, args: &HashMap<String, ArgValue>) {
        use gm_core::seqinterp::run_procedure;
        let mut prog = gm_core::parser::parse(src).unwrap();
        gm_core::normalize::desugar_bulk(&mut prog);
        let infos = gm_core::sema::check(&mut prog).unwrap();
        let seq = run_procedure(graph, &prog.procedures[0], &infos[0], args, 42).unwrap();

        let out = run_src(graph, src, args);
        assert_eq!(seq.ret, out.ret, "return values differ");
        for (name, vals) in &out.node_props {
            if let Some(seq_vals) = seq.node_props.get(name) {
                assert_eq!(seq_vals, vals, "property `{name}` differs");
            }
        }
    }

    #[test]
    fn push_count_matches_sequential() {
        let g = gm_graph::gen::rmat(64, 256, 5);
        differential(
            &g,
            "Procedure f(G: Graph, cnt: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    Foreach (t: n.Nbrs) {
                        t.cnt += 1;
                    }
                }
            }",
            &HashMap::new(),
        );
    }

    #[test]
    fn global_reduction_and_return() {
        let g = gm_graph::gen::star(5);
        differential(
            &g,
            "Procedure f(G: Graph) : Int {
                Int s = 0;
                Foreach (n: G.Nodes) {
                    s += n.Degree();
                }
                Return s;
            }",
            &HashMap::new(),
        );
    }

    #[test]
    fn pull_program_flips_and_matches() {
        let g = gm_graph::gen::rmat(48, 200, 9);
        let bars: Vec<Value> = (0..48).map(|i| Value::Int((i * 13) % 31)).collect();
        differential(
            &g,
            "Procedure f(G: Graph, foo: N_P<Int>, bar: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    Foreach (t: n.InNbrs) {
                        n.foo max= t.bar;
                    }
                }
            }",
            &HashMap::from([("bar".to_owned(), ArgValue::NodeProp(bars))]),
        );
    }

    #[test]
    fn while_loop_with_exist_condition() {
        let g = gm_graph::gen::path(6);
        differential(
            &g,
            "Procedure f(G: Graph, v: N_P<Bool>) : Int {
                Int rounds = 0;
                Foreach (n: G.Nodes)(n.InDegree() == 0) {
                    n.v = True;
                }
                While (Exist(n: G.Nodes)(!n.v)) {
                    Foreach (n: G.Nodes)(n.v) {
                        Foreach (t: n.Nbrs) {
                            t.v = True;
                        }
                    }
                    rounds += 1;
                }
                Return rounds;
            }",
            &HashMap::new(),
        );
    }

    #[test]
    fn bulk_assignment_and_random_write() {
        let g = gm_graph::gen::path(5);
        differential(
            &g,
            "Procedure f(G: Graph, root: Node, dist: N_P<Int>) {
                G.dist = (G == root) ? 0 : INF;
            }",
            &HashMap::from([("root".to_owned(), ArgValue::Scalar(Value::Node(2)))]),
        );
    }

    #[test]
    fn edge_properties_ship_in_payload() {
        let g = gm_graph::gen::path(4);
        let weights = vec![Value::Int(5), Value::Int(7), Value::Int(11)];
        differential(
            &g,
            "Procedure f(G: Graph, len: E_P<Int>, d: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    Foreach (s: n.Nbrs) {
                        Edge e = s.ToEdge();
                        s.d min= e.len;
                    }
                }
            }",
            &HashMap::from([("len".to_owned(), ArgValue::EdgeProp(weights))]),
        );
    }

    #[test]
    fn in_neighbor_preamble_counts_messages() {
        let g = gm_graph::gen::star(4); // 0 → 1..4
        let out = run_src(
            &g,
            "Procedure f(G: Graph, c: N_P<Int>, m: N_P<Bool>) {
                Foreach (i: G.Nodes) {
                    i.m = True;
                }
                Foreach (j: G.Nodes)(j.m) {
                    Foreach (u: j.InNbrs) {
                        u.c += 1;
                    }
                }
            }",
            &HashMap::new(),
        );
        // Hub has out-degree 4 → receives 4 "count" messages.
        assert_eq!(out.node_props["c"][0], Value::Int(4));
        // Preamble: 4 id messages + 4 in-neighbor messages.
        assert_eq!(out.metrics.total_messages, 8);
    }

    #[test]
    fn bfs_program_end_to_end() {
        let mut b = gm_graph::GraphBuilder::new(6);
        b.extend([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let g = b.build();
        differential(
            &g,
            "Procedure f(G: Graph, root: Node, sigma: N_P<Double>) {
                Foreach (i: G.Nodes) {
                    i.sigma = 0.0;
                }
                root.sigma = 1.0;
                InBFS (v: G.Nodes From root) {
                    v.sigma += Sum(w: v.UpNbrs){w.sigma};
                }
            }",
            &HashMap::from([("root".to_owned(), ArgValue::Scalar(Value::Node(0)))]),
        );
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let g = gm_graph::gen::rmat(64, 256, 11);
        let src = "Procedure f(G: Graph, cnt: N_P<Int>) {
            Foreach (n: G.Nodes) {
                Foreach (t: n.Nbrs) {
                    t.cnt += 1;
                }
            }
        }";
        let compiled = compile(src, &CompileOptions::default()).unwrap();
        let base = run_compiled(
            &g,
            &compiled,
            &HashMap::new(),
            0,
            &PregelConfig::sequential(),
        )
        .unwrap();
        for w in [2, 4] {
            let out = run_compiled(
                &g,
                &compiled,
                &HashMap::new(),
                0,
                &PregelConfig::with_workers(w),
            )
            .unwrap();
            assert_eq!(out.node_props["cnt"], base.node_props["cnt"]);
            assert_eq!(out.metrics.supersteps, base.metrics.supersteps);
            assert_eq!(
                out.metrics.total_message_bytes,
                base.metrics.total_message_bytes
            );
        }
    }

    #[test]
    fn missing_argument_is_reported() {
        let g = gm_graph::gen::path(3);
        let compiled = compile(
            "Procedure f(G: Graph, k: Int) : Int { Return k; }",
            &CompileOptions::default(),
        )
        .unwrap();
        let err = run_compiled(
            &g,
            &compiled,
            &HashMap::new(),
            0,
            &PregelConfig::sequential(),
        )
        .unwrap_err();
        assert!(matches!(err, RunError::BadArgument(_)));
        assert!(err.to_string().contains("k"));
    }
}
