//! Precompilation of the PIR into a slot-resolved form.
//!
//! The PIR reuses named AST expressions; evaluating them directly costs a
//! string hash per property/local/global read, per vertex, per superstep.
//! This module resolves every name to an index once, folds `INF`/`NIL`
//! literals into constants, and flattens the kernels into [`CInstr`]
//! programs the executor can run allocation-free.

use gm_core::ast::{AssignOp, BinOp, Expr, ExprKind, UnOp};
use gm_core::pir::{
    PregelProgram, RecvAction, VInstr, VertexKernel, EDGE, IN_NBRS_TAG, PAYLOAD_PREFIX, SELF,
};
use gm_core::types::Ty;
use gm_core::value::{Value, NIL_NODE};
use std::collections::HashMap;

/// A name-free expression.
#[derive(Clone, Debug)]
pub enum CExpr {
    /// Literal (including resolved `INF`/`NIL`).
    Const(Value),
    /// Own property by slot.
    Prop(usize),
    /// Property of the connecting edge, by edge-column slot.
    EdgeProp(usize),
    /// Message payload field by position.
    Payload(usize),
    /// Kernel local by slot.
    Local(usize),
    /// Broadcast global by per-kernel slot.
    Global(usize),
    /// The executing vertex's id.
    SelfId,
    /// `Degree()` of the executing vertex.
    OutDegree,
    /// `InDegree()` (length of the in-neighbor array).
    InDegree,
    /// `G.NumNodes()`.
    NumNodes,
    /// `G.NumEdges()`.
    NumEdges,
    /// Unary operation.
    Un(UnOp, Box<CExpr>),
    /// Binary operation (`&&`/`||` short-circuit).
    Bin(BinOp, Box<CExpr>, Box<CExpr>),
    /// Conditional with optional result coercion.
    Ternary {
        /// Condition.
        cond: Box<CExpr>,
        /// True branch.
        then_val: Box<CExpr>,
        /// False branch.
        else_val: Box<CExpr>,
        /// Result type to coerce to (from the checker's annotation).
        coerce: Option<Ty>,
    },
}

/// A name-free vertex instruction.
#[derive(Clone, Debug)]
pub enum CInstr {
    /// Local slot write.
    Local {
        /// Slot.
        slot: usize,
        /// Operator.
        op: AssignOp,
        /// Value.
        value: CExpr,
        /// Declared type (for coercion).
        ty: Ty,
    },
    /// Own property write.
    WriteOwn {
        /// Property slot.
        prop: usize,
        /// Operator (`Defer` buffers to kernel end).
        op: AssignOp,
        /// Value.
        value: CExpr,
        /// Property type (for coercion).
        ty: Ty,
    },
    /// Global reduction.
    ReduceGlobal {
        /// Global name (the aggregation map is string-keyed).
        name: String,
        /// Operator.
        op: AssignOp,
        /// Value.
        value: CExpr,
    },
    /// Send to all out-neighbors.
    SendToNbrs {
        /// Message tag.
        tag: u8,
        /// Payload expressions.
        payload: Vec<CExpr>,
        /// Whether any payload expression reads the connecting edge
        /// (otherwise the payload is evaluated once and shared).
        edge_dependent: bool,
    },
    /// Send to the materialized in-neighbors.
    SendToInNbrs {
        /// Message tag.
        tag: u8,
        /// Payload expressions.
        payload: Vec<CExpr>,
    },
    /// Send to one vertex.
    SendTo {
        /// Destination.
        dst: CExpr,
        /// Message tag.
        tag: u8,
        /// Payload expressions.
        payload: Vec<CExpr>,
    },
    /// Preamble: ship the own id to out-neighbors.
    SendIdToNbrs,
    /// Conditional.
    If {
        /// Condition.
        cond: CExpr,
        /// True branch.
        then_branch: Vec<CInstr>,
        /// False branch.
        else_branch: Vec<CInstr>,
    },
}

/// A receive step.
#[derive(Clone, Debug)]
pub struct CStep {
    /// Optional guard.
    pub guard: Option<CExpr>,
    /// The action.
    pub action: CAction,
}

/// Receive actions.
#[derive(Clone, Debug)]
pub enum CAction {
    /// Own property write.
    WriteOwn {
        /// Property slot.
        prop: usize,
        /// Operator.
        op: AssignOp,
        /// Value.
        value: CExpr,
        /// Property type.
        ty: Ty,
    },
    /// Global reduction.
    ReduceGlobal {
        /// Global name.
        name: String,
        /// Operator.
        op: AssignOp,
        /// Value.
        value: CExpr,
    },
    /// Store the sender id into the in-neighbor array.
    StoreInNbr,
}

/// A receive handler.
#[derive(Clone, Debug)]
pub struct CRecv {
    /// Optional handler-level guard.
    pub guard: Option<CExpr>,
    /// Steps per message.
    pub steps: Vec<CStep>,
}

/// A kernel's single neighbor-broadcast site, recorded so gathered (pull)
/// supersteps can re-evaluate the payload receiver-side. Only present when
/// the body contains exactly one `SendToNbrs`/`SendIdToNbrs` — the same
/// condition the pullability analysis requires, so a `Pullable` verdict
/// implies the site is recorded.
#[derive(Clone, Debug)]
pub struct CSendSite {
    /// Message tag (`IN_NBRS_TAG` for the preamble's id broadcast).
    pub tag: u8,
    /// Payload expressions, slot-resolved in the kernel's `Cx` (so
    /// `Global` slots line up with the executor's broadcast vector).
    pub payload: Vec<CExpr>,
}

/// A precompiled vertex kernel.
#[derive(Clone, Debug)]
pub struct CKernel {
    /// Handler per tag (`None` = drop).
    pub recv_by_tag: Vec<Option<CRecv>>,
    /// Whether `IN_NBRS_TAG` messages are stored.
    pub stores_in_nbrs: bool,
    /// Body gate.
    pub filter: Option<CExpr>,
    /// Body program.
    pub body: Vec<CInstr>,
    /// Number of local slots.
    pub num_locals: usize,
    /// Broadcast globals read by this kernel, in slot order.
    pub reads_globals: Vec<String>,
    /// Whether the receive phase reads own properties (snapshot needed).
    pub snapshot_needed: bool,
    /// The body's single neighbor-broadcast site, if there is exactly one.
    pub send_site: Option<CSendSite>,
}

/// The whole program, precompiled.
#[derive(Clone, Debug)]
pub struct Precompiled {
    /// Kernel per state (`None` for master-only states).
    pub kernels: Vec<Option<CKernel>>,
    /// Serialized size per tag.
    pub msg_bytes: Vec<u64>,
    /// Serialized size of preamble messages.
    pub in_nbrs_bytes: u64,
}

/// Precompiles every kernel of `program` against the property/edge-column
/// index maps.
pub fn precompile(
    program: &PregelProgram,
    prop_idx: &HashMap<String, usize>,
    edge_idx: &HashMap<String, usize>,
) -> Precompiled {
    let kernels = program
        .states
        .iter()
        .map(|s| {
            s.vertex
                .as_ref()
                .map(|k| compile_kernel(program, k, prop_idx, edge_idx))
        })
        .collect();
    Precompiled {
        kernels,
        msg_bytes: (0..program.messages.len())
            .map(|t| program.message_bytes(t as u8))
            .collect(),
        in_nbrs_bytes: program.in_nbrs_message_bytes(),
    }
}

struct Cx<'a> {
    prop_idx: &'a HashMap<String, usize>,
    edge_idx: &'a HashMap<String, usize>,
    global_slot: HashMap<String, usize>,
    reads_globals: Vec<String>,
    locals: HashMap<String, usize>,
    /// Payload field name → position, for the current handler.
    payload: HashMap<String, usize>,
}

impl Cx<'_> {
    fn global(&mut self, name: &str) -> usize {
        if let Some(&s) = self.global_slot.get(name) {
            return s;
        }
        let s = self.reads_globals.len();
        self.global_slot.insert(name.to_owned(), s);
        self.reads_globals.push(name.to_owned());
        s
    }

    fn local(&mut self, name: &str) -> usize {
        if let Some(&s) = self.locals.get(name) {
            return s;
        }
        let s = self.locals.len();
        self.locals.insert(name.to_owned(), s);
        s
    }

    fn expr(&mut self, e: &Expr) -> CExpr {
        match &e.kind {
            ExprKind::IntLit(v) => CExpr::Const(Value::Int(*v)),
            ExprKind::FloatLit(v) => CExpr::Const(Value::Double(*v)),
            ExprKind::BoolLit(v) => CExpr::Const(Value::Bool(*v)),
            ExprKind::Inf { negative } => CExpr::Const(Value::inf_for(e.ty(), *negative)),
            ExprKind::Nil => CExpr::Const(Value::Node(NIL_NODE)),
            ExprKind::Var(name) if name == SELF => CExpr::SelfId,
            ExprKind::Var(name) if name.starts_with(PAYLOAD_PREFIX) => {
                let field = name.trim_start_matches(PAYLOAD_PREFIX);
                CExpr::Payload(
                    *self
                        .payload
                        .get(field)
                        .unwrap_or_else(|| panic!("unknown payload field `{field}`")),
                )
            }
            ExprKind::Var(name) => {
                if let Some(&slot) = self.locals.get(name) {
                    CExpr::Local(slot)
                } else {
                    CExpr::Global(self.global(name))
                }
            }
            ExprKind::Prop { obj, prop } if obj == SELF => CExpr::Prop(
                *self
                    .prop_idx
                    .get(prop)
                    .unwrap_or_else(|| panic!("unknown property `{prop}`")),
            ),
            ExprKind::Prop { obj, prop } if obj == EDGE => CExpr::EdgeProp(
                *self
                    .edge_idx
                    .get(prop)
                    .unwrap_or_else(|| panic!("unknown edge property `{prop}`")),
            ),
            ExprKind::Prop { obj, .. } => panic!("unresolved property base `{obj}`"),
            ExprKind::Unary { op, expr } => CExpr::Un(*op, Box::new(self.expr(expr))),
            ExprKind::Binary { op, lhs, rhs } => {
                CExpr::Bin(*op, Box::new(self.expr(lhs)), Box::new(self.expr(rhs)))
            }
            ExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => CExpr::Ternary {
                cond: Box::new(self.expr(cond)),
                then_val: Box::new(self.expr(then_val)),
                else_val: Box::new(self.expr(else_val)),
                coerce: e.ty.clone().filter(Ty::is_value),
            },
            ExprKind::Call { obj, method, .. } => match method.as_str() {
                "NumNodes" => CExpr::NumNodes,
                "NumEdges" => CExpr::NumEdges,
                "Degree" | "OutDegree" | "NumNbrs" if obj == SELF => CExpr::OutDegree,
                "InDegree" if obj == SELF => CExpr::InDegree,
                other => panic!("vertex built-in `{obj}.{other}()` not supported"),
            },
            ExprKind::Agg(_) => panic!("aggregate reached precompilation"),
        }
    }

    fn instr(&mut self, program: &PregelProgram, i: &VInstr) -> CInstr {
        match i {
            VInstr::Local {
                name,
                op,
                value,
                ty,
            } => {
                let value = self.expr(value);
                CInstr::Local {
                    slot: self.local(name),
                    op: *op,
                    value,
                    ty: ty.clone(),
                }
            }
            VInstr::WriteOwn { prop, op, value } => {
                let slot = self.prop_idx[prop];
                CInstr::WriteOwn {
                    prop: slot,
                    op: *op,
                    value: self.expr(value),
                    ty: prop_ty(program, prop),
                }
            }
            VInstr::ReduceGlobal { name, op, value } => CInstr::ReduceGlobal {
                name: name.clone(),
                op: *op,
                value: self.expr(value),
            },
            VInstr::SendToNbrs { tag, payload } => {
                let payload: Vec<CExpr> = payload.iter().map(|p| self.expr(p)).collect();
                let edge_dependent = payload.iter().any(reads_edge);
                CInstr::SendToNbrs {
                    tag: *tag,
                    payload,
                    edge_dependent,
                }
            }
            VInstr::SendToInNbrs { tag, payload } => CInstr::SendToInNbrs {
                tag: *tag,
                payload: payload.iter().map(|p| self.expr(p)).collect(),
            },
            VInstr::SendTo { dst, tag, payload } => CInstr::SendTo {
                dst: self.expr(dst),
                tag: *tag,
                payload: payload.iter().map(|p| self.expr(p)).collect(),
            },
            VInstr::SendIdToNbrs => CInstr::SendIdToNbrs,
            VInstr::If {
                cond,
                then_branch,
                else_branch,
            } => CInstr::If {
                cond: self.expr(cond),
                then_branch: then_branch.iter().map(|x| self.instr(program, x)).collect(),
                else_branch: else_branch.iter().map(|x| self.instr(program, x)).collect(),
            },
        }
    }
}

fn prop_ty(program: &PregelProgram, prop: &str) -> Ty {
    program
        .node_props
        .iter()
        .find(|(n, _)| n == prop)
        .map(|(_, t)| t.clone())
        .unwrap_or_else(|| panic!("unknown property `{prop}`"))
}

fn reads_edge(e: &CExpr) -> bool {
    match e {
        CExpr::EdgeProp(_) => true,
        CExpr::Un(_, inner) => reads_edge(inner),
        CExpr::Bin(_, a, b) => reads_edge(a) || reads_edge(b),
        CExpr::Ternary {
            cond,
            then_val,
            else_val,
            ..
        } => reads_edge(cond) || reads_edge(then_val) || reads_edge(else_val),
        _ => false,
    }
}

fn reads_prop(e: &CExpr) -> bool {
    match e {
        CExpr::Prop(_) => true,
        CExpr::Un(_, inner) => reads_prop(inner),
        CExpr::Bin(_, a, b) => reads_prop(a) || reads_prop(b),
        CExpr::Ternary {
            cond,
            then_val,
            else_val,
            ..
        } => reads_prop(cond) || reads_prop(then_val) || reads_prop(else_val),
        _ => false,
    }
}

fn compile_kernel(
    program: &PregelProgram,
    k: &VertexKernel,
    prop_idx: &HashMap<String, usize>,
    edge_idx: &HashMap<String, usize>,
) -> CKernel {
    let mut cx = Cx {
        prop_idx,
        edge_idx,
        global_slot: HashMap::new(),
        reads_globals: Vec::new(),
        locals: HashMap::new(),
        payload: HashMap::new(),
    };

    let mut recv_by_tag: Vec<Option<CRecv>> = vec![None; program.messages.len()];
    let mut stores_in_nbrs = false;
    let mut snapshot_needed = false;
    for r in &k.recvs {
        if r.tag == IN_NBRS_TAG {
            stores_in_nbrs = true;
            continue;
        }
        cx.payload = program.messages[r.tag as usize]
            .fields
            .iter()
            .enumerate()
            .map(|(i, (n, _))| (n.clone(), i))
            .collect();
        let guard = r.guard.as_ref().map(|g| cx.expr(g));
        let steps: Vec<CStep> = r
            .steps
            .iter()
            .map(|s| CStep {
                guard: s.guard.as_ref().map(|g| cx.expr(g)),
                action: match &s.action {
                    RecvAction::WriteOwn { prop, op, value } => CAction::WriteOwn {
                        prop: prop_idx[prop],
                        op: *op,
                        value: cx.expr(value),
                        ty: prop_ty(program, prop),
                    },
                    RecvAction::ReduceGlobal { name, op, value } => CAction::ReduceGlobal {
                        name: name.clone(),
                        op: *op,
                        value: cx.expr(value),
                    },
                    RecvAction::StoreInNbr => CAction::StoreInNbr,
                },
            })
            .collect();
        snapshot_needed |= guard.as_ref().is_some_and(reads_prop)
            || steps.iter().any(|s| {
                s.guard.as_ref().is_some_and(reads_prop)
                    || match &s.action {
                        CAction::WriteOwn { value, .. } | CAction::ReduceGlobal { value, .. } => {
                            reads_prop(value)
                        }
                        CAction::StoreInNbr => false,
                    }
            });
        recv_by_tag[r.tag as usize] = Some(CRecv { guard, steps });
        cx.payload.clear();
    }

    let filter = k.filter.as_ref().map(|f| cx.expr(f));
    let body: Vec<CInstr> = k.body.iter().map(|i| cx.instr(program, i)).collect();

    let mut sites = Vec::new();
    collect_nbr_sends(&body, &mut sites);
    let send_site = (sites.len() == 1).then(|| sites.remove(0));

    CKernel {
        recv_by_tag,
        stores_in_nbrs,
        filter,
        body,
        num_locals: cx.locals.len(),
        reads_globals: cx.reads_globals,
        snapshot_needed,
        send_site,
    }
}

fn collect_nbr_sends(body: &[CInstr], out: &mut Vec<CSendSite>) {
    for i in body {
        match i {
            CInstr::SendToNbrs { tag, payload, .. } => out.push(CSendSite {
                tag: *tag,
                payload: payload.clone(),
            }),
            CInstr::SendIdToNbrs => out.push(CSendSite {
                tag: IN_NBRS_TAG,
                payload: vec![CExpr::SelfId],
            }),
            CInstr::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_nbr_sends(then_branch, out);
                collect_nbr_sends(else_branch, out);
            }
            _ => {}
        }
    }
}
