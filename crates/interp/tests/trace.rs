//! The execution trace: one entry per vertex superstep, aligned with the
//! metrics, recording which machine state ran.

use gm_core::seqinterp::ArgValue;
use gm_core::value::Value;
use gm_core::{compile, CompileOptions};
use gm_graph::gen;
use gm_interp::run_compiled;
use gm_pregel::PregelConfig;
use std::collections::HashMap;

#[test]
fn trace_follows_the_state_machine() {
    let src = "Procedure waves(G: Graph, x: N_P<Int>, x2: N_P<Int>) {
        Int k = 0;
        While (k < 3) {
            Foreach (n: G.Nodes) {
                Foreach (t: n.Nbrs) {
                    t.x2 += n.x;
                }
            }
            Foreach (n: G.Nodes) {
                n.x = n.x2;
                n.x2 = 0;
            }
            k += 1;
        }
    }";
    let compiled = compile(src, &CompileOptions::default()).unwrap();
    let g = gen::cycle(6);
    let args = HashMap::from([(
        "x".to_owned(),
        ArgValue::NodeProp((0..6).map(Value::Int).collect()),
    )]);
    let out = run_compiled(&g, &compiled, &args, 0, &PregelConfig::sequential()).unwrap();

    // One trace entry per vertex superstep (the final halt superstep has
    // no vertex phase and no entry).
    assert_eq!(out.trace.len() as u32 + 1, out.metrics.supersteps);
    // The intra-loop-merged steady state repeats one self-looping state.
    let steady = out.trace.last().unwrap().state;
    let repeats = out.trace.iter().filter(|t| t.state == steady).count();
    assert!(repeats >= 2, "steady state should repeat: {:?}", out.trace);
    // Every entry's counters match the runtime's per-superstep metrics.
    for (t, m) in out.trace.iter().zip(&out.metrics.per_superstep) {
        assert_eq!(t.active_vertices, m.active_vertices);
        assert_eq!(t.messages_sent, m.messages_sent);
        assert_eq!(t.message_bytes, m.message_bytes);
    }
    // All vertices were active every superstep (no voteToHalt, as in the
    // paper's generated code).
    assert!(out.trace.iter().all(|t| t.active_vertices == 6));
}

const SSSP: &str = "Procedure sssp(G: Graph, root: Node, len: E_P<Int>, dist: N_P<Int>) {
    Node_Prop<Int> dist_nxt;
    Node_Prop<Bool> updated;
    G.dist = (G == root) ? 0 : INF;
    G.updated = (G == root) ? True : False;
    G.dist_nxt = G.dist;
    Bool fin = False;
    While (!fin) {
        Foreach (n: G.Nodes)(n.updated) {
            Foreach (s: n.Nbrs) {
                Edge e = s.ToEdge();
                s.dist_nxt min= n.dist + e.len;
            }
        }
        Foreach (n: G.Nodes) {
            n.updated = n.dist_nxt < n.dist;
            n.dist = n.dist_nxt;
        }
        fin = !Exist(n: G.Nodes)(n.updated);
    }
}";

#[test]
fn trace_shows_active_vertex_tail_for_sssp() {
    // The paper's §5.2 observation: late SSSP supersteps have few updates
    // but all vertices stay active (no voteToHalt in generated code).
    let compiled = compile(SSSP, &CompileOptions::default()).unwrap();
    let g = gen::path(12);
    let args = HashMap::from([
        ("root".to_owned(), ArgValue::Scalar(Value::Node(0))),
        (
            "len".to_owned(),
            ArgValue::EdgeProp(vec![Value::Int(1); 11]),
        ),
    ]);
    let out = run_compiled(&g, &compiled, &args, 0, &PregelConfig::sequential()).unwrap();
    // Each wave moves one hop: messages per superstep drop to 1 while all
    // 12 vertices keep computing.
    let tail = &out.trace[out.trace.len() - 3..];
    for t in tail {
        assert_eq!(t.active_vertices, 12);
        assert!(t.messages_sent <= 1);
    }
}
