//! Property-based tests over the CSR construction and generators.

use gm_graph::{gen, io, GraphBuilder};
use proptest::prelude::*;

/// Strategy producing an arbitrary small edge list over `n` vertices.
fn edge_list() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (1u32..40).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n, 0..n), 0..200);
        (Just(n), edges)
    })
}

proptest! {
    #[test]
    fn csr_invariants_hold((n, edges) in edge_list()) {
        let mut b = GraphBuilder::new(n);
        for (s, d) in &edges {
            b.add_edge(*s, *d);
        }
        let g = b.build();
        prop_assert!(g.validate());
        prop_assert_eq!(g.num_edges() as usize, edges.len());
    }

    #[test]
    fn degree_sums_equal_edge_count((n, edges) in edge_list()) {
        let mut b = GraphBuilder::new(n);
        b.extend(edges.iter().copied());
        let g = b.build();
        let out_sum: u32 = g.nodes().map(|v| g.out_degree(v)).sum();
        let in_sum: u32 = g.nodes().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
    }

    #[test]
    fn edge_multiset_is_preserved((n, edges) in edge_list()) {
        let mut b = GraphBuilder::new(n);
        b.extend(edges.iter().copied());
        let g = b.build();
        let mut expected: Vec<(u32, u32)> = edges;
        expected.sort_unstable();
        let mut actual: Vec<(u32, u32)> =
            g.edges().map(|(s, d)| (s.0, d.0)).collect();
        actual.sort_unstable();
        prop_assert_eq!(expected, actual);
    }

    #[test]
    fn in_neighbors_mirror_out_neighbors((n, edges) in edge_list()) {
        let mut b = GraphBuilder::new(n);
        b.extend(edges.iter().copied());
        let g = b.build();
        let mut fwd: Vec<(u32, u32, u32)> = Vec::new();
        for v in g.nodes() {
            for (t, e) in g.out_neighbors(v) {
                fwd.push((v.0, t.0, e.0));
            }
        }
        let mut rev: Vec<(u32, u32, u32)> = Vec::new();
        for v in g.nodes() {
            for (s, e) in g.in_neighbors(v) {
                rev.push((s.0, v.0, e.0));
            }
        }
        fwd.sort_unstable();
        rev.sort_unstable();
        prop_assert_eq!(fwd, rev);
    }

    #[test]
    fn edge_list_roundtrip((n, edges) in edge_list()) {
        prop_assume!(!edges.is_empty());
        let mut b = GraphBuilder::new(n);
        b.extend(edges.iter().copied());
        let g = b.build();
        let mut buf = Vec::new();
        io::write_edge_list(&g, None, &mut buf).unwrap();
        let loaded = io::read_edge_list(&buf[..]).unwrap();
        let e1: Vec<_> = g.edges().map(|(s, d)| (s.0, d.0)).collect();
        let e2: Vec<_> = loaded.graph.edges().map(|(s, d)| (s.0, d.0)).collect();
        prop_assert_eq!(e1, e2);
    }

    #[test]
    fn generators_validate(seed in 0u64..1000) {
        prop_assert!(gen::uniform_random(64, 256, seed).validate());
        prop_assert!(gen::rmat(64, 256, seed).validate());
        prop_assert!(gen::bipartite(16, 16, 64, seed).validate());
        prop_assert!(gen::gnp(16, 0.3, seed).validate());
    }
}
