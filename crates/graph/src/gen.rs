//! Deterministic, seeded graph generators.
//!
//! These stand in for the paper's input data sets (Table 1):
//!
//! | Paper graph | Shape | Substitute |
//! |---|---|---|
//! | Twitter (42M nodes / 1.5B edges) | heavy-tailed follower network | [`rmat`] |
//! | Bipartite (75M / 1.5B, synthetic uniform random) | uniform random bipartite | [`bipartite`] |
//! | sk-2005 (51M / 1.9B web graph) | web graph with copying structure | [`web_copying`] |
//!
//! All generators take an explicit seed and are deterministic across runs and
//! platforms (they use `rand`'s `StdRng`, a portable PRNG seeded explicitly).

use crate::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random directed multigraph with exactly `num_edges` edges
/// (Erdős–Rényi G(n, m) style, endpoints drawn uniformly).
///
/// # Panics
///
/// Panics if `num_nodes == 0` and `num_edges > 0`.
pub fn uniform_random(num_nodes: u32, num_edges: usize, seed: u64) -> Graph {
    assert!(
        num_nodes > 0 || num_edges == 0,
        "cannot place edges in an empty graph"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(num_nodes, num_edges);
    for _ in 0..num_edges {
        let s = rng.gen_range(0..num_nodes);
        let d = rng.gen_range(0..num_nodes);
        b.add_edge(s, d);
    }
    b.build()
}

/// Recursive-matrix (R-MAT) power-law generator, the standard stand-in for
/// social-network-shaped graphs such as the Twitter follower network.
///
/// `num_nodes` is rounded *up* to the next power of two internally for the
/// recursive split, but emitted endpoints are folded back into range with a
/// rejection loop, so the returned graph has exactly `num_nodes` vertices and
/// `num_edges` edges.
///
/// The default parameters `(a, b, c) = (0.57, 0.19, 0.19)` follow the
/// Graph500 convention.
pub fn rmat(num_nodes: u32, num_edges: usize, seed: u64) -> Graph {
    rmat_with_params(num_nodes, num_edges, 0.57, 0.19, 0.19, seed)
}

/// R-MAT with explicit quadrant probabilities (`d = 1 - a - b - c`).
///
/// # Panics
///
/// Panics if the probabilities are not a sub-distribution
/// (`a + b + c > 1` or any negative) or if `num_nodes == 0` with edges
/// requested.
pub fn rmat_with_params(
    num_nodes: u32,
    num_edges: usize,
    a: f64,
    b: f64,
    c: f64,
    seed: u64,
) -> Graph {
    assert!(
        a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0,
        "invalid R-MAT parameters"
    );
    assert!(
        num_nodes > 0 || num_edges == 0,
        "cannot place edges in an empty graph"
    );
    let scale = 32 - (num_nodes.max(1) - 1).leading_zeros(); // ceil(log2 n)
    let side = 1u64 << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(num_nodes, num_edges);
    for _ in 0..num_edges {
        // Rejection-sample until both endpoints land inside 0..num_nodes.
        loop {
            let (mut lo_s, mut lo_d) = (0u64, 0u64);
            let mut span = side;
            while span > 1 {
                span /= 2;
                let r: f64 = rng.gen();
                // Add a little per-level noise to avoid exact self-similarity
                // artifacts, as customary in R-MAT implementations.
                let (pa, pb, pc) = (a, b, c);
                if r < pa {
                    // top-left: nothing to add
                } else if r < pa + pb {
                    lo_d += span;
                } else if r < pa + pb + pc {
                    lo_s += span;
                } else {
                    lo_s += span;
                    lo_d += span;
                }
            }
            if lo_s < num_nodes as u64 && lo_d < num_nodes as u64 {
                builder.add_edge(lo_s as u32, lo_d as u32);
                break;
            }
        }
    }
    builder.build()
}

/// Uniform random bipartite digraph: vertices `0..num_left` are the "boys"
/// side, `num_left..num_left + num_right` the "girls" side, and every edge
/// goes left → right — exactly the input contract of the paper's Random
/// Bipartite Matching benchmark.
pub fn bipartite(num_left: u32, num_right: u32, num_edges: usize, seed: u64) -> Graph {
    assert!(
        (num_left > 0 && num_right > 0) || num_edges == 0,
        "cannot place edges in an empty side"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n = num_left + num_right;
    let mut b = GraphBuilder::with_capacity(n, num_edges);
    for _ in 0..num_edges {
        let s = rng.gen_range(0..num_left);
        let d = num_left + rng.gen_range(0..num_right);
        b.add_edge(s, d);
    }
    b.build()
}

/// Copying-model web-graph generator (Kumar et al.): each new page links to
/// `out_deg` targets; with probability `alpha` a target is copied from a
/// random earlier page's links, otherwise it is a uniform random earlier
/// page. Produces the locally-dense, hub-heavy structure characteristic of
/// web crawls like sk-2005.
///
/// # Panics
///
/// Panics if `alpha` is outside `[0, 1]` or `num_nodes < 2`.
pub fn web_copying(num_nodes: u32, out_deg: u32, alpha: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be within [0, 1]");
    assert!(num_nodes >= 2, "copying model needs at least two pages");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(num_nodes, num_nodes as usize * out_deg as usize);
    // Flat copy of all edges added so far, for O(1) "copy a random link".
    let mut all_targets: Vec<u32> = Vec::new();
    // Seed pages 0 and 1 with a 2-cycle so copying has something to copy.
    b.add_edge(0, 1);
    b.add_edge(1, 0);
    all_targets.push(1);
    all_targets.push(0);
    for v in 2..num_nodes {
        for _ in 0..out_deg {
            let target = if rng.gen_bool(alpha) && !all_targets.is_empty() {
                all_targets[rng.gen_range(0..all_targets.len())]
            } else {
                rng.gen_range(0..v)
            };
            b.add_edge(v, target);
            all_targets.push(target);
        }
    }
    b.build()
}

/// Directed path `0 → 1 → ... → n-1`.
pub fn path(num_nodes: u32) -> Graph {
    let mut b = GraphBuilder::new(num_nodes);
    for i in 1..num_nodes {
        b.add_edge(i - 1, i);
    }
    b.build()
}

/// Directed cycle `0 → 1 → ... → n-1 → 0`.
pub fn cycle(num_nodes: u32) -> Graph {
    let mut b = GraphBuilder::new(num_nodes);
    if num_nodes > 0 {
        for i in 0..num_nodes {
            b.add_edge(i, (i + 1) % num_nodes);
        }
    }
    b.build()
}

/// Star with edges from the hub (vertex 0) to every spoke.
pub fn star(num_spokes: u32) -> Graph {
    let mut b = GraphBuilder::new(num_spokes + 1);
    for i in 1..=num_spokes {
        b.add_edge(0, i);
    }
    b.build()
}

/// Complete directed graph (no self-loops).
pub fn complete(num_nodes: u32) -> Graph {
    let mut b = GraphBuilder::new(num_nodes);
    for i in 0..num_nodes {
        for j in 0..num_nodes {
            if i != j {
                b.add_edge(i, j);
            }
        }
    }
    b.build()
}

/// `rows × cols` grid with bidirectional edges between 4-neighbors — a
/// road-network-like topology used by the SSSP example.
pub fn grid(rows: u32, cols: u32) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    let id = |r: u32, c: u32| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
                b.add_edge(id(r, c + 1), id(r, c));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
                b.add_edge(id(r + 1, c), id(r, c));
            }
        }
    }
    b.build()
}

/// Random directed graph where each possible edge exists with probability
/// `p` — the classic G(n, p) model, handy for property tests on small n.
pub fn gnp(num_nodes: u32, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be within [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(num_nodes);
    for s in 0..num_nodes {
        for d in 0..num_nodes {
            if s != d && rng.gen_bool(p) {
                b.add_edge(s, d);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn uniform_random_is_deterministic() {
        let g1 = uniform_random(100, 500, 42);
        let g2 = uniform_random(100, 500, 42);
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
        assert_eq!(g1.num_edges(), 500);
        assert!(g1.validate());
    }

    #[test]
    fn uniform_random_seed_changes_output() {
        let g1 = uniform_random(100, 500, 1);
        let g2 = uniform_random(100, 500, 2);
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_ne!(e1, e2);
    }

    #[test]
    fn rmat_counts_and_skew() {
        let g = rmat(1 << 10, 8 * (1 << 10), 7);
        assert_eq!(g.num_nodes(), 1 << 10);
        assert_eq!(g.num_edges(), 8 * (1 << 10));
        assert!(g.validate());
        // Power-law-ish: the max out-degree should be far above the mean (8).
        let max_deg = g.nodes().map(|n| g.out_degree(n)).max().unwrap();
        assert!(max_deg > 40, "R-MAT should be skewed, max degree {max_deg}");
    }

    #[test]
    fn rmat_non_power_of_two_nodes() {
        let g = rmat(1000, 5000, 3);
        assert_eq!(g.num_nodes(), 1000);
        assert_eq!(g.num_edges(), 5000);
        assert!(g.validate());
    }

    #[test]
    #[should_panic(expected = "invalid R-MAT parameters")]
    fn rmat_rejects_bad_params() {
        rmat_with_params(8, 8, 0.9, 0.9, 0.9, 0);
    }

    #[test]
    fn bipartite_edges_go_left_to_right() {
        let g = bipartite(50, 70, 400, 9);
        assert_eq!(g.num_nodes(), 120);
        assert_eq!(g.num_edges(), 400);
        for (s, d) in g.edges() {
            assert!(s.0 < 50);
            assert!(d.0 >= 50 && d.0 < 120);
        }
    }

    #[test]
    fn web_copying_shape() {
        let g = web_copying(500, 8, 0.5, 11);
        assert_eq!(g.num_nodes(), 500);
        assert_eq!(g.num_edges(), 2 + 498 * 8);
        assert!(g.validate());
        // Copying concentrates in-links: some page should be far above mean.
        let max_in = g.nodes().map(|n| g.in_degree(n)).max().unwrap();
        assert!(
            max_in > 30,
            "copying model should produce hubs, max in-degree {max_in}"
        );
    }

    #[test]
    fn path_cycle_star_complete_grid() {
        let p = path(5);
        assert_eq!(p.num_edges(), 4);
        assert_eq!(p.out_degree(NodeId(4)), 0);

        let c = cycle(5);
        assert_eq!(c.num_edges(), 5);
        assert!(c
            .nodes()
            .all(|n| c.out_degree(n) == 1 && c.in_degree(n) == 1));

        let s = star(4);
        assert_eq!(s.out_degree(NodeId(0)), 4);
        assert_eq!(s.in_degree(NodeId(0)), 0);

        let k = complete(4);
        assert_eq!(k.num_edges(), 12);

        let g = grid(3, 4);
        assert_eq!(g.num_nodes(), 12);
        // 2 * (#horizontal + #vertical) = 2 * (3*3 + 2*4) = 34
        assert_eq!(g.num_edges(), 34);
        assert!(g.validate());
    }

    #[test]
    fn cycle_of_zero_and_one() {
        assert_eq!(cycle(0).num_edges(), 0);
        let c1 = cycle(1);
        assert_eq!(c1.num_edges(), 1); // self-loop
        assert!(c1.validate());
    }

    #[test]
    fn gnp_extremes() {
        let empty = gnp(10, 0.0, 5);
        assert_eq!(empty.num_edges(), 0);
        let full = gnp(10, 1.0, 5);
        assert_eq!(full.num_edges(), 90);
    }
}
