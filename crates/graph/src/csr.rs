//! Compressed-sparse-row directed graph with forward and reverse adjacency.

use crate::{EdgeId, NodeId};

/// An immutable directed graph in CSR form.
///
/// Both out-edges and in-edges are materialized. Every directed edge has a
/// stable [`EdgeId`] assigned in forward-CSR order; the reverse adjacency
/// carries the same ids so edge properties (e.g. SSSP's `len`) can be read
/// from either endpoint.
///
/// Parallel edges and self-loops are preserved exactly as inserted — the
/// Pregel model happily sends one message per edge, so deduplicating here
/// would distort message counts.
#[derive(Clone, Debug)]
pub struct Graph {
    num_nodes: u32,
    out_offsets: Vec<u32>,
    out_targets: Vec<u32>,
    in_offsets: Vec<u32>,
    in_sources: Vec<u32>,
    /// For each reverse-adjacency slot, the forward [`EdgeId`] it mirrors.
    in_edge_ids: Vec<u32>,
    /// For each forward [`EdgeId`], its source vertex. Trades one `u32` per
    /// edge for O(1) [`Graph::edge_source`] — the pull-mode gather loop
    /// resolves a source per in-edge, where a binary search per lookup
    /// would dominate the hot path.
    edge_src: Vec<u32>,
}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> u32 {
        self.out_targets.len() as u32
    }

    /// Iterator over all vertex ids, `0..num_nodes()`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes).map(NodeId)
    }

    /// Out-degree of `n`.
    ///
    /// This is what Green-Marl's `n.Degree()` / `n.NumNbrs()` evaluate to.
    #[inline]
    pub fn out_degree(&self, n: NodeId) -> u32 {
        self.out_offsets[n.index() + 1] - self.out_offsets[n.index()]
    }

    /// In-degree of `n` (Green-Marl's `n.InDegree()`).
    #[inline]
    pub fn in_degree(&self, n: NodeId) -> u32 {
        self.in_offsets[n.index() + 1] - self.in_offsets[n.index()]
    }

    /// Out-neighbors of `n` with the connecting edge ids, in CSR order.
    pub fn out_neighbors(&self, n: NodeId) -> OutNeighbors<'_> {
        let lo = self.out_offsets[n.index()] as usize;
        let hi = self.out_offsets[n.index() + 1] as usize;
        OutNeighbors {
            targets: &self.out_targets[lo..hi],
            base: lo as u32,
            pos: 0,
        }
    }

    /// In-neighbors of `n` with the connecting (forward) edge ids.
    pub fn in_neighbors(&self, n: NodeId) -> InNeighbors<'_> {
        let lo = self.in_offsets[n.index()] as usize;
        let hi = self.in_offsets[n.index() + 1] as usize;
        InNeighbors {
            sources: &self.in_sources[lo..hi],
            edge_ids: &self.in_edge_ids[lo..hi],
            pos: 0,
        }
    }

    /// The target vertex of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    pub fn edge_target(&self, e: EdgeId) -> NodeId {
        NodeId(self.out_targets[e.index()])
    }

    /// The source vertex of edge `e`, looked up in the precomputed
    /// per-edge source array (`O(1)`).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    #[inline]
    pub fn edge_source(&self, e: EdgeId) -> NodeId {
        assert!(e.0 < self.num_edges(), "edge id {e} out of bounds");
        NodeId(self.edge_src[e.index()])
    }

    /// All edges as `(source, target)` pairs in [`EdgeId`] order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |n| self.out_neighbors(n).map(move |(t, _)| (n, t)))
    }

    /// Checks internal CSR invariants; used by tests and debug assertions.
    ///
    /// Verifies offset monotonicity, reverse-adjacency consistency (every
    /// forward edge appears exactly once in the reverse structure with the
    /// same id) and degree sums.
    pub fn validate(&self) -> bool {
        let n = self.num_nodes as usize;
        let m = self.out_targets.len();
        if self.out_offsets.len() != n + 1 || self.in_offsets.len() != n + 1 {
            return false;
        }
        if self.out_offsets[0] != 0 || self.in_offsets[0] != 0 {
            return false;
        }
        if self.out_offsets[n] as usize != m || self.in_offsets[n] as usize != m {
            return false;
        }
        if !self.out_offsets.windows(2).all(|w| w[0] <= w[1]) {
            return false;
        }
        if !self.in_offsets.windows(2).all(|w| w[0] <= w[1]) {
            return false;
        }
        // The precomputed source array must agree with the CSR offsets
        // (the binary-search definition of an edge's owner).
        if self.edge_src.len() != m {
            return false;
        }
        for (e, &src) in self.edge_src.iter().enumerate() {
            let owner = self.out_offsets.partition_point(|&off| off as usize <= e) - 1;
            debug_assert_eq!(
                src as usize, owner,
                "edge_src[{e}] disagrees with CSR offsets"
            );
            if src as usize != owner {
                return false;
            }
        }
        let mut seen = vec![false; m];
        for v in self.nodes() {
            for (src, eid) in self.in_neighbors(v) {
                if eid.index() >= m || seen[eid.index()] {
                    return false;
                }
                seen[eid.index()] = true;
                if self.edge_target(eid) != v || self.edge_source(eid) != src {
                    return false;
                }
            }
        }
        seen.iter().all(|&s| s)
    }
}

/// Iterator over `(target, edge_id)` pairs of a vertex's out-edges.
#[derive(Clone, Debug)]
pub struct OutNeighbors<'a> {
    targets: &'a [u32],
    base: u32,
    pos: usize,
}

impl Iterator for OutNeighbors<'_> {
    type Item = (NodeId, EdgeId);

    fn next(&mut self) -> Option<Self::Item> {
        let t = *self.targets.get(self.pos)?;
        let e = EdgeId(self.base + self.pos as u32);
        self.pos += 1;
        Some((NodeId(t), e))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.targets.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for OutNeighbors<'_> {}

/// Iterator over `(source, edge_id)` pairs of a vertex's in-edges.
#[derive(Clone, Debug)]
pub struct InNeighbors<'a> {
    sources: &'a [u32],
    edge_ids: &'a [u32],
    pos: usize,
}

impl Iterator for InNeighbors<'_> {
    type Item = (NodeId, EdgeId);

    fn next(&mut self) -> Option<Self::Item> {
        let s = *self.sources.get(self.pos)?;
        let e = EdgeId(self.edge_ids[self.pos]);
        self.pos += 1;
        Some((NodeId(s), e))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.sources.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for InNeighbors<'_> {}

/// Incremental edge-list accumulator that produces a [`Graph`].
///
/// # Example
///
/// ```
/// use gm_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(2);
/// b.add_edge(0, 1);
/// let g = b.build();
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_nodes: u32,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` vertices.
    pub fn new(num_nodes: u32) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with capacity for `num_edges` edges.
    pub fn with_capacity(num_nodes: u32, num_edges: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::with_capacity(num_edges),
        }
    }

    /// Adds the directed edge `src → dst`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, src: u32, dst: u32) {
        assert!(
            src < self.num_nodes && dst < self.num_nodes,
            "edge ({src}, {dst}) out of range for {} nodes",
            self.num_nodes
        );
        self.edges.push((src, dst));
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of vertices this builder was created with.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Finalizes the CSR structures.
    ///
    /// Edge ids are assigned by `(src, insertion-order)`: all edges of vertex
    /// 0 (in insertion order) first, then vertex 1, and so on — a stable,
    /// deterministic numbering.
    pub fn build(self) -> Graph {
        let n = self.num_nodes as usize;
        let m = self.edges.len();

        // Forward CSR via counting sort on src (stable).
        let mut out_offsets = vec![0u32; n + 1];
        for &(src, _) in &self.edges {
            out_offsets[src as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut cursor = out_offsets.clone();
        let mut out_targets = vec![0u32; m];
        for &(src, dst) in &self.edges {
            let slot = cursor[src as usize];
            out_targets[slot as usize] = dst;
            cursor[src as usize] += 1;
        }

        // Reverse CSR via counting sort on dst, walking forward edge ids in
        // order so reverse lists are sorted by edge id (deterministic).
        let mut in_offsets = vec![0u32; n + 1];
        for &t in &out_targets {
            in_offsets[t as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![0u32; m];
        let mut in_edge_ids = vec![0u32; m];
        let mut edge_src = vec![0u32; m];
        for src in 0..n {
            let lo = out_offsets[src] as usize;
            let hi = out_offsets[src + 1] as usize;
            for (off, &dst) in out_targets[lo..hi].iter().enumerate() {
                let dst = dst as usize;
                let slot = cursor[dst] as usize;
                in_sources[slot] = src as u32;
                in_edge_ids[slot] = (lo + off) as u32;
                edge_src[lo + off] = src as u32;
                cursor[dst] += 1;
            }
        }

        Graph {
            num_nodes: self.num_nodes,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
            in_edge_ids,
            edge_src,
        }
    }
}

impl Extend<(u32, u32)> for GraphBuilder {
    fn extend<T: IntoIterator<Item = (u32, u32)>>(&mut self, iter: T) {
        for (s, d) in iter {
            self.add_edge(s, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(g.out_degree(NodeId(3)), 0);
        assert_eq!(g.in_degree(NodeId(0)), 0);
    }

    #[test]
    fn out_neighbors_in_order() {
        let g = diamond();
        let nbrs: Vec<_> = g.out_neighbors(NodeId(0)).collect();
        assert_eq!(nbrs, vec![(NodeId(1), EdgeId(0)), (NodeId(2), EdgeId(1))]);
    }

    #[test]
    fn in_neighbors_carry_forward_edge_ids() {
        let g = diamond();
        let nbrs: Vec<_> = g.in_neighbors(NodeId(3)).collect();
        assert_eq!(nbrs, vec![(NodeId(1), EdgeId(2)), (NodeId(2), EdgeId(3))]);
    }

    #[test]
    fn edge_source_target_roundtrip() {
        let g = diamond();
        for n in g.nodes() {
            for (t, e) in g.out_neighbors(n) {
                assert_eq!(g.edge_source(e), n);
                assert_eq!(g.edge_target(e), t);
            }
        }
    }

    #[test]
    fn self_loops_and_parallel_edges_preserved() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(NodeId(0)), 3);
        assert_eq!(g.in_degree(NodeId(1)), 2);
        assert_eq!(g.in_degree(NodeId(0)), 1);
        assert!(g.validate());
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.validate());
    }

    #[test]
    fn isolated_vertices() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.num_nodes(), 5);
        for n in g.nodes() {
            assert_eq!(g.out_degree(n), 0);
            assert_eq!(g.in_degree(n), 0);
        }
        assert!(g.validate());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 1);
    }

    #[test]
    fn validate_detects_consistency() {
        assert!(diamond().validate());
    }

    #[test]
    fn edge_source_array_matches_offset_search() {
        let mut b = GraphBuilder::new(5);
        b.extend([(0, 0), (0, 3), (1, 3), (3, 2), (3, 2), (4, 0)]);
        let g = b.build();
        assert!(g.validate());
        for e in 0..g.num_edges() {
            let by_search = g.out_offsets.partition_point(|&off| off <= e) - 1;
            assert_eq!(g.edge_source(EdgeId(e)), NodeId(by_search as u32));
        }
    }

    #[test]
    fn edges_iterator_matches_adjacency() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(1), NodeId(3)),
                (NodeId(2), NodeId(3)),
            ]
        );
    }

    #[test]
    fn extend_builder() {
        let mut b = GraphBuilder::new(3);
        b.extend([(0, 1), (1, 2)]);
        assert_eq!(b.num_edges(), 2);
        let g = b.build();
        assert!(g.validate());
    }
}
