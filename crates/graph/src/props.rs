//! Dense property vectors aligned with node and edge ids.
//!
//! These are the shared-memory analogue of Green-Marl's `Node_Prop<T>` and
//! `Edge_Prop<T>`: a value of type `T` for every vertex (edge), indexable by
//! [`NodeId`] ([`EdgeId`]) without casting.

use crate::{EdgeId, Graph, NodeId};
use std::ops::{Index, IndexMut};

/// A `T` per vertex, indexed by [`NodeId`].
///
/// # Example
///
/// ```
/// use gm_graph::{gen, NodeProp, NodeId};
///
/// let g = gen::path(4);
/// let mut dist = NodeProp::new(&g, i64::MAX);
/// dist[NodeId(0)] = 0;
/// assert_eq!(dist[NodeId(0)], 0);
/// assert_eq!(dist[NodeId(3)], i64::MAX);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct NodeProp<T> {
    values: Vec<T>,
}

impl<T: Clone> NodeProp<T> {
    /// Creates a property initialized to `init` for every vertex of `g`.
    pub fn new(g: &Graph, init: T) -> Self {
        NodeProp {
            values: vec![init; g.num_nodes() as usize],
        }
    }

    /// Resets every vertex back to `value` (Green-Marl's `G.prop = value`).
    pub fn fill(&mut self, value: T) {
        for v in &mut self.values {
            *v = value.clone();
        }
    }
}

impl<T> NodeProp<T> {
    /// Wraps an existing vector; `values[i]` belongs to vertex `i`.
    pub fn from_vec(values: Vec<T>) -> Self {
        NodeProp { values }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the graph had zero vertices.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Immutable view of the underlying storage, in vertex-id order.
    pub fn as_slice(&self) -> &[T] {
        &self.values
    }

    /// Consumes the property, yielding the underlying vector.
    pub fn into_inner(self) -> Vec<T> {
        self.values
    }

    /// Iterates `(NodeId, &T)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (NodeId(i as u32), v))
    }
}

impl<T> Index<NodeId> for NodeProp<T> {
    type Output = T;

    fn index(&self, n: NodeId) -> &T {
        &self.values[n.index()]
    }
}

impl<T> IndexMut<NodeId> for NodeProp<T> {
    fn index_mut(&mut self, n: NodeId) -> &mut T {
        &mut self.values[n.index()]
    }
}

/// A `T` per edge, indexed by [`EdgeId`].
///
/// # Example
///
/// ```
/// use gm_graph::{gen, EdgeProp, EdgeId};
///
/// let g = gen::path(3);
/// let len = EdgeProp::new(&g, 1i64);
/// assert_eq!(len[EdgeId(0)], 1);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeProp<T> {
    values: Vec<T>,
}

impl<T: Clone> EdgeProp<T> {
    /// Creates a property initialized to `init` for every edge of `g`.
    pub fn new(g: &Graph, init: T) -> Self {
        EdgeProp {
            values: vec![init; g.num_edges() as usize],
        }
    }

    /// Resets every edge back to `value`.
    pub fn fill(&mut self, value: T) {
        for v in &mut self.values {
            *v = value.clone();
        }
    }
}

impl<T> EdgeProp<T> {
    /// Wraps an existing vector; `values[i]` belongs to edge `i`.
    pub fn from_vec(values: Vec<T>) -> Self {
        EdgeProp { values }
    }

    /// Number of edges covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the graph had zero edges.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Immutable view of the underlying storage, in edge-id order.
    pub fn as_slice(&self) -> &[T] {
        &self.values
    }

    /// Consumes the property, yielding the underlying vector.
    pub fn into_inner(self) -> Vec<T> {
        self.values
    }
}

impl<T> Index<EdgeId> for EdgeProp<T> {
    type Output = T;

    fn index(&self, e: EdgeId) -> &T {
        &self.values[e.index()]
    }
}

impl<T> IndexMut<EdgeId> for EdgeProp<T> {
    fn index_mut(&mut self, e: EdgeId) -> &mut T {
        &mut self.values[e.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn node_prop_basics() {
        let g = gen::path(4);
        let mut p = NodeProp::new(&g, 0i64);
        p[NodeId(2)] = 9;
        assert_eq!(p[NodeId(2)], 9);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        p.fill(5);
        assert!(p.as_slice().iter().all(|&v| v == 5));
    }

    #[test]
    fn node_prop_iter_order() {
        let g = gen::path(3);
        let p = NodeProp::from_vec(vec![10, 20, 30]);
        let _ = &g;
        let collected: Vec<_> = p.iter().map(|(n, &v)| (n.0, v)).collect();
        assert_eq!(collected, vec![(0, 10), (1, 20), (2, 30)]);
    }

    #[test]
    fn edge_prop_basics() {
        let g = gen::cycle(5);
        let mut w = EdgeProp::new(&g, 1.0f64);
        w[EdgeId(3)] = 2.5;
        assert_eq!(w[EdgeId(3)], 2.5);
        assert_eq!(w.len(), 5);
        assert_eq!(w.clone().into_inner().len(), 5);
    }

    #[test]
    fn empty_props() {
        let g = gen::path(0);
        let p = NodeProp::new(&g, 0u8);
        assert!(p.is_empty());
        let e = EdgeProp::new(&g, 0u8);
        assert!(e.is_empty());
    }
}
