//! Plain-text edge-list reading and writing.
//!
//! The format is one `src dst` pair per line (whitespace separated), with
//! optional `#`-prefixed comment lines — the same convention as SNAP data
//! sets. A `#` after the columns starts an inline comment that runs to the
//! end of the line. An optional third column carries an integer edge
//! weight, returned as an aligned weight vector.
//!
//! Malformed lines (non-numeric ids, a missing endpoint, ids overflowing
//! `u32`, extra columns) are reported with their 1-based line number and a
//! reason. Under the default [`LoadPolicy::Strict`] the first such line
//! aborts the load; [`LoadPolicy::SkipAndCount`] skips them, counting the
//! damage in [`LoadStats`] so callers can decide whether a partially-dirty
//! file is acceptable.
//!
//! Line endings are handled exactly: `\n` and `\r\n` terminate lines, a
//! final line without any terminator (or with a bare trailing `\r`) still
//! counts as a line, and a leading UTF-8 byte-order mark is stripped — so
//! Windows-saved files load identically to Unix ones and malformed-line
//! reports never drift by a line or carry a stray `\r`.

use crate::{Graph, GraphBuilder};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::num::IntErrorKind;
use std::path::Path;

/// Error produced while parsing an edge list.
#[derive(Debug)]
pub enum ParseGraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that is neither a comment nor a valid edge.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
        /// Which rule the line broke.
        reason: &'static str,
    },
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseGraphError::Io(e) => write!(f, "i/o error reading edge list: {e}"),
            ParseGraphError::Malformed { line, text, reason } => {
                write!(f, "malformed edge list line {line} ({reason}): {text:?}")
            }
        }
    }
}

impl Error for ParseGraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseGraphError::Io(e) => Some(e),
            ParseGraphError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseGraphError {
    fn from(e: std::io::Error) -> Self {
        ParseGraphError::Io(e)
    }
}

/// How the loader treats malformed lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadPolicy {
    /// The first malformed line aborts the load with
    /// [`ParseGraphError::Malformed`] (the default).
    #[default]
    Strict,
    /// Malformed lines are skipped; the count (and the first offender, for
    /// diagnostics) is reported in [`LoadStats`].
    SkipAndCount,
}

/// What one load saw, reported alongside the graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Total lines read, including blanks and comments.
    pub lines_read: u64,
    /// Edges actually loaded into the graph.
    pub edges_loaded: u64,
    /// Malformed lines skipped (always `0` under [`LoadPolicy::Strict`] —
    /// the first one aborts instead).
    pub lines_skipped: u64,
    /// The first skipped line, kept so a skipping loader can still point
    /// at concrete evidence of a dirty file.
    pub first_skipped: Option<MalformedLine>,
}

/// One offending line: position, text, and which rule it broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedLine {
    /// 1-based line number.
    pub line: usize,
    /// The offending text (comment-stripped).
    pub text: String,
    /// Which rule the line broke.
    pub reason: &'static str,
}

/// Result of [`read_edge_list`]: the graph plus per-edge weights (all `1` if
/// the input had no weight column). Weights are aligned with [`crate::EdgeId`]s.
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// The parsed graph.
    pub graph: Graph,
    /// Weight of each edge, in edge-id order.
    pub weights: Vec<i64>,
    /// Line/skip accounting for this load.
    pub stats: LoadStats,
}

/// Parses one vertex id, distinguishing "not a number" from "a number that
/// does not fit a `u32` id" (SNAP files with 64-bit ids would otherwise be
/// reported as garbage).
fn parse_id(tok: &str) -> Result<u32, &'static str> {
    match tok.parse::<u64>() {
        Ok(v) if v <= u32::MAX as u64 => Ok(v as u32),
        Ok(_) => Err("vertex id overflows u32"),
        Err(e) if *e.kind() == IntErrorKind::PosOverflow => Err("vertex id overflows u32"),
        Err(_) => Err("vertex id is not an unsigned integer"),
    }
}

/// Parses one comment-stripped, non-empty line into `(src, dst, weight)`.
fn parse_edge_line(trimmed: &str) -> Result<(u32, u32, i64), &'static str> {
    let mut it = trimmed.split_whitespace();
    let src = parse_id(it.next().ok_or("missing source vertex")?)?;
    let dst = parse_id(it.next().ok_or("missing destination vertex")?)?;
    let w: i64 = match it.next() {
        Some(tok) => tok
            .parse()
            .map_err(|_| "edge weight is not a 64-bit integer")?,
        None => 1,
    };
    if it.next().is_some() {
        return Err("too many columns");
    }
    Ok((src, dst, w))
}

/// Reads an edge list from `reader`. Vertex count is `1 + max id` seen.
/// Equivalent to [`read_edge_list_with`] under [`LoadPolicy::Strict`].
///
/// A `reader` can be passed by mutable reference as well as by value.
///
/// # Errors
///
/// Returns [`ParseGraphError::Malformed`] for lines that are not blank,
/// comments, or 2/3-column integer rows, and [`ParseGraphError::Io`] for
/// underlying read failures.
pub fn read_edge_list<R: Read>(reader: R) -> Result<LoadedGraph, ParseGraphError> {
    read_edge_list_with(reader, LoadPolicy::Strict)
}

/// Reads an edge list from `reader` under an explicit malformed-line
/// policy. See [`read_edge_list`] for the format.
///
/// # Errors
///
/// Under [`LoadPolicy::Strict`], as [`read_edge_list`]. Under
/// [`LoadPolicy::SkipAndCount`] only [`ParseGraphError::Io`] is possible;
/// malformed lines are counted in the returned [`LoadStats`].
pub fn read_edge_list_with<R: Read>(
    reader: R,
    policy: LoadPolicy,
) -> Result<LoadedGraph, ParseGraphError> {
    let mut buf = BufReader::new(reader);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut weights: Vec<i64> = Vec::new();
    let mut max_id: u32 = 0;
    let mut any = false;
    let mut stats = LoadStats::default();
    let mut raw: Vec<u8> = Vec::new();
    let mut i = 0usize;
    loop {
        raw.clear();
        if buf.read_until(b'\n', &mut raw)? == 0 {
            break;
        }
        i += 1;
        stats.lines_read += 1;
        // Strip one `\n` and then one `\r`, so LF and CRLF terminators —
        // and a final line missing its terminator entirely, or ending in
        // a bare `\r` (a CRLF file truncated mid-terminator) — all yield
        // the same text at the same 1-based line number.
        if raw.last() == Some(&b'\n') {
            raw.pop();
        }
        if raw.last() == Some(&b'\r') {
            raw.pop();
        }
        let mut line = std::str::from_utf8(&raw).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("edge list line {i} is not valid UTF-8"),
            )
        })?;
        if i == 1 {
            // Editors on Windows commonly prepend a UTF-8 byte-order
            // mark; it is not part of the first edge.
            line = line.strip_prefix('\u{feff}').unwrap_or(line);
        }
        let mut trimmed = line.trim();
        // Strip inline trailing comments (`0 1  # hub edge`) before
        // splitting into columns; a full-line comment becomes empty.
        if let Some(hash) = trimmed.find('#') {
            trimmed = trimmed[..hash].trim_end();
        }
        if trimmed.is_empty() {
            continue;
        }
        let (src, dst, w) = match parse_edge_line(trimmed) {
            Ok(edge) => edge,
            Err(reason) => match policy {
                LoadPolicy::Strict => {
                    return Err(ParseGraphError::Malformed {
                        line: i,
                        text: trimmed.to_owned(),
                        reason,
                    })
                }
                LoadPolicy::SkipAndCount => {
                    stats.lines_skipped += 1;
                    if stats.first_skipped.is_none() {
                        stats.first_skipped = Some(MalformedLine {
                            line: i,
                            text: trimmed.to_owned(),
                            reason,
                        });
                    }
                    continue;
                }
            },
        };
        any = true;
        max_id = max_id.max(src).max(dst);
        edges.push((src, dst));
        weights.push(w);
    }
    stats.edges_loaded = edges.len() as u64;
    let n = if any { max_id + 1 } else { 0 };
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    // Weights must follow edges through the CSR permutation: build the graph,
    // then map weights by matching insertion order per source (stable sort).
    for &(s, d) in &edges {
        b.add_edge(s, d);
    }
    let graph = b.build();
    // Reconstruct edge-id order: counting sort mirrors GraphBuilder::build.
    let mut offsets = vec![0u32; n as usize + 1];
    for &(s, _) in &edges {
        offsets[s as usize + 1] += 1;
    }
    for i in 0..n as usize {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor = offsets;
    let mut sorted_weights = vec![0i64; edges.len()];
    for (k, &(s, _)) in edges.iter().enumerate() {
        let slot = cursor[s as usize] as usize;
        sorted_weights[slot] = weights[k];
        cursor[s as usize] += 1;
    }
    Ok(LoadedGraph {
        graph,
        weights: sorted_weights,
        stats,
    })
}

/// Reads an edge list from a file path. See [`read_edge_list`].
///
/// # Errors
///
/// Same conditions as [`read_edge_list`], plus file-open failures.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<LoadedGraph, ParseGraphError> {
    read_edge_list_file_with(path, LoadPolicy::Strict)
}

/// Reads an edge list from a file path under an explicit malformed-line
/// policy. See [`read_edge_list_with`].
///
/// # Errors
///
/// Same conditions as [`read_edge_list_with`], plus file-open failures.
pub fn read_edge_list_file_with<P: AsRef<Path>>(
    path: P,
    policy: LoadPolicy,
) -> Result<LoadedGraph, ParseGraphError> {
    let f = std::fs::File::open(path)?;
    read_edge_list_with(f, policy)
}

/// Writes `graph` as an edge list. If `weights` is provided it must be
/// edge-id aligned and is emitted as a third column.
///
/// A `writer` can be passed by mutable reference as well as by value.
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
///
/// # Panics
///
/// Panics if `weights` is provided with the wrong length.
pub fn write_edge_list<W: Write>(
    graph: &Graph,
    weights: Option<&[i64]>,
    mut writer: W,
) -> std::io::Result<()> {
    if let Some(w) = weights {
        assert_eq!(
            w.len(),
            graph.num_edges() as usize,
            "weights must be edge-aligned"
        );
    }
    for n in graph.nodes() {
        for (t, e) in graph.out_neighbors(n) {
            match weights {
                Some(w) => writeln!(writer, "{} {} {}", n.0, t.0, w[e.index()])?,
                None => writeln!(writer, "{} {}", n.0, t.0)?,
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn parse_simple() {
        let text = "# comment\n0 1\n1 2\n\n2 0\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_nodes(), 3);
        assert_eq!(loaded.graph.num_edges(), 3);
        assert_eq!(loaded.weights, vec![1, 1, 1]);
    }

    #[test]
    fn parse_weights_follow_csr_permutation() {
        // Insert out of src order so the counting sort actually permutes.
        let text = "1 0 7\n0 2 5\n0 1 3\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        let g = &loaded.graph;
        // Edge ids: vertex 0's edges first in insertion order: (0,2,w5)=e0,
        // (0,1,w3)=e1, then (1,0,w7)=e2.
        assert_eq!(g.edge_target(crate::EdgeId(0)), NodeId(2));
        assert_eq!(loaded.weights, vec![5, 3, 7]);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 1\nnot an edge\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            ParseGraphError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn inline_trailing_comments_are_stripped() {
        let text = "0 1  # hub edge\n1 2 9\t# weighted, tab before comment\n   # only a comment\n2 0#no space\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_nodes(), 3);
        assert_eq!(loaded.graph.num_edges(), 3);
        // Edge-id order: (0,1)=e0, (1,2)=e1, (2,0)=e2.
        assert_eq!(loaded.weights, vec![1, 9, 1]);
    }

    #[test]
    fn malformed_text_before_inline_comment_still_errors() {
        let text = "0 1\n0 # missing dst\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            ParseGraphError::Malformed { line, text, reason } => {
                assert_eq!(line, 2);
                // The reported text is the stripped column part, so the
                // message points at what was actually parsed.
                assert_eq!(text, "0");
                assert_eq!(reason, "missing destination vertex");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn too_many_columns_is_malformed() {
        let text = "0 1 2 3\n";
        assert!(read_edge_list(text.as_bytes()).is_err());
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let loaded = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_nodes(), 0);
    }

    #[test]
    fn roundtrip_with_weights() {
        let text = "0 1 10\n0 2 20\n1 2 30\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        let mut out = Vec::new();
        write_edge_list(&loaded.graph, Some(&loaded.weights), &mut out).unwrap();
        let again = read_edge_list(&out[..]).unwrap();
        assert_eq!(again.weights, loaded.weights);
        let e1: Vec<_> = loaded.graph.edges().collect();
        let e2: Vec<_> = again.graph.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn display_of_errors_is_informative() {
        let err = ParseGraphError::Malformed {
            line: 3,
            text: "x".into(),
            reason: "missing destination vertex",
        };
        let msg = err.to_string();
        assert!(msg.contains("line 3"));
        assert!(msg.contains("missing destination vertex"));
    }

    #[test]
    fn malformed_reasons_are_specific() {
        let cases: [(&str, &str); 5] = [
            ("abc 1\n", "vertex id is not an unsigned integer"),
            ("0 4294967296\n", "vertex id overflows u32"),
            ("0 99999999999999999999999\n", "vertex id overflows u32"),
            ("0 1 2.5\n", "edge weight is not a 64-bit integer"),
            ("0 1 2 3\n", "too many columns"),
        ];
        for (text, want) in cases {
            let err = read_edge_list(text.as_bytes()).unwrap_err();
            match err {
                ParseGraphError::Malformed { reason, .. } => assert_eq!(reason, want, "{text:?}"),
                other => panic!("unexpected error for {text:?}: {other}"),
            }
        }
    }

    #[test]
    fn negative_id_is_not_an_unsigned_integer() {
        let err = read_edge_list("-1 2\n".as_bytes()).unwrap_err();
        match err {
            ParseGraphError::Malformed { reason, .. } => {
                assert_eq!(reason, "vertex id is not an unsigned integer");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn skip_and_count_loads_the_clean_edges() {
        let text = "# header\n0 1\nbogus line\n1 2\n0 99999999999\n2 0\n";
        let loaded = read_edge_list_with(text.as_bytes(), LoadPolicy::SkipAndCount).unwrap();
        assert_eq!(loaded.graph.num_nodes(), 3);
        assert_eq!(loaded.graph.num_edges(), 3);
        assert_eq!(loaded.stats.lines_read, 6);
        assert_eq!(loaded.stats.edges_loaded, 3);
        assert_eq!(loaded.stats.lines_skipped, 2);
        let first = loaded.stats.first_skipped.as_ref().unwrap();
        assert_eq!(first.line, 3);
        assert_eq!(first.text, "bogus line");
        assert_eq!(first.reason, "vertex id is not an unsigned integer");
    }

    #[test]
    fn strict_load_reports_zero_skips_in_stats() {
        let loaded = read_edge_list("0 1\n1 2\n".as_bytes()).unwrap();
        assert_eq!(loaded.stats.lines_read, 2);
        assert_eq!(loaded.stats.edges_loaded, 2);
        assert_eq!(loaded.stats.lines_skipped, 0);
        assert!(loaded.stats.first_skipped.is_none());
    }

    #[test]
    fn crlf_files_load_identically_to_lf() {
        let unix = read_edge_list("# c\n0 1 5\n1 2 7\n".as_bytes()).unwrap();
        let windows = read_edge_list("# c\r\n0 1 5\r\n1 2 7\r\n".as_bytes()).unwrap();
        assert_eq!(unix.graph.num_nodes(), windows.graph.num_nodes());
        assert_eq!(unix.graph.num_edges(), windows.graph.num_edges());
        assert_eq!(unix.weights, windows.weights);
        assert_eq!(unix.stats.lines_read, windows.stats.lines_read);
    }

    #[test]
    fn missing_trailing_newline_still_loads_the_final_edge() {
        for text in ["0 1\n1 2", "0 1\r\n1 2", "0 1\r\n1 2\r"] {
            let loaded = read_edge_list(text.as_bytes()).unwrap();
            assert_eq!(loaded.graph.num_edges(), 2, "{text:?}");
            assert_eq!(loaded.stats.lines_read, 2, "{text:?}");
            assert_eq!(loaded.stats.edges_loaded, 2, "{text:?}");
        }
    }

    #[test]
    fn crlf_malformed_line_numbers_do_not_drift() {
        // Line 3 is the offender in both encodings; the reported text
        // must not carry the `\r`.
        let err = read_edge_list("0 1\r\n1 2\r\nbogus\r\n2 0\r\n".as_bytes()).unwrap_err();
        match err {
            ParseGraphError::Malformed { line, text, .. } => {
                assert_eq!(line, 3);
                assert_eq!(text, "bogus");
            }
            other => panic!("unexpected error: {other:?}"),
        }
        // A malformed *final* line without a terminator reports its real
        // line number too.
        let err = read_edge_list("0 1\n1 2\n3 x".as_bytes()).unwrap_err();
        match err {
            ParseGraphError::Malformed { line, text, .. } => {
                assert_eq!(line, 3);
                assert_eq!(text, "3 x");
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn utf8_bom_is_stripped_from_the_first_line() {
        let loaded = read_edge_list("\u{feff}0 1\n1 2\n".as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_edges(), 2);
        // A BOM ahead of a comment is fine too.
        let loaded = read_edge_list("\u{feff}# header\n0 1\n".as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_edges(), 1);
        // Only the first line: a stray BOM later is malformed, reported
        // at the right line.
        let err = read_edge_list("0 1\n\u{feff}1 2\n".as_bytes()).unwrap_err();
        match err {
            ParseGraphError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn invalid_utf8_is_an_io_error_with_the_line_number() {
        let bytes: &[u8] = b"0 1\n\xff\xfe 2\n";
        let err = read_edge_list(bytes).unwrap_err();
        match err {
            ParseGraphError::Io(e) => {
                assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
                assert!(e.to_string().contains("line 2"), "{e}");
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }
}
