//! Plain-text edge-list reading and writing.
//!
//! The format is one `src dst` pair per line (whitespace separated), with
//! optional `#`-prefixed comment lines — the same convention as SNAP data
//! sets. A `#` after the columns starts an inline comment that runs to the
//! end of the line. An optional third column carries an integer edge
//! weight, returned as an aligned weight vector.

use crate::{Graph, GraphBuilder};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Error produced while parsing an edge list.
#[derive(Debug)]
pub enum ParseGraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that is neither a comment nor a valid edge.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseGraphError::Io(e) => write!(f, "i/o error reading edge list: {e}"),
            ParseGraphError::Malformed { line, text } => {
                write!(f, "malformed edge list line {line}: {text:?}")
            }
        }
    }
}

impl Error for ParseGraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseGraphError::Io(e) => Some(e),
            ParseGraphError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseGraphError {
    fn from(e: std::io::Error) -> Self {
        ParseGraphError::Io(e)
    }
}

/// Result of [`read_edge_list`]: the graph plus per-edge weights (all `1` if
/// the input had no weight column). Weights are aligned with [`crate::EdgeId`]s.
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// The parsed graph.
    pub graph: Graph,
    /// Weight of each edge, in edge-id order.
    pub weights: Vec<i64>,
}

/// Reads an edge list from `reader`. Vertex count is `1 + max id` seen.
///
/// A `reader` can be passed by mutable reference as well as by value.
///
/// # Errors
///
/// Returns [`ParseGraphError::Malformed`] for lines that are not blank,
/// comments, or 2/3-column integer rows, and [`ParseGraphError::Io`] for
/// underlying read failures.
pub fn read_edge_list<R: Read>(reader: R) -> Result<LoadedGraph, ParseGraphError> {
    let buf = BufReader::new(reader);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut weights: Vec<i64> = Vec::new();
    let mut max_id: u32 = 0;
    let mut any = false;
    for (i, line) in buf.lines().enumerate() {
        let line = line?;
        let mut trimmed = line.trim();
        // Strip inline trailing comments (`0 1  # hub edge`) before
        // splitting into columns; a full-line comment becomes empty.
        if let Some(hash) = trimmed.find('#') {
            trimmed = trimmed[..hash].trim_end();
        }
        if trimmed.is_empty() {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let malformed = || ParseGraphError::Malformed {
            line: i + 1,
            text: trimmed.to_owned(),
        };
        let src: u32 = it
            .next()
            .ok_or_else(malformed)?
            .parse()
            .map_err(|_| malformed())?;
        let dst: u32 = it
            .next()
            .ok_or_else(malformed)?
            .parse()
            .map_err(|_| malformed())?;
        let w: i64 = match it.next() {
            Some(tok) => tok.parse().map_err(|_| malformed())?,
            None => 1,
        };
        if it.next().is_some() {
            return Err(malformed());
        }
        any = true;
        max_id = max_id.max(src).max(dst);
        edges.push((src, dst));
        weights.push(w);
    }
    let n = if any { max_id + 1 } else { 0 };
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    // Weights must follow edges through the CSR permutation: build the graph,
    // then map weights by matching insertion order per source (stable sort).
    for &(s, d) in &edges {
        b.add_edge(s, d);
    }
    let graph = b.build();
    // Reconstruct edge-id order: counting sort mirrors GraphBuilder::build.
    let mut offsets = vec![0u32; n as usize + 1];
    for &(s, _) in &edges {
        offsets[s as usize + 1] += 1;
    }
    for i in 0..n as usize {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor = offsets;
    let mut sorted_weights = vec![0i64; edges.len()];
    for (k, &(s, _)) in edges.iter().enumerate() {
        let slot = cursor[s as usize] as usize;
        sorted_weights[slot] = weights[k];
        cursor[s as usize] += 1;
    }
    Ok(LoadedGraph {
        graph,
        weights: sorted_weights,
    })
}

/// Reads an edge list from a file path. See [`read_edge_list`].
///
/// # Errors
///
/// Same conditions as [`read_edge_list`], plus file-open failures.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<LoadedGraph, ParseGraphError> {
    let f = std::fs::File::open(path)?;
    read_edge_list(f)
}

/// Writes `graph` as an edge list. If `weights` is provided it must be
/// edge-id aligned and is emitted as a third column.
///
/// A `writer` can be passed by mutable reference as well as by value.
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
///
/// # Panics
///
/// Panics if `weights` is provided with the wrong length.
pub fn write_edge_list<W: Write>(
    graph: &Graph,
    weights: Option<&[i64]>,
    mut writer: W,
) -> std::io::Result<()> {
    if let Some(w) = weights {
        assert_eq!(
            w.len(),
            graph.num_edges() as usize,
            "weights must be edge-aligned"
        );
    }
    for n in graph.nodes() {
        for (t, e) in graph.out_neighbors(n) {
            match weights {
                Some(w) => writeln!(writer, "{} {} {}", n.0, t.0, w[e.index()])?,
                None => writeln!(writer, "{} {}", n.0, t.0)?,
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn parse_simple() {
        let text = "# comment\n0 1\n1 2\n\n2 0\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_nodes(), 3);
        assert_eq!(loaded.graph.num_edges(), 3);
        assert_eq!(loaded.weights, vec![1, 1, 1]);
    }

    #[test]
    fn parse_weights_follow_csr_permutation() {
        // Insert out of src order so the counting sort actually permutes.
        let text = "1 0 7\n0 2 5\n0 1 3\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        let g = &loaded.graph;
        // Edge ids: vertex 0's edges first in insertion order: (0,2,w5)=e0,
        // (0,1,w3)=e1, then (1,0,w7)=e2.
        assert_eq!(g.edge_target(crate::EdgeId(0)), NodeId(2));
        assert_eq!(loaded.weights, vec![5, 3, 7]);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 1\nnot an edge\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            ParseGraphError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn inline_trailing_comments_are_stripped() {
        let text = "0 1  # hub edge\n1 2 9\t# weighted, tab before comment\n   # only a comment\n2 0#no space\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_nodes(), 3);
        assert_eq!(loaded.graph.num_edges(), 3);
        // Edge-id order: (0,1)=e0, (1,2)=e1, (2,0)=e2.
        assert_eq!(loaded.weights, vec![1, 9, 1]);
    }

    #[test]
    fn malformed_text_before_inline_comment_still_errors() {
        let text = "0 1\n0 # missing dst\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            ParseGraphError::Malformed { line, text } => {
                assert_eq!(line, 2);
                // The reported text is the stripped column part, so the
                // message points at what was actually parsed.
                assert_eq!(text, "0");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn too_many_columns_is_malformed() {
        let text = "0 1 2 3\n";
        assert!(read_edge_list(text.as_bytes()).is_err());
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let loaded = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(loaded.graph.num_nodes(), 0);
    }

    #[test]
    fn roundtrip_with_weights() {
        let text = "0 1 10\n0 2 20\n1 2 30\n";
        let loaded = read_edge_list(text.as_bytes()).unwrap();
        let mut out = Vec::new();
        write_edge_list(&loaded.graph, Some(&loaded.weights), &mut out).unwrap();
        let again = read_edge_list(&out[..]).unwrap();
        assert_eq!(again.weights, loaded.weights);
        let e1: Vec<_> = loaded.graph.edges().collect();
        let e2: Vec<_> = again.graph.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn display_of_errors_is_informative() {
        let err = ParseGraphError::Malformed {
            line: 3,
            text: "x".into(),
        };
        assert!(err.to_string().contains("line 3"));
    }
}
