//! Graph substrate for the Green-Marl → Pregel reproduction.
//!
//! This crate provides the directed-graph data structures the rest of the
//! workspace is built on:
//!
//! * [`Graph`] — an immutable compressed-sparse-row (CSR) directed graph with
//!   both forward (out-edge) and reverse (in-edge) adjacency, built through
//!   [`GraphBuilder`].
//! * [`NodeId`] / [`EdgeId`] — index newtypes that keep vertex ids, edge ids
//!   and plain integers from being confused.
//! * [`gen`] — deterministic, seeded graph generators standing in for the
//!   paper's proprietary data sets (RMAT power-law for the Twitter follower
//!   network, uniform random bipartite, a copying model for the sk-2005 web
//!   graph) plus small structured graphs for tests.
//! * [`io`] — a plain-text edge-list reader/writer.
//! * [`props`] — dense property vectors aligned with node/edge ids, the
//!   shared-memory analogue of Green-Marl's `Node_Prop` / `Edge_Prop`.
//!
//! # Example
//!
//! ```
//! use gm_graph::{GraphBuilder, NodeId};
//!
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(0, 2);
//! let g = b.build();
//! assert_eq!(g.num_nodes(), 3);
//! assert_eq!(g.out_degree(NodeId(0)), 2);
//! assert_eq!(g.in_degree(NodeId(2)), 2);
//! ```

mod csr;
pub mod gen;
pub mod io;
pub mod props;

pub use csr::{Graph, GraphBuilder, InNeighbors, OutNeighbors};
pub use props::{EdgeProp, NodeProp};

use std::fmt;

/// Identifier of a vertex: a dense index in `0..graph.num_nodes()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

/// Identifier of a directed edge: a dense index in `0..graph.num_edges()`,
/// assigned in CSR order (edges of vertex 0 first, then vertex 1, ...).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The index as a `usize`, for property-vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The index as a `usize`, for property-vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}
