//! Bench-snapshot diffing for the perf-regression gate.
//!
//! A *snapshot* is the JSON document `figure6 --bench-json` (and future
//! bins) write: a flat list of named entries, each with a latency in
//! milliseconds plus optional structural counters (supersteps, message
//! bytes). The [`compare`] function diffs two snapshots: a latency
//! regression beyond a configurable threshold, or *any* structural drift,
//! flags the entry. The `regress` binary wraps this as a CI gate and can
//! also normalize a snapshot into a committed `BENCH_*.json` baseline.
//!
//! Latency comparisons are inherently noisy on shared CI runners — the
//! structural counters are the deterministic half of the gate, which is
//! why they are compared exactly while latency gets a percentage band.

use gm_obs::json::{parse, Json};
use gm_pregel::Metrics;
use std::fmt;
use std::path::Path;

/// One measured workload in a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// Stable identifier, e.g. `figure6/pagerank/twitter/generated`.
    pub name: String,
    /// Wall-clock milliseconds (minimum over reps).
    pub ms: f64,
    /// Supersteps executed, when the workload reports them.
    pub supersteps: Option<u64>,
    /// Total metered message bytes, when reported.
    pub message_bytes: Option<u64>,
}

impl Entry {
    /// Builds an entry carrying the structural counters of `metrics`.
    pub fn from_metrics(name: impl Into<String>, ms: f64, metrics: &Metrics) -> Entry {
        Entry {
            name: name.into(),
            ms,
            supersteps: Some(u64::from(metrics.supersteps)),
            message_bytes: Some(metrics.total_message_bytes),
        }
    }
}

/// A parsed snapshot: schema version plus entries in file order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// Entries in file order (names must be unique).
    pub entries: Vec<Entry>,
}

/// Why a snapshot failed to parse.
#[derive(Debug)]
pub enum ReportError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The document is not valid JSON or not a snapshot.
    Malformed(String),
    /// The document is a snapshot from a different (usually older)
    /// schema revision and cannot be compared against.
    Schema {
        /// The `schema` field found, if any.
        found: Option<u64>,
    },
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Io(e) => write!(f, "cannot read snapshot: {e}"),
            ReportError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
            ReportError::Schema { found } => write!(
                f,
                "snapshot schema {} is not the supported schema 1; the file \
                 predates (or postdates) this build of the gate — regenerate \
                 it from a fresh run with `regress --write-baseline`",
                match found {
                    Some(v) => v.to_string(),
                    None => "missing".to_owned(),
                }
            ),
        }
    }
}

impl std::error::Error for ReportError {}

impl Report {
    /// Parses a snapshot document.
    pub fn from_json(text: &str) -> Result<Report, ReportError> {
        let doc = parse(text).map_err(|e| ReportError::Malformed(format!("not JSON: {e:?}")))?;
        let schema = doc.get("schema").and_then(Json::as_u64);
        if schema != Some(1) {
            return Err(ReportError::Schema { found: schema });
        }
        let raw = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| ReportError::Malformed("missing entries array".to_owned()))?;
        let mut entries = Vec::with_capacity(raw.len());
        for e in raw {
            let name = e
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| ReportError::Malformed("entry without name".to_owned()))?
                .to_owned();
            let ms = e
                .get("ms")
                .and_then(Json::as_f64)
                .ok_or_else(|| ReportError::Malformed(format!("entry {name} without ms")))?;
            if entries.iter().any(|prev: &Entry| prev.name == name) {
                return Err(ReportError::Malformed(format!("duplicate entry {name}")));
            }
            entries.push(Entry {
                name,
                ms,
                supersteps: e.get("supersteps").and_then(Json::as_u64),
                message_bytes: e.get("message_bytes").and_then(Json::as_u64),
            });
        }
        Ok(Report { entries })
    }

    /// Reads and parses a snapshot file.
    pub fn load(path: &Path) -> Result<Report, ReportError> {
        let text = std::fs::read_to_string(path).map_err(ReportError::Io)?;
        Report::from_json(&text)
    }

    /// Serializes the snapshot (schema 1, sorted by entry name so baseline
    /// diffs are stable).
    pub fn to_json(&self) -> String {
        let mut entries = self.entries.clone();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        let items: Vec<Json> = entries
            .into_iter()
            .map(|e| {
                let mut pairs = vec![
                    ("name".to_owned(), Json::Str(e.name)),
                    ("ms".to_owned(), Json::Num(e.ms)),
                ];
                if let Some(s) = e.supersteps {
                    pairs.push(("supersteps".to_owned(), Json::UInt(s)));
                }
                if let Some(b) = e.message_bytes {
                    pairs.push(("message_bytes".to_owned(), Json::UInt(b)));
                }
                Json::obj(pairs)
            })
            .collect();
        let doc = Json::obj([
            ("schema".to_owned(), Json::UInt(1)),
            ("entries".to_owned(), Json::Arr(items)),
        ]);
        let mut text = doc.to_string();
        text.push('\n');
        text
    }
}

/// One compared entry.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Entry name.
    pub name: String,
    /// Baseline latency.
    pub base_ms: f64,
    /// Current latency.
    pub cur_ms: f64,
    /// Latency change in percent (positive = slower).
    pub pct: f64,
    /// Structural counters that drifted, rendered (`supersteps 8 -> 9`).
    pub structural: Vec<String>,
    /// Whether this entry fails the gate.
    pub regressed: bool,
}

/// The full comparison result.
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    /// Per-entry deltas, in baseline order.
    pub deltas: Vec<Delta>,
    /// Baseline entries absent from the current snapshot (a dropped
    /// workload fails the gate — coverage must shrink deliberately).
    pub missing: Vec<String>,
    /// Current entries absent from the baseline (informational).
    pub added: Vec<String>,
}

impl Comparison {
    /// Whether anything failed the gate.
    pub fn regressed(&self) -> bool {
        !self.missing.is_empty() || self.deltas.iter().any(|d| d.regressed)
    }
}

/// Diffs `current` against `baseline`: latency slower by more than
/// `threshold_pct` percent, any structural drift, or a dropped entry
/// marks the comparison regressed.
pub fn compare(baseline: &Report, current: &Report, threshold_pct: f64) -> Comparison {
    let mut out = Comparison::default();
    for base in &baseline.entries {
        let Some(cur) = current.entries.iter().find(|e| e.name == base.name) else {
            out.missing.push(base.name.clone());
            continue;
        };
        let pct = if base.ms > 0.0 {
            (cur.ms - base.ms) / base.ms * 100.0
        } else {
            0.0
        };
        let mut structural = Vec::new();
        let mut drift = |what: &str, b: Option<u64>, c: Option<u64>| {
            if let (Some(b), Some(c)) = (b, c) {
                if b != c {
                    structural.push(format!("{what} {b} -> {c}"));
                }
            }
        };
        drift("supersteps", base.supersteps, cur.supersteps);
        drift("message_bytes", base.message_bytes, cur.message_bytes);
        let regressed = pct > threshold_pct || !structural.is_empty();
        out.deltas.push(Delta {
            name: base.name.clone(),
            base_ms: base.ms,
            cur_ms: cur.ms,
            pct,
            structural,
            regressed,
        });
    }
    for cur in &current.entries {
        if !baseline.entries.iter().any(|e| e.name == cur.name) {
            out.added.push(cur.name.clone());
        }
    }
    out
}

/// Renders the comparison as the table the `regress` bin prints.
pub fn render(cmp: &Comparison, threshold_pct: f64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<44} {:>10} {:>10} {:>8}  verdict",
        "entry", "base (ms)", "cur (ms)", "change"
    );
    for d in &cmp.deltas {
        let verdict = if d.regressed {
            "REGRESSED"
        } else if d.pct < -threshold_pct {
            "improved"
        } else {
            "ok"
        };
        let _ = writeln!(
            out,
            "{:<44} {:>10.2} {:>10.2} {:>+7.1}%  {}{}",
            d.name,
            d.base_ms,
            d.cur_ms,
            d.pct,
            verdict,
            if d.structural.is_empty() {
                String::new()
            } else {
                format!(" [{}]", d.structural.join(", "))
            }
        );
    }
    for name in &cmp.missing {
        let _ = writeln!(out, "{name:<44} missing from current snapshot  REGRESSED");
    }
    for name in &cmp.added {
        let _ = writeln!(out, "{name:<44} new entry (not in baseline)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(entries: &[(&str, f64)]) -> Report {
        Report {
            entries: entries
                .iter()
                .map(|(name, ms)| Entry {
                    name: (*name).to_owned(),
                    ms: *ms,
                    supersteps: Some(8),
                    message_bytes: Some(4096),
                })
                .collect(),
        }
    }

    #[test]
    fn json_round_trip() {
        let r = report(&[("a/gen", 10.0), ("b/man", 3.5)]);
        let back = Report::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn twenty_percent_slower_regresses() {
        let base = report(&[("a", 100.0)]);
        let cur = report(&[("a", 121.0)]);
        let cmp = compare(&base, &cur, 20.0);
        assert!(cmp.regressed());
        assert!((cmp.deltas[0].pct - 21.0).abs() < 1e-9);
    }

    #[test]
    fn within_threshold_passes_and_faster_is_fine() {
        let base = report(&[("a", 100.0), ("b", 50.0)]);
        let cur = report(&[("a", 115.0), ("b", 20.0)]);
        assert!(!compare(&base, &cur, 20.0).regressed());
    }

    #[test]
    fn structural_drift_regresses_regardless_of_latency() {
        let base = report(&[("a", 100.0)]);
        let mut cur = report(&[("a", 80.0)]);
        cur.entries[0].supersteps = Some(9);
        let cmp = compare(&base, &cur, 20.0);
        assert!(cmp.regressed());
        assert_eq!(cmp.deltas[0].structural, vec!["supersteps 8 -> 9"]);
    }

    #[test]
    fn dropped_entry_regresses_new_entry_does_not() {
        let base = report(&[("a", 1.0)]);
        let cur = report(&[("b", 1.0)]);
        let cmp = compare(&base, &cur, 20.0);
        assert!(cmp.regressed());
        assert_eq!(cmp.missing, vec!["a"]);
        assert_eq!(cmp.added, vec!["b"]);
        assert!(!compare(&base, &base.clone(), 20.0).regressed());
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        assert!(Report::from_json("{}").is_err());
        assert!(Report::from_json("{\"schema\":1}").is_err());
        assert!(Report::from_json("{\"schema\":2,\"entries\":[]}").is_err());
        assert!(
            Report::from_json("{\"schema\":1,\"entries\":[{\"name\":\"a\"}]}").is_err(),
            "ms is mandatory"
        );
        let dup =
            "{\"schema\":1,\"entries\":[{\"name\":\"a\",\"ms\":1},{\"name\":\"a\",\"ms\":2}]}";
        assert!(Report::from_json(dup).is_err());
    }

    #[test]
    fn older_schema_baselines_get_an_actionable_error() {
        // A schema-0/2 (or schema-less) baseline must not read as generic
        // corruption: the error tells the operator to re-run
        // `regress --write-baseline` instead of hunting for file damage.
        for doc in [
            "{\"schema\":0,\"entries\":[]}",
            "{\"schema\":2,\"entries\":[]}",
            "{\"entries\":[]}",
        ] {
            let err = Report::from_json(doc).unwrap_err();
            assert!(
                matches!(err, ReportError::Schema { .. }),
                "{doc}: wrong error class: {err:?}"
            );
            let msg = err.to_string();
            assert!(
                msg.contains("--write-baseline"),
                "{doc}: message lacks the remedy: {msg}"
            );
            assert!(msg.contains("schema"), "{doc}: {msg}");
        }
    }
}
