//! Shared harness pieces for the table/figure reproduction binaries and
//! the Criterion benches.
//!
//! The paper's input graphs (Table 1) are proprietary billion-edge data
//! sets; the harness substitutes seeded synthetic graphs with the same
//! *shapes* and edge:vertex ratios, scaled to laptop memory (see
//! DESIGN.md). Set `GM_SCALE` (default `1.0`) to grow or shrink every
//! workload proportionally.

pub mod regress;

use gm_core::seqinterp::ArgValue;
use gm_core::value::Value;
use gm_core::{compile_with, CompileOptions, Compiled};
use gm_graph::{gen, Graph};
use gm_obs::http::MetricsServer;
use gm_obs::metrics::MetricsRegistry;
use gm_obs::{Category, TraceFormat, Tracer};
use gm_pregel::{CheckpointConfig, Metrics, PregelConfig, RecoveryPolicy};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A Table 1 input graph, scaled.
pub struct Workload {
    /// Short name used in tables.
    pub name: &'static str,
    /// What the paper used.
    pub paper_desc: &'static str,
    /// The generated stand-in.
    pub graph: Graph,
}

/// Baseline scale factor (vertices of the twitter-like graph at scale 1).
const BASE_TWITTER_N: f64 = 30_000.0;

fn scale() -> f64 {
    std::env::var("GM_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Builds the three Table 1 stand-ins at the configured scale.
///
/// | name | paper graph | shape | edge:vertex |
/// |---|---|---|---|
/// | twitter | Twitter follower network (42M/1.5B) | R-MAT power law | 36:1 |
/// | bipartite | synthetic uniform random (75M/1.5B) | uniform bipartite | 20:1 |
/// | sk-2005 | .sk web crawl (51M/1.9B) | copying model | 37:1 |
pub fn table1_graphs() -> Vec<Workload> {
    table1_graphs_traced(None)
}

/// [`table1_graphs`], emitting one bench-category span per generated
/// graph into `tracer` (when given) with the resulting node/edge counts.
pub fn table1_graphs_traced(tracer: Option<&Tracer>) -> Vec<Workload> {
    let s = scale();
    let tw_n = (BASE_TWITTER_N * s) as u32;
    let bi_n = (53_000.0 * s) as u32; // 75/42 of the twitter scale
    let sk_n = (36_000.0 * s) as u32; // 51/42 of the twitter scale
    let mut workloads = Vec::with_capacity(3);
    let mut build = |name: &'static str, paper_desc: &'static str, f: &dyn Fn() -> Graph| {
        let start_us = tracer.map(Tracer::now_us);
        let graph = f();
        if let (Some(t), Some(ts)) = (tracer, start_us) {
            t.span(
                format!("gen/{name}"),
                Category::Bench,
                0,
                ts,
                vec![
                    ("nodes", graph.num_nodes().into()),
                    ("edges", graph.num_edges().into()),
                ],
            );
        }
        workloads.push(Workload {
            name,
            paper_desc,
            graph,
        });
    };
    build(
        "twitter",
        "Twitter follower network (42M nodes, 1.5B edges)",
        &|| gen::rmat(tw_n, tw_n as usize * 36, 1001),
    );
    build(
        "bipartite",
        "Synthetic uniform random bipartite (75M, 1.5B)",
        &|| gen::bipartite(bi_n / 2, bi_n - bi_n / 2, bi_n as usize * 20, 1002),
    );
    build(
        "sk-2005",
        "Web graph of the .sk domain (51M, 1.9B)",
        &|| gen::web_copying(sk_n, 37, 0.5, 1003),
    );
    workloads
}

/// Deterministic per-vertex ages for AvgTeen.
pub fn ages(g: &Graph) -> Vec<i64> {
    (0..g.num_nodes() as i64).map(|i| (i * 37) % 85).collect()
}

/// Deterministic membership marks for Conductance.
pub fn membership(g: &Graph) -> Vec<bool> {
    (0..g.num_nodes()).map(|i| i % 3 == 0).collect()
}

/// Deterministic edge weights for SSSP.
pub fn weights(g: &Graph) -> Vec<i64> {
    (0..g.num_edges() as i64)
        .map(|i| 1 + (i * 13) % 31)
        .collect()
}

/// SSSP root with good forward reachability: the vertex with the largest
/// out-degree (vertex 0 of the copying-model web graph reaches almost
/// nothing, and high-id R-MAT vertices are often isolated).
pub fn sssp_root(g: &Graph) -> gm_graph::NodeId {
    g.nodes()
        .max_by_key(|&n| g.out_degree(n))
        .unwrap_or(gm_graph::NodeId(0))
}

/// Side marks for bipartite matching (only valid on the bipartite graph).
pub fn boy_marks(g: &Graph) -> Vec<bool> {
    // gen::bipartite puts the left side first and all edges point left→right;
    // vertices with out-edges are the proposing side.
    g.nodes().map(|n| g.out_degree(n) > 0).collect()
}

/// Compiles one of the six embedded sources with the given options.
///
/// # Panics
///
/// Panics if the source does not compile — the sources are tested.
pub fn compile_source(src: &str, options: &CompileOptions) -> Compiled {
    compile_source_with(src, options, None)
}

/// [`compile_source`], re-emitting the per-pass timings into `tracer`.
///
/// # Panics
///
/// Panics if the source does not compile — the sources are tested.
pub fn compile_source_with(
    src: &str,
    options: &CompileOptions,
    tracer: Option<&Tracer>,
) -> Compiled {
    compile_with(src, options, tracer).expect("embedded source compiles")
}

/// The `--trace <path> [--trace-format jsonl|chrome]` surface shared by
/// the reproduction binaries. Unknown flags are ignored so each binary
/// keeps its own argument handling. Without an explicit format, a single
/// run tees into *both*: JSONL at `<path>` plus a Chrome Trace file at
/// `<stem>.chrome.json` next to it (drag into Perfetto).
#[derive(Debug, Default)]
pub struct TraceArgs {
    /// Destination of the event log, if tracing was requested.
    pub path: Option<PathBuf>,
    /// Serialization format; `None` means JSONL + Chrome side-by-side.
    pub format: Option<TraceFormat>,
}

impl TraceArgs {
    /// Parses `--trace`/`--trace-format` out of the process arguments.
    ///
    /// Exits with status 2 on a `--trace-format` value other than
    /// `jsonl`/`chrome`, or on a flag with its value missing.
    pub fn from_env() -> TraceArgs {
        let usage = |msg: &str| -> ! {
            eprintln!("error: {msg}");
            std::process::exit(2);
        };
        let mut out = TraceArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trace" => {
                    let Some(p) = args.next() else {
                        usage("--trace needs a path");
                    };
                    out.path = Some(PathBuf::from(p));
                }
                "--trace-format" => {
                    let Some(f) = args.next() else {
                        usage("--trace-format needs a value");
                    };
                    out.format = Some(f.parse().unwrap_or_else(|e: String| usage(&e)));
                }
                _ => {}
            }
        }
        out
    }

    /// Opens the tracer, or `None` when `--trace` was not given.
    ///
    /// # Panics
    ///
    /// Panics if a trace file cannot be created.
    pub fn tracer(&self) -> Option<Tracer> {
        let path = self.path.as_ref()?;
        let tracer = match self.format {
            Some(format) => Tracer::to_file(path, format),
            None => {
                let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("run");
                let chrome = path
                    .parent()
                    .unwrap_or(Path::new("."))
                    .join(format!("{stem}.chrome.json"));
                Tracer::to_files(&[
                    (path.clone(), TraceFormat::Jsonl),
                    (chrome, TraceFormat::Chrome),
                ])
            }
        };
        Some(tracer.unwrap_or_else(|e| panic!("cannot open trace file {}: {e}", path.display())))
    }

    /// Writes `metrics` as JSON to `<trace stem>.<name>.metrics.json`
    /// next to the trace file. No-op when tracing is off.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write_metrics_json(&self, name: &str, metrics: &Metrics) {
        let Some(trace) = &self.path else { return };
        let stem = trace.file_stem().and_then(|s| s.to_str()).unwrap_or("run");
        let file = format!("{stem}.{name}.metrics.json");
        let dest = trace.parent().unwrap_or(Path::new(".")).join(file);
        std::fs::write(&dest, metrics.to_json())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", dest.display()));
    }
}

/// The `--metrics-listen <addr>` / `--metrics-file <path>` surface shared
/// by the reproduction binaries, mirroring [`TraceArgs`]: either flag
/// creates a [`MetricsRegistry`] the Pregel runs feed, `--metrics-listen`
/// additionally serves it over HTTP for the duration of the process
/// (scrape `http://<addr>/metrics`), and `--metrics-file` writes the
/// final Prometheus exposition on [`MetricsArgs::finish`]. Unknown flags
/// are ignored so each binary keeps its own argument handling.
#[derive(Debug, Default)]
pub struct MetricsArgs {
    /// Bind address for the scrape endpoint (e.g. `127.0.0.1:9184`).
    pub listen: Option<String>,
    /// Destination for the final text exposition.
    pub file: Option<PathBuf>,
    registry: Option<Arc<MetricsRegistry>>,
}

impl MetricsArgs {
    /// Parses the metrics flags out of the process arguments.
    ///
    /// Exits with status 2 on a flag with its value missing.
    pub fn from_env() -> MetricsArgs {
        let usage = |msg: &str| -> ! {
            eprintln!("error: {msg}");
            std::process::exit(2);
        };
        let mut out = MetricsArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--metrics-listen" => match args.next() {
                    Some(addr) => out.listen = Some(addr),
                    None => usage("--metrics-listen needs an address (host:port)"),
                },
                "--metrics-file" => match args.next() {
                    Some(p) => out.file = Some(PathBuf::from(p)),
                    None => usage("--metrics-file needs a path"),
                },
                _ => {}
            }
        }
        if out.listen.is_some() || out.file.is_some() {
            out.registry = Some(Arc::new(MetricsRegistry::new()));
        }
        out
    }

    /// The shared registry, when either metrics flag was given.
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.registry.as_ref()
    }

    /// Attaches the registry to `config` (no-op when metrics are off).
    pub fn apply(&self, config: PregelConfig) -> PregelConfig {
        match &self.registry {
            Some(r) => config.with_registry(r.clone()),
            None => config,
        }
    }

    /// Starts the scrape endpoint when `--metrics-listen` was given. Keep
    /// the returned server alive for the run; it stops on drop.
    ///
    /// Exits with status 2 when the address cannot be bound.
    pub fn serve(&self) -> Option<MetricsServer> {
        let addr = self.listen.as_ref()?;
        let registry = self.registry.clone()?;
        match gm_obs::http::serve(addr.as_str(), registry) {
            Ok(server) => {
                eprintln!("metrics: serving http://{}/metrics", server.addr());
                Some(server)
            }
            Err(e) => {
                eprintln!("error: cannot bind --metrics-listen {addr}: {e}");
                std::process::exit(2);
            }
        }
    }

    /// Writes the final exposition to `--metrics-file`, if given.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn finish(&self) {
        if let (Some(path), Some(registry)) = (&self.file, &self.registry) {
            registry
                .write_prometheus(path)
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        }
    }
}

/// The `--checkpoint-every N [--checkpoint-dir <path>] [--resume]
/// [--keep-snapshots N] [--max-restarts N]` surface shared by the
/// reproduction binaries, mirroring [`TraceArgs`]. Unknown flags are
/// ignored so each binary keeps its own argument handling.
#[derive(Debug, Default)]
pub struct CkptArgs {
    /// Snapshot interval in supersteps; `None` disables checkpointing.
    pub every: Option<u32>,
    /// Snapshot directory (defaults to `gm-ckpt` under the temp dir).
    pub dir: Option<PathBuf>,
    /// Resume from the newest valid snapshot in `dir`.
    pub resume: bool,
    /// Keep only the newest N snapshots (0 = keep all).
    pub keep: usize,
    /// Restart budget for the recovery supervisor.
    pub max_restarts: Option<u32>,
}

impl CkptArgs {
    /// Parses the checkpoint flags out of the process arguments.
    ///
    /// Exits with status 2 on a flag with a missing or non-numeric value.
    pub fn from_env() -> CkptArgs {
        let usage = |msg: &str| -> ! {
            eprintln!("error: {msg}");
            std::process::exit(2);
        };
        let mut out = CkptArgs::default();
        let mut args = std::env::args().skip(1);
        let num = |args: &mut dyn Iterator<Item = String>, flag: &str| -> u64 {
            match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(v)) => v,
                Some(Err(_)) => usage(&format!("{flag} needs a number")),
                None => usage(&format!("{flag} needs a value")),
            }
        };
        while let Some(a) = args.next() {
            match a.as_str() {
                "--checkpoint-every" => {
                    out.every = Some(num(&mut args, "--checkpoint-every") as u32);
                }
                "--checkpoint-dir" => match args.next() {
                    Some(p) => out.dir = Some(PathBuf::from(p)),
                    None => usage("--checkpoint-dir needs a path"),
                },
                "--resume" => out.resume = true,
                "--keep-snapshots" => {
                    out.keep = num(&mut args, "--keep-snapshots") as usize;
                }
                "--max-restarts" => {
                    out.max_restarts = Some(num(&mut args, "--max-restarts") as u32);
                }
                _ => {}
            }
        }
        out
    }

    /// Applies the parsed flags to `config`: attaches a
    /// [`CheckpointConfig`] when `--checkpoint-every` was given (with
    /// `--resume`/`--keep-snapshots` folded in) and a [`RecoveryPolicy`]
    /// when `--max-restarts` was given.
    pub fn apply(&self, mut config: PregelConfig) -> PregelConfig {
        if let Some(every) = self.every {
            let dir = self
                .dir
                .clone()
                .unwrap_or_else(|| std::env::temp_dir().join("gm-ckpt"));
            config = config.with_checkpoints(
                CheckpointConfig::new(dir, every)
                    .with_resume(self.resume)
                    .with_keep(self.keep),
            );
        }
        if let Some(n) = self.max_restarts {
            config = config.with_recovery(RecoveryPolicy::with_max_restarts(n));
        }
        config
    }
}

/// Argument map for a compiled algorithm on graph `g`.
pub fn args_for(alg: &str, g: &Graph) -> HashMap<String, ArgValue> {
    match alg {
        "avg_teen" => HashMap::from([
            (
                "age".to_owned(),
                ArgValue::NodeProp(ages(g).into_iter().map(Value::Int).collect()),
            ),
            ("K".to_owned(), ArgValue::Scalar(Value::Int(25))),
        ]),
        "pagerank" => HashMap::from([
            ("e".to_owned(), ArgValue::Scalar(Value::Double(1e-9))),
            ("d".to_owned(), ArgValue::Scalar(Value::Double(0.85))),
            ("max_iter".to_owned(), ArgValue::Scalar(Value::Int(10))),
        ]),
        "conductance" => HashMap::from([(
            "member".to_owned(),
            ArgValue::NodeProp(membership(g).into_iter().map(Value::Bool).collect()),
        )]),
        "sssp" => HashMap::from([
            (
                "root".to_owned(),
                ArgValue::Scalar(Value::Node(sssp_root(g).0)),
            ),
            (
                "len".to_owned(),
                ArgValue::EdgeProp(weights(g).into_iter().map(Value::Int).collect()),
            ),
        ]),
        "bipartite" => HashMap::from([(
            "is_boy".to_owned(),
            ArgValue::NodeProp(boy_marks(g).into_iter().map(Value::Bool).collect()),
        )]),
        "bc" => HashMap::from([("K".to_owned(), ArgValue::Scalar(Value::Int(4)))]),
        other => panic!("unknown algorithm {other}"),
    }
}

/// Wall-clock of `f`, minimum over `reps` runs (the usual benchmarking
/// guard against scheduler noise), plus the metrics of the last run.
pub fn time_min<T>(reps: usize, mut f: impl FnMut() -> (T, Metrics)) -> (Duration, Metrics) {
    let mut best = Duration::MAX;
    let mut metrics = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let (_, m) = f();
        best = best.min(start.elapsed());
        metrics = Some(m);
    }
    (best, metrics.expect("at least one rep"))
}

/// The default Pregel configuration for benchmarking (multi-threaded).
pub fn bench_config() -> PregelConfig {
    PregelConfig::default()
}

/// Compact per-superstep direction trail: one character per superstep,
/// `^` for gathered (pull) supersteps, `.` for pushed ones.
pub fn direction_string(m: &Metrics) -> String {
    m.per_superstep
        .iter()
        .map(|s| if s.pulled { '^' } else { '.' })
        .collect()
}

/// Per-phase wall-clock of a run in milliseconds, in reporting order:
/// `[compute, combine, exchange, master]`.
pub fn phase_ms(m: &Metrics) -> [f64; 4] {
    [
        m.compute_time,
        m.combine_time,
        m.exchange_time,
        m.master_time,
    ]
    .map(|d| d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_paper_ratios() {
        let ws = table1_graphs();
        assert_eq!(ws.len(), 3);
        let tw = &ws[0];
        let ratio = tw.graph.num_edges() as f64 / tw.graph.num_nodes() as f64;
        assert!((ratio - 36.0).abs() < 1.0, "twitter ratio {ratio}");
        let bi = &ws[1];
        let ratio = bi.graph.num_edges() as f64 / bi.graph.num_nodes() as f64;
        assert!((ratio - 20.0).abs() < 1.0, "bipartite ratio {ratio}");
        let sk = &ws[2];
        let ratio = sk.graph.num_edges() as f64 / sk.graph.num_nodes() as f64;
        assert!((ratio - 37.0).abs() < 1.5, "sk ratio {ratio}");
    }

    #[test]
    fn args_cover_all_algorithms() {
        let g = gen::rmat(100, 600, 1);
        for alg in ["avg_teen", "pagerank", "conductance", "sssp", "bc"] {
            assert!(!args_for(alg, &g).is_empty() || alg == "bc");
        }
        let b = gen::bipartite(20, 20, 80, 1);
        assert!(args_for("bipartite", &b).len() == 1);
    }

    #[test]
    fn ckpt_args_apply_builds_config() {
        let args = CkptArgs {
            every: Some(4),
            dir: Some(PathBuf::from("/tmp/snaps")),
            resume: true,
            keep: 2,
            max_restarts: Some(5),
        };
        let config = args.apply(PregelConfig::sequential());
        let ck = config.checkpoint.expect("checkpointing enabled");
        assert_eq!(ck.every, 4);
        assert_eq!(ck.dir, PathBuf::from("/tmp/snaps"));
        assert!(ck.resume);
        assert_eq!(ck.keep, 2);
        assert_eq!(config.recovery.expect("policy").max_restarts, 5);

        let off = CkptArgs::default().apply(PregelConfig::sequential());
        assert!(off.checkpoint.is_none());
        assert!(off.recovery.is_none());
    }

    #[test]
    fn boy_marks_follow_out_edges() {
        let b = gen::bipartite(10, 12, 50, 3);
        let marks = boy_marks(&b);
        for (i, m) in marks.iter().enumerate() {
            if *m {
                assert!(i < 10, "girls never have out-edges");
            }
        }
    }
}
