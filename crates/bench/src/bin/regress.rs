//! The perf-regression gate: diffs two bench snapshots (as written by
//! `figure6 --bench-json`) and exits non-zero on a regression, so CI can
//! hold the line against the committed `BENCH_baseline.json`.
//!
//! ```text
//! regress <baseline.json> <current.json> [--threshold PCT]
//! regress --write-baseline <dest.json> <current.json>
//! ```
//!
//! An entry regresses when its latency is more than `--threshold` percent
//! slower (default 20), when any structural counter (supersteps, message
//! bytes) changed at all, or when it vanished from the current snapshot.
//! `--write-baseline` normalizes a snapshot (schema check, stable entry
//! order) into a baseline file instead of comparing.
//!
//! Exit codes: 0 = no regression, 1 = regression, 2 = usage or I/O error.

use gm_bench::regress::{compare, render, Report};
use std::path::{Path, PathBuf};
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: regress <baseline.json> <current.json> [--threshold PCT]");
    eprintln!("       regress --write-baseline <dest.json> <current.json>");
    exit(2);
}

fn load(path: &Path) -> Report {
    Report::load(path).unwrap_or_else(|e| {
        eprintln!("error: {}: {e}", path.display());
        exit(2);
    })
}

fn main() {
    let mut positional: Vec<PathBuf> = Vec::new();
    let mut threshold: f64 = 20.0;
    let mut write_baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threshold" => match args.next().map(|v| v.parse::<f64>()) {
                Some(Ok(v)) if v >= 0.0 => threshold = v,
                _ => usage(),
            },
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            flag if flag.starts_with('-') => usage(),
            path => positional.push(PathBuf::from(path)),
        }
    }

    if let Some(dest) = write_baseline {
        let [current] = positional.as_slice() else {
            usage();
        };
        let report = load(current);
        if let Err(e) = std::fs::write(&dest, report.to_json()) {
            eprintln!("error: cannot write {}: {e}", dest.display());
            exit(2);
        }
        println!(
            "wrote baseline {} ({} entries)",
            dest.display(),
            report.entries.len()
        );
        return;
    }

    let [baseline, current] = positional.as_slice() else {
        usage();
    };
    let base = load(baseline);
    let cur = load(current);
    let cmp = compare(&base, &cur, threshold);
    print!("{}", render(&cmp, threshold));
    if cmp.regressed() {
        let failing = cmp.deltas.iter().filter(|d| d.regressed).count() + cmp.missing.len();
        eprintln!(
            "FAIL: {failing} entr{} regressed (threshold {threshold}%)",
            if failing == 1 { "y" } else { "ies" }
        );
        exit(1);
    }
    println!(
        "OK: no regressions beyond {threshold}% across {} entries",
        cmp.deltas.len()
    );
}
