//! Ablation of the §4.2 optimizations: supersteps (and run time) of each
//! generated program with State Merging and Intra-Loop State Merging
//! toggled. The paper motivates both as timestep reducers; this quantifies
//! them on every algorithm.

use gm_algorithms::sources;
use gm_bench::{args_for, bench_config, table1_graphs_traced, TraceArgs};
use gm_core::CompileOptions;
use gm_interp::run_compiled;

const VARIANTS: [(&str, CompileOptions); 4] = [
    (
        "none",
        CompileOptions {
            state_merging: false,
            intra_loop_merging: false,
            combiners: false,
            verify: false,
        },
    ),
    (
        "merge",
        CompileOptions {
            state_merging: true,
            intra_loop_merging: false,
            combiners: false,
            verify: false,
        },
    ),
    (
        "merge+intra",
        CompileOptions {
            state_merging: true,
            intra_loop_merging: true,
            combiners: false,
            verify: false,
        },
    ),
    (
        "+combiners",
        CompileOptions {
            state_merging: true,
            intra_loop_merging: true,
            combiners: true,
            verify: false,
        },
    ),
];

fn main() {
    let algorithms: [(&str, &str); 6] = [
        ("avg_teen", sources::AVG_TEEN),
        ("pagerank", sources::PAGERANK),
        ("conductance", sources::CONDUCTANCE),
        ("sssp", sources::SSSP),
        ("bipartite", sources::BIPARTITE_MATCHING),
        ("bc", sources::BC_APPROX),
    ];
    let trace = TraceArgs::from_env();
    let tracer = trace.tracer();
    let workloads = table1_graphs_traced(tracer.as_ref());
    let mut cfg = bench_config();
    if let Some(t) = &tracer {
        cfg = cfg.with_tracer(t.clone());
    }

    println!("Ablation: supersteps / run-time by optimization level");
    println!(
        "{:<12} {:<12} {:>12} {:>12} {:>12} {:>16}",
        "Algorithm", "Graph", "none", "merge", "merge+intra", "+combiners(ext)"
    );
    for (alg, src) in algorithms {
        for w in &workloads {
            // Pair each algorithm with its natural graph, like Figure 6.
            let is_bip = w.name == "bipartite";
            if (alg == "bipartite") != is_bip {
                continue;
            }
            let g = &w.graph;
            let args = args_for(alg, g);
            let mut cells = Vec::new();
            for (_, opts) in VARIANTS {
                let compiled = gm_bench::compile_source_with(src, &opts, tracer.as_ref());
                let start = std::time::Instant::now();
                let out = run_compiled(g, &compiled, &args, 7, &cfg).expect("run");
                let t = start.elapsed();
                cells.push(format!(
                    "{}ss/{}m/{:.0}ms",
                    out.metrics.supersteps,
                    out.metrics.total_messages,
                    t.as_secs_f64() * 1e3
                ));
            }
            println!(
                "{:<12} {:<12} {:>12} {:>12} {:>12} {:>16}",
                alg, w.name, cells[0], cells[1], cells[2], cells[3]
            );
        }
    }
    if let Some(t) = &tracer {
        t.finish().expect("finish trace");
    }
}
