//! `chaos` — the `gm-bench` crash-recovery harness for `gmd`.
//!
//! Spawns a journal-backed daemon, offers checkpoint-armed jobs across
//! several tenants, `kill -9`s the daemon mid-superstep (only once a
//! checkpoint snapshot is durable on disk *and* a job is observably
//! running, so the crash has teeth), restarts it over the same journal,
//! and repeats for `--kills` rounds. At the end every journalled job
//! must reach a terminal `completed` state, and every completed job's
//! result fingerprints must be bit-identical to a fresh, uninterrupted
//! submission of the same spec against the final daemon.
//!
//! ```text
//! chaos --gmd target/release/gmd [--dir PATH] [--graph g=rmat:600:3000:7]
//!       [--jobs 4] [--kills 1] [--tenants acme,globex] [--seed 7] [--keep]
//! ```
//!
//! Exit status: 0 when every job completed with matching fingerprints;
//! 1 otherwise. On failure the scratch directory (journal segments,
//! daemon stderr logs) is always kept and its path printed, so CI can
//! upload it as a post-mortem artifact.

use gm_obs::json::Json;
use gmd::client::Client;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

struct Flags {
    gmd: PathBuf,
    dir: Option<PathBuf>,
    graph: String,
    jobs: usize,
    kills: usize,
    tenants: Vec<String>,
    seed: u64,
    keep: bool,
}

fn usage() -> ! {
    eprintln!("usage: chaos --gmd PATH [--dir PATH] [--graph NAME=SPEC] [--jobs N]");
    eprintln!("             [--kills N] [--tenants a,b] [--seed N] [--keep]");
    std::process::exit(2);
}

fn parse_flags() -> Flags {
    let mut gmd = None;
    let mut flags = Flags {
        gmd: PathBuf::new(),
        dir: None,
        graph: "g=rmat:600:3000:7".to_owned(),
        jobs: 4,
        kills: 1,
        tenants: vec!["acme".to_owned(), "globex".to_owned()],
        seed: 7,
        keep: false,
    };
    let mut args = std::env::args().skip(1);
    let value = |flag: &str, args: &mut dyn Iterator<Item = String>| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            usage()
        })
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--gmd" => gmd = Some(PathBuf::from(value("--gmd", &mut args))),
            "--dir" => flags.dir = Some(PathBuf::from(value("--dir", &mut args))),
            "--graph" => flags.graph = value("--graph", &mut args),
            "--jobs" => {
                flags.jobs = value("--jobs", &mut args).parse().unwrap_or_else(|e| {
                    eprintln!("error: bad --jobs: {e}");
                    usage()
                })
            }
            "--kills" => {
                flags.kills = value("--kills", &mut args).parse().unwrap_or_else(|e| {
                    eprintln!("error: bad --kills: {e}");
                    usage()
                })
            }
            "--tenants" => {
                flags.tenants = value("--tenants", &mut args)
                    .split(',')
                    .map(str::trim)
                    .filter(|p| !p.is_empty())
                    .map(str::to_owned)
                    .collect()
            }
            "--seed" => {
                flags.seed = value("--seed", &mut args).parse().unwrap_or_else(|e| {
                    eprintln!("error: bad --seed: {e}");
                    usage()
                })
            }
            "--keep" => flags.keep = true,
            other => {
                eprintln!("error: unknown flag {other}");
                usage()
            }
        }
    }
    let Some(gmd) = gmd else {
        eprintln!("error: --gmd is required");
        usage()
    };
    flags.gmd = gmd;
    if flags.jobs == 0 || flags.tenants.is_empty() || !flags.graph.contains('=') {
        eprintln!("error: --jobs and --tenants must be non-empty, --graph must be NAME=SPEC");
        usage()
    }
    flags
}

/// Kills the daemon on drop so an orchestration failure never leaks a
/// process.
struct Guard(Child);

impl Drop for Guard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_daemon(flags: &Flags, dir: &Path, leg: usize) -> Guard {
    let addr_file = dir.join("addr");
    let _ = std::fs::remove_file(&addr_file);
    let stderr =
        std::fs::File::create(dir.join(format!("gmd-leg{leg}.stderr"))).expect("stderr file");
    let child = Command::new(&flags.gmd)
        .args([
            "--graph",
            &flags.graph,
            "--listen",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().expect("utf-8 path"),
            "--journal-dir",
            dir.join("journal").to_str().expect("utf-8 path"),
            "--checkpoint-every",
            "1",
            "--workers",
            "2",
            "--max-concurrent",
            "2",
            "--drain-timeout-ms",
            "2000",
        ])
        .stdout(Stdio::null())
        .stderr(stderr)
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("chaos: cannot spawn {}: {e}", flags.gmd.display());
            std::process::exit(1);
        });
    Guard(child)
}

fn wait_addr(dir: &Path) -> SocketAddr {
    let addr_file = dir.join("addr");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if let Ok(addr) = text.trim().parse() {
                return addr;
            }
        }
        if Instant::now() >= deadline {
            eprintln!("chaos: daemon never wrote {}", addr_file.display());
            std::process::exit(1);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A deliberately long PageRank (`e` never converges) with per-superstep
/// checkpoints, so a SIGKILL reliably lands mid-run with durable state.
fn job_body(tenant: &str, graph: &str, seed: u64) -> String {
    format!(
        r#"{{"tenant":"{tenant}","graph":"{graph}","program":"pagerank",
            "args":{{"e":1e-30,"d":0.85,"max_iter":60}},
            "seed":{seed},"workers":2,"checkpoint_every":1}}"#
    )
}

/// True once some checkpoint snapshot file is durable under the journal.
fn snapshot_on_disk(journal: &Path) -> bool {
    std::fs::read_dir(journal.join("ckpt"))
        .map(|jobs| {
            jobs.flatten().any(|job| {
                std::fs::read_dir(job.path())
                    .map(|files| files.flatten().next().is_some())
                    .unwrap_or(false)
            })
        })
        .unwrap_or(false)
}

fn status_of(client: &Client, id: &str) -> Option<Json> {
    client
        .get_json(&format!("/v1/jobs/{id}"))
        .ok()
        .map(|(_, doc)| doc)
}

fn fingerprints_of(status: &Json) -> BTreeMap<String, String> {
    let Some(Json::Obj(map)) = status.get("result").and_then(|r| r.get("fingerprints")) else {
        return BTreeMap::new();
    };
    map.iter()
        .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_owned())))
        .collect()
}

fn main() -> ExitCode {
    let flags = parse_flags();
    let graph_name = flags.graph.split('=').next().expect("validated").to_owned();
    let dir = flags
        .dir
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("gmd-chaos-{}", std::process::id())));
    let _ = std::fs::create_dir_all(&dir);
    let journal = dir.join("journal");
    eprintln!("chaos: scratch dir {}", dir.display());

    // Leg 0: offer the full job set, then crash under it --kills times.
    let mut daemon = spawn_daemon(&flags, &dir, 0);
    let mut client = Client::new(wait_addr(&dir))
        .with_timeout(Duration::from_secs(10))
        .with_reconnect(Duration::from_secs(15));
    let mut ids = Vec::new();
    for i in 0..flags.jobs {
        let tenant = &flags.tenants[i % flags.tenants.len()];
        match client.submit(&job_body(tenant, &graph_name, flags.seed)) {
            Ok(id) => ids.push(id),
            Err(e) => {
                eprintln!("chaos: submission {i} rejected: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    for round in 1..=flags.kills {
        // Kill only once the crash will have teeth; if every job already
        // finished there is nothing left worth crashing into.
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut armed = false;
        while Instant::now() < deadline {
            let statuses: Vec<Option<String>> = ids
                .iter()
                .map(|id| {
                    status_of(&client, id)
                        .and_then(|doc| doc.get("status").and_then(Json::as_str).map(str::to_owned))
                })
                .collect();
            let running = statuses.iter().any(|s| s.as_deref() == Some("running"));
            let all_terminal = statuses
                .iter()
                .all(|s| matches!(s.as_deref(), Some("completed") | Some("failed")));
            if all_terminal {
                break;
            }
            if running && snapshot_on_disk(&journal) {
                armed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        if !armed {
            eprintln!("chaos: round {round}: nothing left to crash into");
            break;
        }
        eprintln!("chaos: round {round}: SIGKILL mid-superstep");
        daemon.0.kill().expect("SIGKILL");
        daemon.0.wait().expect("reap");
        daemon = spawn_daemon(&flags, &dir, round);
        // The kernel may hand the restarted daemon a different ephemeral
        // port; rebind the client to wherever this leg landed.
        client = Client::new(wait_addr(&dir))
            .with_timeout(Duration::from_secs(10))
            .with_reconnect(Duration::from_secs(15));
    }

    // Every journalled job must reach a terminal state after replay.
    let mut failures = 0usize;
    let mut completed = Vec::new();
    for id in &ids {
        match client.wait(id, Duration::from_secs(120)) {
            Ok(status) => {
                if status.get("status").and_then(Json::as_str) == Some("completed") {
                    completed.push((id.clone(), fingerprints_of(&status)));
                } else {
                    eprintln!("chaos: job {id} terminal but not completed: {status:?}");
                    failures += 1;
                }
            }
            Err(e) => {
                eprintln!("chaos: job {id} never reached a terminal state: {e}");
                failures += 1;
            }
        }
    }

    // Bit-identity oracle: a fresh, uninterrupted run of the same spec
    // on the surviving daemon. Every crashed-and-recovered job must
    // match it fingerprint-for-fingerprint.
    let oracle_id = match client.submit(&job_body(&flags.tenants[0], &graph_name, flags.seed)) {
        Ok(id) => id,
        Err(e) => {
            eprintln!("chaos: oracle submission rejected: {e}");
            return ExitCode::FAILURE;
        }
    };
    let oracle = match client.wait(&oracle_id, Duration::from_secs(120)) {
        Ok(status) => fingerprints_of(&status),
        Err(e) => {
            eprintln!("chaos: oracle job failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if oracle.is_empty() {
        eprintln!("chaos: oracle run exported no fingerprints");
        return ExitCode::FAILURE;
    }
    for (id, prints) in &completed {
        if prints != &oracle {
            eprintln!("chaos: job {id} fingerprints diverged from the uninterrupted oracle:");
            eprintln!("chaos:   got  {prints:?}");
            eprintln!("chaos:   want {oracle:?}");
            failures += 1;
        }
    }
    drop(daemon);

    eprintln!(
        "chaos: {} jobs, {} completed bit-identically, {} failures",
        ids.len(),
        completed.len(),
        failures
    );
    if failures > 0 {
        eprintln!("chaos: FAILED — artifacts kept in {}", dir.display());
        return ExitCode::FAILURE;
    }
    if !flags.keep && flags.dir.is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    eprintln!("chaos: PASSED");
    ExitCode::SUCCESS
}
