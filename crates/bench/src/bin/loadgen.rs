//! `loadgen` — a load-test harness for a running `gmd` daemon.
//!
//! Drives N concurrent clients against the serving API with a mixed
//! workload, in either **closed loop** (each client submits, waits for
//! the terminal state, submits again — measures capacity) or **open
//! loop** (each client submits on a fixed schedule regardless of
//! completion, then collects — measures behaviour under offered load).
//! Reports throughput and end-to-end latency percentiles, verifies that
//! every repetition of an identical job spec returned identical result
//! fingerprints, and can write the numbers as a `regress`-schema
//! snapshot for the perf gate.
//!
//! ```text
//! loadgen --addr 127.0.0.1:8080 [--clients 4] [--requests 8]
//!         [--rate-rps N]                # open loop at N submits/sec/client
//!         [--tenants acme,globex] [--mix pagerank,sssp,inline-pagerank]
//!         [--graphs g1,g2]              # default: everything the daemon loaded
//!         [--seed 7] [--snapshot PATH] [--expect-success]
//! ```
//!
//! Exit status: 0 on a clean run; 1 when `--expect-success` was given and
//! any job failed, any submission was rejected, or fingerprints diverged.

use gm_bench::regress::{Entry, Report};
use gm_obs::json::Json;
use gmd::client::{Client, SubmitError};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct Flags {
    addr: SocketAddr,
    clients: usize,
    /// Submissions per client.
    requests: usize,
    /// `Some(rps)` = open loop at that per-client rate; `None` = closed.
    rate_rps: Option<f64>,
    tenants: Vec<String>,
    mix: Vec<String>,
    graphs: Vec<String>,
    seed: u64,
    snapshot: Option<String>,
    expect_success: bool,
    /// `Some(window)` = survive daemon restarts: connection-refused and
    /// connection-reset are retried with capped backoff for this long.
    reconnect: Option<Duration>,
}

fn usage() -> ! {
    eprintln!("usage: loadgen --addr <host:port> [--clients N] [--requests N] [--rate-rps R]");
    eprintln!(
        "               [--tenants a,b] [--mix pagerank,sssp,inline-pagerank] [--graphs g1,g2]"
    );
    eprintln!("               [--seed N] [--snapshot PATH] [--expect-success] [--reconnect-ms N]");
    std::process::exit(2);
}

fn parse_flags() -> Flags {
    let mut addr = None;
    let mut flags = Flags {
        addr: "127.0.0.1:0".parse().expect("placeholder addr"),
        clients: 4,
        requests: 8,
        rate_rps: None,
        tenants: vec!["acme".to_owned(), "globex".to_owned()],
        mix: vec!["pagerank".to_owned(), "sssp".to_owned()],
        graphs: Vec::new(),
        seed: 7,
        snapshot: None,
        expect_success: false,
        reconnect: None,
    };
    let mut args = std::env::args().skip(1);
    let value = |flag: &str, args: &mut dyn Iterator<Item = String>| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("error: {flag} needs a value");
            usage()
        })
    };
    let list = |s: String| -> Vec<String> {
        s.split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(str::to_owned)
            .collect()
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => match value("--addr", &mut args).parse() {
                Ok(parsed) => addr = Some(parsed),
                Err(e) => {
                    eprintln!("error: bad --addr: {e}");
                    usage()
                }
            },
            "--clients" => {
                flags.clients = value("--clients", &mut args).parse().unwrap_or_else(|e| {
                    eprintln!("error: bad --clients: {e}");
                    usage()
                })
            }
            "--requests" => {
                flags.requests = value("--requests", &mut args).parse().unwrap_or_else(|e| {
                    eprintln!("error: bad --requests: {e}");
                    usage()
                })
            }
            "--rate-rps" => {
                flags.rate_rps = Some(value("--rate-rps", &mut args).parse().unwrap_or_else(|e| {
                    eprintln!("error: bad --rate-rps: {e}");
                    usage()
                }))
            }
            "--tenants" => flags.tenants = list(value("--tenants", &mut args)),
            "--mix" => flags.mix = list(value("--mix", &mut args)),
            "--graphs" => flags.graphs = list(value("--graphs", &mut args)),
            "--seed" => {
                flags.seed = value("--seed", &mut args).parse().unwrap_or_else(|e| {
                    eprintln!("error: bad --seed: {e}");
                    usage()
                })
            }
            "--snapshot" => flags.snapshot = Some(value("--snapshot", &mut args)),
            "--expect-success" => flags.expect_success = true,
            "--reconnect-ms" => {
                flags.reconnect = Some(Duration::from_millis(
                    value("--reconnect-ms", &mut args)
                        .parse()
                        .unwrap_or_else(|e| {
                            eprintln!("error: bad --reconnect-ms: {e}");
                            usage()
                        }),
                ))
            }
            other => {
                eprintln!("error: unknown flag {other}");
                usage()
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("error: --addr is required");
        usage()
    };
    flags.addr = addr;
    if flags.clients == 0 || flags.requests == 0 || flags.tenants.is_empty() || flags.mix.is_empty()
    {
        eprintln!("error: --clients, --requests, --tenants and --mix must be non-empty");
        usage()
    }
    flags
}

/// Builds the job document for one step of the mix. The returned key
/// identifies the exact spec, so repetitions can be fingerprint-checked
/// against each other.
fn job_for(kind: &str, tenant: &str, graph: &str, seed: u64, step: usize) -> (String, String) {
    match kind {
        "pagerank" => (
            format!("pagerank:{graph}"),
            format!(
                r#"{{"tenant":"{tenant}","graph":"{graph}","program":"pagerank","args":{{"e":1e-8,"d":0.85,"max_iter":10}},"seed":{seed}}}"#
            ),
        ),
        "sssp" => {
            // A small rotating root set: varied work, but each root value
            // still repeats often enough to exercise the consistency check.
            let root = step % 4;
            (
                format!("sssp:{graph}:{root}"),
                format!(
                    r#"{{"tenant":"{tenant}","graph":"{graph}","program":"sssp","args":{{"root":"n:{root}"}},"seed":{seed}}}"#
                ),
            )
        }
        "inline-pagerank" => {
            let src = gm_algorithms::sources::PAGERANK
                .replace('"', "\\\"")
                .replace('\n', "\\n");
            (
                format!("pagerank:{graph}"),
                format!(
                    r#"{{"tenant":"{tenant}","graph":"{graph}","source":"{src}","args":{{"e":1e-8,"d":0.85,"max_iter":10}},"seed":{seed}}}"#
                ),
            )
        }
        other => {
            eprintln!("error: unknown mix entry {other:?} (want pagerank, sssp, inline-pagerank)");
            std::process::exit(2);
        }
    }
}

#[derive(Default)]
struct Tally {
    submitted: u64,
    completed: u64,
    failed: u64,
    rejected: u64,
    transport_errors: u64,
    /// End-to-end latency (submit to observed terminal state), ms.
    latencies_ms: Vec<f64>,
    /// spec key -> set of observed fingerprint maps (rendered).
    fingerprints: BTreeMap<String, Vec<String>>,
}

fn render_fingerprints(status: &Json) -> String {
    status
        .get("result")
        .and_then(|r| r.get("fingerprints"))
        .map(Json::to_string)
        .unwrap_or_default()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn client_loop(flags: &Flags, client_idx: usize, graphs: &[String], tally: &Mutex<Tally>) {
    let mut client = Client::new(flags.addr).with_timeout(Duration::from_secs(30));
    if let Some(window) = flags.reconnect {
        client = client.with_reconnect(window);
    }
    let tenant = &flags.tenants[client_idx % flags.tenants.len()];
    let interval = flags.rate_rps.map(|rps| Duration::from_secs_f64(1.0 / rps));
    let wait_budget = Duration::from_secs(120);

    // Open loop: all submissions first (on schedule), collection after.
    // Closed loop: submit-wait-submit.
    let mut pending: Vec<(String, String, Instant)> = Vec::new();
    let started = Instant::now();
    for step in 0..flags.requests {
        if let Some(interval) = interval {
            let due = started + interval.mul_f64(step as f64);
            if let Some(sleep) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(sleep);
            }
        }
        let kind = &flags.mix[(client_idx + step) % flags.mix.len()];
        let graph = &graphs[(client_idx + step) % graphs.len()];
        let (key, body) = job_for(kind, tenant, graph, flags.seed, step);
        let submitted_at = Instant::now();
        tally.lock().unwrap().submitted += 1;
        match client.submit(&body) {
            Ok(id) => pending.push((id, key, submitted_at)),
            Err(SubmitError::Rejected { .. }) => tally.lock().unwrap().rejected += 1,
            Err(SubmitError::Transport(_)) => tally.lock().unwrap().transport_errors += 1,
        }
        if interval.is_none() {
            // Closed loop drains immediately.
            for (id, key, at) in pending.drain(..) {
                collect(&client, &id, &key, at, wait_budget, tally);
            }
        }
    }
    for (id, key, at) in pending.drain(..) {
        collect(&client, &id, &key, at, wait_budget, tally);
    }
}

fn collect(
    client: &Client,
    id: &str,
    key: &str,
    submitted_at: Instant,
    wait_budget: Duration,
    tally: &Mutex<Tally>,
) {
    match client.wait(id, wait_budget) {
        Ok(status) => {
            let latency = submitted_at.elapsed().as_secs_f64() * 1e3;
            let mut t = tally.lock().unwrap();
            t.latencies_ms.push(latency);
            if status.get("status").and_then(Json::as_str) == Some("completed") {
                t.completed += 1;
                t.fingerprints
                    .entry(key.to_owned())
                    .or_default()
                    .push(render_fingerprints(&status));
            } else {
                t.failed += 1;
                eprintln!("loadgen: job {id} ({key}) failed: {status}");
            }
        }
        Err(e) => {
            tally.lock().unwrap().transport_errors += 1;
            eprintln!("loadgen: job {id} ({key}): {e}");
        }
    }
}

fn main() -> ExitCode {
    let flags = parse_flags();
    let client = Client::new(flags.addr).with_timeout(Duration::from_secs(10));

    let graphs: Vec<String> = if flags.graphs.is_empty() {
        match client.get_json("/v1/graphs") {
            Ok((200, doc)) => doc
                .get("graphs")
                .and_then(Json::as_arr)
                .map(|arr| {
                    arr.iter()
                        .filter_map(|g| g.get("name").and_then(Json::as_str))
                        .map(str::to_owned)
                        .collect()
                })
                .unwrap_or_default(),
            Ok((status, _)) => {
                eprintln!("loadgen: GET /v1/graphs returned {status}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("loadgen: cannot reach daemon at {}: {e}", flags.addr);
                return ExitCode::FAILURE;
            }
        }
    } else {
        flags.graphs.clone()
    };
    if graphs.is_empty() {
        eprintln!("loadgen: the daemon has no graphs loaded");
        return ExitCode::FAILURE;
    }

    let mode = match flags.rate_rps {
        Some(rps) => format!("open loop @ {rps} rps/client"),
        None => "closed loop".to_owned(),
    };
    eprintln!(
        "loadgen: {} clients x {} requests ({mode}), tenants {:?}, mix {:?}, graphs {:?}",
        flags.clients, flags.requests, flags.tenants, flags.mix, graphs
    );

    let tally = Mutex::new(Tally::default());
    let wall = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..flags.clients {
            let (flags, graphs, tally) = (&flags, &graphs, &tally);
            scope.spawn(move || client_loop(flags, i, graphs, tally));
        }
    });
    let wall_s = wall.elapsed().as_secs_f64();

    let mut tally = tally.into_inner().unwrap();
    tally
        .latencies_ms
        .sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let p50 = percentile(&tally.latencies_ms, 50.0);
    let p99 = percentile(&tally.latencies_ms, 99.0);
    let throughput = tally.completed as f64 / wall_s.max(1e-9);

    // Every repetition of an identical spec must have produced identical
    // result fingerprints — the serving path may never trade correctness
    // for concurrency.
    let mut divergent = 0usize;
    for (key, prints) in &tally.fingerprints {
        if prints.windows(2).any(|w| w[0] != w[1]) {
            eprintln!("loadgen: DIVERGENT fingerprints for {key}: {prints:?}");
            divergent += 1;
        }
    }

    println!("loadgen results ({mode}):");
    println!("  wall time          {:.1} ms", wall_s * 1e3);
    println!("  submitted          {}", tally.submitted);
    println!("  completed          {}", tally.completed);
    println!("  failed             {}", tally.failed);
    println!("  rejected           {}", tally.rejected);
    println!("  transport errors   {}", tally.transport_errors);
    println!("  throughput         {throughput:.2} jobs/s");
    println!("  latency p50        {p50:.1} ms");
    println!("  latency p99        {p99:.1} ms");
    println!(
        "  fingerprint check  {} spec(s), {} divergent",
        tally.fingerprints.len(),
        divergent
    );

    if let Some(path) = &flags.snapshot {
        let report = Report {
            entries: vec![
                Entry {
                    name: "loadgen/job_p50".to_owned(),
                    ms: p50,
                    supersteps: None,
                    message_bytes: None,
                },
                Entry {
                    name: "loadgen/job_p99".to_owned(),
                    ms: p99,
                    supersteps: None,
                    message_bytes: None,
                },
                // Schema 1 entries carry one number named `ms`; for this
                // row it holds jobs/second (the name makes the unit
                // explicit, and the gate only tracks relative drift).
                Entry {
                    name: "loadgen/throughput_jobs_per_s".to_owned(),
                    ms: throughput,
                    supersteps: None,
                    message_bytes: None,
                },
            ],
        };
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("loadgen: cannot write snapshot {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("snapshot written to {path}");
    }

    let clean = tally.failed == 0
        && tally.rejected == 0
        && tally.transport_errors == 0
        && divergent == 0
        && tally.completed == tally.submitted;
    if flags.expect_success && !clean {
        eprintln!("loadgen: --expect-success and the run was not clean");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
