//! Reproduces **Table 3** — the ✓-matrix of compiler transformations
//! applied per algorithm, straight from the compiler's transformation
//! report.

use gm_algorithms::sources;
use gm_core::report::Step;
use gm_core::CompileOptions;

const COLS: [(&str, &str); 6] = [
    ("AvgTeen", "avg"),
    ("PageRank", "pr"),
    ("Conduct", "con"),
    ("SSSP", "sssp"),
    ("Bipartite", "bip"),
    ("BC", "bc"),
];

fn main() {
    let reports: Vec<_> = sources::ALL
        .iter()
        .map(|(_, src)| {
            gm_core::compile(src, &CompileOptions::default())
                .expect("embedded source compiles")
                .report
        })
        .collect();

    println!("Table 3: compiler transformations applied per algorithm");
    print!("{:<22}", "Transformation");
    for (c, _) in COLS {
        print!(" {c:>9}");
    }
    println!();
    for step in Step::ALL {
        print!("{:<22}", step.label());
        for report in &reports {
            print!(" {:>9}", if report.applied(step) { "\u{2713}" } else { "" });
        }
        println!();
    }
}
