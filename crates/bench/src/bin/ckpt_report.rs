//! Checkpoint cost report: write/restore overhead of gm-ckpt snapshots as
//! a function of the checkpoint interval, on the Table 1 twitter stand-in
//! running manual PageRank. Feeds the fault-tolerance table in
//! EXPERIMENTS.md.
//!
//! For each interval the harness measures a full checkpointed run against
//! the uncheckpointed baseline, then kills the run at a late superstep
//! (deterministic fault injection) and measures recovery: the restore
//! cost and the wall-clock of finishing from the newest snapshot. Exact
//! recovery is asserted — the recovered PageRank vector must equal the
//! uninterrupted one bit-for-bit.
//!
//! `GM_SCALE` grows the graph, `GM_REPS` sets the repetition count
//! (default 3, minimum is taken).

use gm_algorithms::manual::run_pagerank;
use gm_bench::{bench_config, table1_graphs, time_min};
use gm_pregel::{CheckpointConfig, FaultPlan, PregelConfig, RecoveryPolicy};

fn reps() -> usize {
    std::env::var("GM_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

fn main() {
    let workloads = table1_graphs();
    let g = &workloads[0].graph; // twitter stand-in
    let reps = reps();
    let dir_root = std::env::temp_dir().join(format!("gm-ckpt-report-{}", std::process::id()));

    let base_cfg = bench_config();
    let (base_t, base_m) = time_min(reps, || {
        let out = run_pagerank(g, 1e-9, 0.85, 10, &base_cfg).expect("baseline");
        (out.pr, out.metrics)
    });
    let base_ms = base_t.as_secs_f64() * 1e3;
    let baseline = run_pagerank(g, 1e-9, 0.85, 10, &base_cfg).expect("baseline");
    println!(
        "PageRank on {} ({} nodes / {} edges), {} supersteps, baseline {:.1} ms",
        workloads[0].name,
        g.num_nodes(),
        g.num_edges(),
        base_m.supersteps,
        base_ms
    );
    println!();
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "interval",
        "run (ms)",
        "overhead",
        "snapshots",
        "MB",
        "ckpt (ms)",
        "restore (ms)",
        "rerun (ms)"
    );

    let fail_at = base_m.supersteps.saturating_sub(2).max(1);
    for every in [1u32, 2, 4, 8] {
        let dir = dir_root.join(format!("every-{every}"));

        // Full checkpointed run: snapshot cost folded into wall-clock.
        let cfg = PregelConfig {
            checkpoint: Some(CheckpointConfig::new(dir.clone(), every).with_keep(2)),
            ..base_cfg.clone()
        };
        let (t, m) = time_min(reps, || {
            let _ = std::fs::remove_dir_all(&dir);
            let out = run_pagerank(g, 1e-9, 0.85, 10, &cfg).expect("checkpointed run");
            (out.pr, out.metrics)
        });
        let run_ms = t.as_secs_f64() * 1e3;

        // Crash two supersteps from the end, recover from the newest
        // snapshot, and verify the result is identical to the baseline.
        let _ = std::fs::remove_dir_all(&dir);
        let recover_cfg = PregelConfig {
            checkpoint: Some(CheckpointConfig::new(dir.clone(), every).with_keep(2)),
            faults: FaultPlan::builder()
                .panic_in_compute(fail_at, Some(0))
                .build(),
            recovery: Some(RecoveryPolicy::with_max_restarts(1)),
            ..base_cfg.clone()
        };
        let start = std::time::Instant::now();
        let out = gm_algorithms::manual::run_pagerank(g, 1e-9, 0.85, 10, &recover_cfg)
            .expect("recovered run");
        let rerun_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(out.metrics.recovery.restarts, 1, "fault must trip once");
        assert_eq!(out.pr, baseline.pr, "recovery must be exact");
        assert_eq!(out.iterations, baseline.iterations);

        println!(
            "{:>8} {:>10.1} {:>9.1}% {:>12} {:>10.2} {:>10.1} {:>12.1} {:>12.1}",
            every,
            run_ms,
            (run_ms / base_ms - 1.0) * 100.0,
            m.recovery.checkpoints_written,
            m.recovery.snapshot_bytes as f64 / 1e6,
            m.recovery.checkpoint_time.as_secs_f64() * 1e3,
            out.metrics.recovery.restore_time.as_secs_f64() * 1e3,
            rerun_ms,
        );
    }
    println!();
    println!("recovery verified exact at every interval (fault at superstep {fail_at}, 1 restart)");
    let _ = std::fs::remove_dir_all(&dir_root);
}
