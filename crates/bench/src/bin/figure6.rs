//! Reproduces **Figure 6** — run-time of compiler-generated Pregel programs
//! normalized against the manual implementations, for five algorithms on
//! the three Table 1 graphs, plus the paper's structural observation that
//! timesteps and network I/O match exactly.
//!
//! Run with `--release`; `GM_SCALE` grows the graphs, `GM_REPS` sets the
//! repetition count (default 3, minimum is taken). `--trace <path>`
//! (plus `--trace-format jsonl|chrome`) writes an event log covering
//! graph generation, every compile, and every generated-side run, and
//! drops a `<stem>.<alg>.<graph>.metrics.json` next to it per row.
//! `--checkpoint-every N` (with `--checkpoint-dir`/`--keep-snapshots`)
//! checkpoints every run, putting the snapshot overhead into the measured
//! times — handy for the fault-tolerance cost table in EXPERIMENTS.md.
//! `GM_SCHEDULE=auto|pull` selects the message direction (the schedule
//! line and per-superstep direction decisions are printed; structural
//! parity must hold regardless, since the gather is metered identically).
//! `--metrics-listen <addr>` serves live Prometheus metrics while the
//! benchmark runs, `--metrics-file <path>` writes the final exposition,
//! and `--bench-json <path>` writes the snapshot `regress` diffs against
//! `BENCH_baseline.json`.
//!
//! SIGINT/SIGTERM shut down gracefully: the current workload finishes,
//! remaining workloads are skipped, and the partial table, metrics
//! exposition, and trace are still flushed before exit.

use gm_algorithms::{manual, sources};
use gm_bench::regress::{Entry, Report};
use gm_bench::{
    args_for, bench_config, boy_marks, sssp_root, table1_graphs_traced, time_min, weights,
    CkptArgs, MetricsArgs, TraceArgs,
};
use gm_core::CompileOptions;
use gm_graph::Graph;
use gm_interp::run_compiled;
use gm_obs::Tracer;
use gm_pregel::Metrics;
use std::path::PathBuf;

fn reps() -> usize {
    std::env::var("GM_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

/// Parses `--bench-json <path>` out of the process arguments.
fn bench_json_path() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--bench-json" {
            match args.next() {
                Some(p) => return Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --bench-json needs a path");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

struct Row {
    algorithm: &'static str,
    graph: &'static str,
    generated_ms: f64,
    native_ms: f64,
    manual_ms: f64,
    generated: Metrics,
    native: Metrics,
    manual: Metrics,
}

fn run_generated(
    alg: &'static str,
    src: &str,
    g: &Graph,
    tracer: Option<&Tracer>,
    ckpt: &CkptArgs,
    metrics: &MetricsArgs,
) -> (f64, Metrics) {
    let compiled = gm_bench::compile_source_with(src, &CompileOptions::default(), tracer);
    let args = args_for(alg, g);
    let mut cfg = metrics.apply(ckpt.apply(bench_config()));
    if let Some(t) = tracer {
        cfg = cfg.with_tracer(t.clone());
    }
    let (t, m) = time_min(reps(), || {
        let out = run_compiled(g, &compiled, &args, 7, &cfg).expect("generated run");
        ((), out.metrics)
    });
    (t.as_secs_f64() * 1e3, m)
}

/// The compiled-in `rustgen` module for a bench workload key.
fn native_entry(alg: &str) -> &'static gm_algorithms::native::NativeAlgorithm {
    let stem = match alg {
        "bipartite" => "bipartite_matching",
        "bc" => "bc_approx",
        other => other,
    };
    gm_algorithms::native::ALL
        .iter()
        .find(|a| a.stem == stem)
        .unwrap_or_else(|| panic!("no native module for workload {alg}"))
}

/// Times the native (`gmc emit-rust`) backend on the same workload.
fn run_native(
    alg: &'static str,
    g: &Graph,
    ckpt: &CkptArgs,
    metrics: &MetricsArgs,
) -> (f64, Metrics) {
    let native = native_entry(alg);
    let args = args_for(alg, g);
    let cfg = metrics.apply(ckpt.apply(bench_config()));
    let (t, m) = time_min(reps(), || {
        let out = (native.run)(g, &args, 7, &cfg).expect("native run");
        ((), out.metrics)
    });
    (t.as_secs_f64() * 1e3, m)
}

fn main() {
    let trace = TraceArgs::from_env();
    let ckpt = CkptArgs::from_env();
    let metrics = MetricsArgs::from_env();
    let bench_json = bench_json_path();
    gm_obs::signal::install();
    let _server = metrics.serve();
    let tracer = trace.tracer();
    let tracer = tracer.as_ref();
    let workloads = table1_graphs_traced(tracer);
    let mut rows: Vec<Row> = Vec::new();
    let cfg = metrics.apply(ckpt.apply(bench_config()));

    for w in &workloads {
        if gm_obs::signal::requested() {
            eprintln!(
                "figure6: shutdown requested, skipping remaining workloads ({} rows measured)",
                rows.len()
            );
            break;
        }
        let g = &w.graph;
        // Bipartite matching only runs on the bipartite graph (as in the
        // paper, which pairs it with the synthetic random graph).
        if w.name == "bipartite" {
            let marks = boy_marks(g);
            let (gen_ms, gen_m) = run_generated(
                "bipartite",
                sources::BIPARTITE_MATCHING,
                g,
                tracer,
                &ckpt,
                &metrics,
            );
            trace.write_metrics_json(&format!("bipartite.{}", w.name), &gen_m);
            let (nat_ms, nat_m) = run_native("bipartite", g, &ckpt, &metrics);
            let (man_t, man_m) = time_min(reps(), || {
                let out = manual::run_bipartite_matching(g, &marks, &cfg).expect("manual run");
                ((), out.metrics)
            });
            rows.push(Row {
                algorithm: "Bipartite",
                graph: w.name,
                generated_ms: gen_ms,
                native_ms: nat_ms,
                manual_ms: man_t.as_secs_f64() * 1e3,
                generated: gen_m,
                native: nat_m,
                manual: man_m,
            });
            continue;
        }

        let ages = gm_bench::ages(g);
        let (gen_ms, gen_m) =
            run_generated("avg_teen", sources::AVG_TEEN, g, tracer, &ckpt, &metrics);
        trace.write_metrics_json(&format!("avg_teen.{}", w.name), &gen_m);
        let (nat_ms, nat_m) = run_native("avg_teen", g, &ckpt, &metrics);
        let (man_t, man_m) = time_min(reps(), || {
            let out = manual::run_avg_teen(g, &ages, 25, &cfg).expect("manual run");
            ((), out.metrics)
        });
        rows.push(Row {
            algorithm: "AvgTeen",
            graph: w.name,
            generated_ms: gen_ms,
            native_ms: nat_ms,
            manual_ms: man_t.as_secs_f64() * 1e3,
            generated: gen_m,
            native: nat_m,
            manual: man_m,
        });

        let (gen_ms, gen_m) =
            run_generated("pagerank", sources::PAGERANK, g, tracer, &ckpt, &metrics);
        trace.write_metrics_json(&format!("pagerank.{}", w.name), &gen_m);
        let (nat_ms, nat_m) = run_native("pagerank", g, &ckpt, &metrics);
        let (man_t, man_m) = time_min(reps(), || {
            let out = manual::run_pagerank(g, 1e-9, 0.85, 10, &cfg).expect("manual run");
            ((), out.metrics)
        });
        rows.push(Row {
            algorithm: "PageRank",
            graph: w.name,
            generated_ms: gen_ms,
            native_ms: nat_ms,
            manual_ms: man_t.as_secs_f64() * 1e3,
            generated: gen_m,
            native: nat_m,
            manual: man_m,
        });

        let member = gm_bench::membership(g);
        let (gen_ms, gen_m) = run_generated(
            "conductance",
            sources::CONDUCTANCE,
            g,
            tracer,
            &ckpt,
            &metrics,
        );
        trace.write_metrics_json(&format!("conductance.{}", w.name), &gen_m);
        let (nat_ms, nat_m) = run_native("conductance", g, &ckpt, &metrics);
        let (man_t, man_m) = time_min(reps(), || {
            let out = manual::run_conductance(g, &member, &cfg).expect("manual run");
            ((), out.metrics)
        });
        rows.push(Row {
            algorithm: "Conduct",
            graph: w.name,
            generated_ms: gen_ms,
            native_ms: nat_ms,
            manual_ms: man_t.as_secs_f64() * 1e3,
            generated: gen_m,
            native: nat_m,
            manual: man_m,
        });

        let ws = weights(g);
        let (gen_ms, gen_m) = run_generated("sssp", sources::SSSP, g, tracer, &ckpt, &metrics);
        trace.write_metrics_json(&format!("sssp.{}", w.name), &gen_m);
        let (nat_ms, nat_m) = run_native("sssp", g, &ckpt, &metrics);
        let (man_t, man_m) = time_min(reps(), || {
            let out = manual::run_sssp(g, sssp_root(g), &ws, &cfg).expect("manual run");
            ((), out.metrics)
        });
        rows.push(Row {
            algorithm: "SSSP",
            graph: w.name,
            generated_ms: gen_ms,
            native_ms: nat_ms,
            manual_ms: man_t.as_secs_f64() * 1e3,
            generated: gen_m,
            native: nat_m,
            manual: man_m,
        });
    }

    println!("Figure 6: generated (interp + native) vs manual Pregel (normalized run-time)");
    println!(
        "schedule: {:?} (GM_SCHEDULE; dense threshold {})",
        cfg.schedule, cfg.dense_threshold
    );
    println!(
        "{:<10} {:<10} {:>10} {:>10} {:>10} {:>8} {:>8} {:>12} {:>14}",
        "Algorithm",
        "Graph",
        "interp",
        "native",
        "manual",
        "int/man",
        "nat/man",
        "supersteps",
        "net I/O match"
    );
    let mut all_structural_match = true;
    for r in &rows {
        let steps_match = r.generated.supersteps == r.manual.supersteps
            && r.native.supersteps == r.manual.supersteps;
        let bytes_match = r.generated.total_message_bytes == r.manual.total_message_bytes
            && r.native.total_message_bytes == r.manual.total_message_bytes;
        all_structural_match &= steps_match && bytes_match;
        println!(
            "{:<10} {:<10} {:>10.1} {:>10.1} {:>10.1} {:>8.2} {:>8.2} {:>5}={:<5} {:>9}={:<9}",
            r.algorithm,
            r.graph,
            r.generated_ms,
            r.native_ms,
            r.manual_ms,
            r.generated_ms / r.manual_ms,
            r.native_ms / r.manual_ms,
            r.generated.supersteps,
            r.manual.supersteps,
            r.generated.total_message_bytes,
            r.manual.total_message_bytes,
        );
        assert!(steps_match, "{}/{}: timesteps differ", r.algorithm, r.graph);
        assert!(
            bytes_match,
            "{}/{}: network I/O differs",
            r.algorithm, r.graph
        );
        assert_eq!(
            r.native.total_messages, r.generated.total_messages,
            "{}/{}: native message count diverged from the interpreter",
            r.algorithm, r.graph
        );
    }
    // Printed for every schedule (all-push runs show pull 0/N with no
    // switches), so the columns are grep-stable across configurations.
    println!();
    println!("Per-superstep direction decisions (generated side, `^` = gathered):");
    for r in &rows {
        println!(
            "  {:<10} {:<10} pull {:>3}/{:<3} switches {:>2}  [{}]",
            r.algorithm,
            r.graph,
            r.generated.pull_supersteps,
            r.generated.supersteps,
            r.generated.direction_switches,
            gm_bench::direction_string(&r.generated),
        );
    }
    println!();
    println!("Per-phase wall-clock, milliseconds (gen / man, last rep):");
    println!(
        "{:<10} {:<10} {:>15} {:>15} {:>15} {:>15}",
        "Algorithm", "Graph", "compute", "combine", "exchange", "master"
    );
    for r in &rows {
        let g = gm_bench::phase_ms(&r.generated);
        let m = gm_bench::phase_ms(&r.manual);
        println!(
            "{:<10} {:<10} {:>7.1} /{:>6.1} {:>7.1} /{:>6.1} {:>7.1} /{:>6.1} {:>7.1} /{:>6.1}",
            r.algorithm, r.graph, g[0], m[0], g[1], m[1], g[2], m[2], g[3], m[3],
        );
    }
    println!();
    println!(
        "structural parity (paper: 'exact same number of timesteps … exact same network I/O'): {}",
        if all_structural_match {
            "EXACT"
        } else {
            "VIOLATED"
        }
    );
    println!("note: paper ratios were 0.92–1.35 (generated Java vs manual Java on a JVM).");
    println!("the interp column runs the PIR state machine (interpretation tax included);");
    println!("the native column is `gmc emit-rust` output compiled into this binary, the");
    println!("apples-to-apples analogue of the paper's generated Java — see EXPERIMENTS.md.");
    if let Some(path) = bench_json {
        let report = Report {
            entries: rows
                .iter()
                .flat_map(|r| {
                    let key = |side: &str| {
                        format!("figure6/{}/{}/{side}", r.algorithm.to_lowercase(), r.graph)
                    };
                    [
                        Entry::from_metrics(key("generated"), r.generated_ms, &r.generated),
                        Entry::from_metrics(key("native"), r.native_ms, &r.native),
                        Entry::from_metrics(key("manual"), r.manual_ms, &r.manual),
                    ]
                })
                .collect(),
        };
        std::fs::write(&path, report.to_json())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("bench snapshot written to {}", path.display());
    }
    metrics.finish();
    if let Some(t) = tracer {
        t.finish().expect("finish trace");
    }
}
