//! Reproduces **Table 1** — the input graphs.
//!
//! The paper's data sets are proprietary and billion-edge; the harness
//! builds seeded synthetic stand-ins with the same shapes and edge:vertex
//! ratios (see DESIGN.md). `GM_SCALE` scales all of them; `--trace <path>`
//! logs one span per generated graph.

use gm_bench::{table1_graphs_traced, TraceArgs};
use gm_graph::NodeId;

fn main() {
    let trace = TraceArgs::from_env();
    let tracer = trace.tracer();
    println!(
        "Table 1: input graphs (synthetic stand-ins, GM_SCALE={})",
        std::env::var("GM_SCALE").unwrap_or_else(|_| "1.0".into())
    );
    println!(
        "{:<12} {:>10} {:>12} {:>8}  Stands in for",
        "Name", "Nodes", "Edges", "m/n"
    );
    for w in table1_graphs_traced(tracer.as_ref()) {
        let n = w.graph.num_nodes();
        let m = w.graph.num_edges();
        println!(
            "{:<12} {:>10} {:>12} {:>8.1}  {}",
            w.name,
            n,
            m,
            m as f64 / n as f64,
            w.paper_desc
        );
        // Shape summary: max degree vs mean (power-law graphs are skewed).
        let max_out = w
            .graph
            .nodes()
            .map(|v| w.graph.out_degree(v))
            .max()
            .unwrap_or(0);
        let max_in = w
            .graph
            .nodes()
            .map(|v| w.graph.in_degree(v))
            .max()
            .unwrap_or(0);
        let _ = NodeId(0);
        println!(
            "{:<12} {:>10} {:>12} (max out-degree {max_out}, max in-degree {max_in})",
            "", "", ""
        );
    }
    if let Some(t) = &tracer {
        t.finish().expect("finish trace");
    }
}
