//! Reproduces the **§5.1 Betweenness Centrality result**: the compiler
//! turns the 25-line Green-Marl program of Fig. 4 into a Pregel program
//! whose manual implementation would be prohibitively difficult — the
//! paper reports nine vertex-centric kernels and four message types.
//! The harness compiles it, reports the structure, executes it on the
//! Table 1 graphs and cross-checks against a sequential Brandes oracle.

use gm_algorithms::{reference, sources};
use gm_bench::{args_for, bench_config, table1_graphs};
use gm_core::javagen::{count_loc, emit_java};
use gm_core::CompileOptions;
use gm_interp::run_compiled;

fn main() {
    let compiled = gm_bench::compile_source(sources::BC_APPROX, &CompileOptions::default());
    let p = &compiled.program;
    // The tagged wire format counts the in-neighbor preamble as one more
    // distinct message kind, which is how the paper's four types add up.
    let wire_types = p.num_message_types() + usize::from(p.uses_in_nbrs);
    println!("Approximate Betweenness Centrality — compiled structure");
    println!(
        "  Green-Marl LoC:        {}",
        gm_algorithms::sources::loc(sources::BC_APPROX)
    );
    println!("  generated Java LoC:    {}", count_loc(&emit_java(p)));
    println!(
        "  vertex-centric kernels: {} (paper: 9)",
        p.num_vertex_kernels()
    );
    println!(
        "  message types:          {} (+{} preamble) = {} wire formats (paper: 4)",
        p.num_message_types(),
        u8::from(p.uses_in_nbrs),
        wire_types
    );
    println!("  transformations:        {}", compiled.report);
    println!();

    let k = 4;
    let seed = 99;
    for w in table1_graphs() {
        if w.name == "bipartite" {
            continue; // BC on the two connected-ish graphs, as a spot check
        }
        let g = &w.graph;
        let args = args_for("bc", g);
        let start = std::time::Instant::now();
        let out = run_compiled(g, &compiled, &args, seed, &bench_config()).expect("bc runs");
        let elapsed = start.elapsed();
        let (_, ref_sum) = reference::bc_approx(g, k, seed);
        let got = out.ret.expect("bc returns a sum").as_f64();
        println!(
            "  {:<10} K={k}: supersteps={:<5} messages={:<9} bytes={:<10} time={:.1?}",
            w.name,
            out.metrics.supersteps,
            out.metrics.total_messages,
            out.metrics.total_message_bytes,
            elapsed
        );
        println!(
            "  {:<10} sum(bc)={got:.6}  sequential Brandes oracle={ref_sum:.6}  match={}",
            "",
            if (got - ref_sum).abs() < 1e-9 * ref_sum.abs().max(1.0) {
                "yes"
            } else {
                "NO"
            }
        );
        assert!(
            (got - ref_sum).abs() < 1e-9 * ref_sum.abs().max(1.0),
            "BC mismatch on {}",
            w.name
        );
    }
}
