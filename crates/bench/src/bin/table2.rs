//! Reproduces **Table 2** — lines of code: the Green-Marl program versus
//! the generated GPS-style program, next to the paper's reported numbers.
//!
//! The paper compares Green-Marl LoC against *hand-written* GPS Java; this
//! harness reports the *generated* GPS-style Java LoC, which §5.2 argues is
//! structurally the same program a programmer would write. The shape to
//! verify: the DSL is one order of magnitude terser.

use gm_algorithms::sources;
use gm_bench::TraceArgs;
use gm_core::javagen::{count_loc, emit_java};
use gm_core::CompileOptions;

/// The paper's Table 2 numbers: (label, Green-Marl LoC, native GPS LoC).
const PAPER: [(&str, usize, Option<usize>); 6] = [
    ("Average Teenage Follower (AvgTeen)", 13, Some(130)),
    ("PageRank", 19, Some(110)),
    ("Conductance (Conduct)", 12, Some(149)),
    ("Single Source Shortest Paths (SSSP)", 29, Some(105)),
    ("Random Bipartite Matching (Bipartite)", 47, Some(225)),
    ("Approximate Betweenness Centrality (BC)", 25, None),
];

fn main() {
    let trace = TraceArgs::from_env();
    let tracer = trace.tracer();
    println!("Table 2: lines of code (non-blank, non-comment)");
    println!(
        "{:<42} {:>8} {:>8} | {:>9} {:>10}",
        "Algorithm", "GM (ours)", "GPS gen.", "GM paper", "GPS paper"
    );
    for ((name, src), (plabel, p_gm, p_gps)) in sources::ALL.iter().zip(PAPER) {
        assert_eq!(*name, plabel, "row order must match the paper");
        let compiled = gm_core::compile_with(src, &CompileOptions::default(), tracer.as_ref())
            .expect("embedded source compiles");
        let java = emit_java(&compiled.program);
        let gps_loc = count_loc(&java);
        println!(
            "{:<42} {:>8} {:>8} | {:>9} {:>10}",
            name,
            sources::loc(src),
            gps_loc,
            p_gm,
            p_gps.map_or("N/A".to_owned(), |v| v.to_string()),
        );
    }
    println!("\n(The paper's GPS column counts hand-written Java; ours counts the");
    println!(" generated GPS-style Java — §5.2 argues they are the same program.)");
    if let Some(t) = &tracer {
        t.finish().expect("finish trace");
    }
}
