//! Criterion bench for the §4.2 optimization ablation: PageRank and SSSP
//! compiled with no optimizations, State Merging only, and both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_algorithms::sources;
use gm_bench::args_for;
use gm_core::CompileOptions;
use gm_graph::gen;
use gm_interp::run_compiled;
use gm_pregel::PregelConfig;

fn ablation(c: &mut Criterion) {
    let g = gen::rmat(3000, 3000 * 16, 55);
    let variants: [(&str, CompileOptions); 4] = [
        ("none", CompileOptions::unoptimized()),
        (
            "merge",
            CompileOptions {
                state_merging: true,
                intra_loop_merging: false,
                ..CompileOptions::unoptimized()
            },
        ),
        ("merge+intra", CompileOptions::default()),
        ("merge+intra+comb", CompileOptions::with_combiners()),
    ];
    for (alg, src) in [("pagerank", sources::PAGERANK), ("sssp", sources::SSSP)] {
        let args = args_for(alg, &g);
        let cfg = PregelConfig::sequential();
        let mut grp = c.benchmark_group(format!("ablation/{alg}"));
        grp.sample_size(10);
        for (name, opts) in variants {
            let compiled = gm_bench::compile_source(src, &opts);
            grp.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
                b.iter(|| run_compiled(g, &compiled, &args, 7, &cfg).expect("run"))
            });
        }
        grp.finish();
    }
}

criterion_group!(benches, ablation);
criterion_main!(benches);
