//! Criterion bench for spill overhead: the PageRank message flood with the
//! message budget unbounded vs. tight enough to spill most sealed buckets
//! every superstep. The delta against `unbounded` is the full cost of the
//! CRC-checked disk round-trip (write at compute, replay at delivery);
//! results stay bit-identical either way. Baseline numbers live in
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_graph::gen;
use gm_pregel::{
    run, MasterContext, MasterDecision, PregelConfig, ResourceBudget, VertexContext, VertexProgram,
};

struct PageRank {
    n: f64,
    rounds: u32,
}

impl VertexProgram for PageRank {
    type VertexValue = f64;
    type Message = f64;

    fn message_bytes(&self, _m: &f64) -> u64 {
        8
    }

    fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
        if ctx.superstep() > self.rounds {
            MasterDecision::Halt
        } else {
            MasterDecision::Continue
        }
    }

    fn vertex_compute(
        &self,
        ctx: &mut VertexContext<'_, '_, f64>,
        value: &mut f64,
        messages: &[f64],
    ) {
        if ctx.superstep() == 0 {
            *value = 1.0 / self.n;
        } else {
            let mut sum = 0.0;
            for m in messages {
                sum += *m;
            }
            *value = 0.15 / self.n + 0.85 * sum;
        }
        if ctx.out_degree() > 0 {
            ctx.send_to_nbrs(*value / ctx.out_degree() as f64);
        }
    }
}

fn spill_overhead(c: &mut Criterion) {
    let g = gen::rmat(10_000, 360_000, 1001);
    let rounds = 10;
    let dir = std::env::temp_dir().join(format!("gm-spill-bench-{}", std::process::id()));

    let mut grp = c.benchmark_group("spill_overhead/pagerank");
    grp.sample_size(10);
    // ~360k messages * 8 bytes ≈ 2.9 MB in flight per superstep: 256 KiB
    // spills most buckets, 1 byte spills every one of them.
    for (name, budget) in [
        ("unbounded", ResourceBudget::unbounded()),
        (
            "budget-256KiB",
            ResourceBudget::unbounded()
                .with_max_message_bytes(256 * 1024)
                .with_spill_dir(dir.clone()),
        ),
        (
            "budget-1B",
            ResourceBudget::unbounded()
                .with_max_message_bytes(1)
                .with_spill_dir(dir.clone()),
        ),
    ] {
        let cfg = PregelConfig {
            num_workers: 4,
            max_supersteps: 1_000,
            ..PregelConfig::default()
        }
        .with_budget(budget);
        grp.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| {
                let mut p = PageRank {
                    n: g.num_nodes() as f64,
                    rounds,
                };
                run(g, &mut p, |_| 0.0, &cfg).expect("run")
            })
        });
    }
    grp.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, spill_overhead);
criterion_main!(benches);
