//! `direction_switch` — wall-clock of the three message schedules
//! (push / pull / auto) on the two schedule-sensitive algorithms:
//!
//! * **PageRank** — every superstep is dense (all vertices active), the
//!   payload is edge-independent, and the tag has a Sum combiner: the
//!   best case for the gather, which skips routing, the combine sort,
//!   and the exchange entirely.
//! * **SSSP** — the frontier starts at one vertex and swells, so `auto`
//!   should push the sparse prefix and gather the dense middle; its
//!   per-superstep decisions are printed as a direction trail.
//!
//! Runs each (schedule × worker-count) cell `GM_REPS` times (default 5)
//! and reports the minimum. `GM_SCALE` grows the graph. The table's
//! pull/push ratio is the crossover evidence recorded in EXPERIMENTS.md.
//! Custom harness (not criterion): the point is the cross-schedule table,
//! not per-cell statistics.

use gm_bench::{args_for, direction_string, sssp_root, time_min, weights};
use gm_core::CompileOptions;
use gm_graph::{gen, Graph};
use gm_interp::run_compiled;
use gm_pregel::{Metrics, PregelConfig, Schedule};

fn reps() -> usize {
    std::env::var("GM_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
}

fn scale() -> u32 {
    std::env::var("GM_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

struct Cell {
    ms: f64,
    metrics: Metrics,
}

fn measure(g: &Graph, alg: &'static str, src: &str, schedule: Schedule, workers: usize) -> Cell {
    let compiled = gm_bench::compile_source(src, &CompileOptions::default());
    let args = args_for(alg, g);
    let cfg = PregelConfig::with_workers(workers).with_schedule(schedule);
    let (t, metrics) = time_min(reps(), || {
        let out = run_compiled(g, &compiled, &args, 7, &cfg).expect("run");
        ((), out.metrics)
    });
    Cell {
        ms: t.as_secs_f64() * 1e3,
        metrics,
    }
}

fn main() {
    let s = scale();
    let n = 20_000 * s;
    let g = gen::rmat(n, n as usize * 24, 1001);
    let sources = [
        ("pagerank", gm_algorithms::sources::PAGERANK),
        ("sssp", gm_algorithms::sources::SSSP),
    ];
    // SSSP needs the weight column; args_for handles both.
    let _ = (weights(&g), sssp_root(&g));

    println!(
        "direction_switch: push vs pull vs auto, rmat {} vertices / {} edges, min of {} reps",
        g.num_nodes(),
        g.num_edges(),
        reps()
    );
    println!(
        "{:<10} {:>7} {:>10} {:>10} {:>10} {:>10} {:>6}",
        "algorithm", "workers", "push ms", "pull ms", "auto ms", "pull/push", "pulled"
    );
    let mut baselines: Vec<(&str, usize, f64, f64, f64)> = Vec::new();
    for (alg, src) in sources {
        for workers in [1usize, 2, 4] {
            let push = measure(&g, alg, src, Schedule::Push, workers);
            let pull = measure(&g, alg, src, Schedule::Pull, workers);
            let auto = measure(&g, alg, src, Schedule::Auto, workers);
            assert_eq!(
                push.metrics.total_message_bytes, pull.metrics.total_message_bytes,
                "{alg}: schedules must be structurally identical"
            );
            assert_eq!(
                push.metrics.total_message_bytes, auto.metrics.total_message_bytes,
                "{alg}: schedules must be structurally identical"
            );
            println!(
                "{:<10} {:>7} {:>10.1} {:>10.1} {:>10.1} {:>10.2} {:>3}/{:<3}",
                alg,
                workers,
                push.ms,
                pull.ms,
                auto.ms,
                pull.ms / push.ms,
                pull.metrics.pull_supersteps,
                pull.metrics.supersteps,
            );
            baselines.push((alg, workers, push.ms, pull.ms, auto.ms));
            if workers == 4 {
                println!(
                    "  auto trail ({} switches): [{}]",
                    auto.metrics.direction_switches,
                    direction_string(&auto.metrics)
                );
            }
        }
    }
    println!();
    let crossed: Vec<String> = baselines
        .iter()
        .filter(|(_, _, push, pull, auto)| pull.min(*auto) < *push)
        .map(|(alg, w, ..)| format!("{alg}×{w}"))
        .collect();
    println!(
        "cells where pull or auto beat push: {}",
        if crossed.is_empty() {
            "none".to_owned()
        } else {
            crossed.join(", ")
        }
    );
}
