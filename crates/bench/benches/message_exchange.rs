//! Criterion bench for the parallel message exchange: a PageRank-style
//! flood (every vertex messages every out-neighbor each superstep) on an
//! R-MAT graph, swept over worker counts. Throughput is reported in
//! messages per second; baseline numbers live in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gm_graph::gen;
use gm_obs::Tracer;
use gm_pregel::{run, MasterContext, MasterDecision, PregelConfig, VertexContext, VertexProgram};

struct PageRank {
    n: f64,
    rounds: u32,
}

impl VertexProgram for PageRank {
    type VertexValue = f64;
    type Message = f64;

    fn message_bytes(&self, _m: &f64) -> u64 {
        8
    }

    fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
        if ctx.superstep() > self.rounds {
            MasterDecision::Halt
        } else {
            MasterDecision::Continue
        }
    }

    fn vertex_compute(
        &self,
        ctx: &mut VertexContext<'_, '_, f64>,
        value: &mut f64,
        messages: &[f64],
    ) {
        if ctx.superstep() == 0 {
            *value = 1.0 / self.n;
        } else {
            let mut sum = 0.0;
            for m in messages {
                sum += *m;
            }
            *value = 0.15 / self.n + 0.85 * sum;
        }
        if ctx.out_degree() > 0 {
            ctx.send_to_nbrs(*value / ctx.out_degree() as f64);
        }
    }
}

fn message_exchange(c: &mut Criterion) {
    let g = gen::rmat(10_000, 360_000, 1001);
    let rounds = 10;
    // One probe run to size the throughput counter.
    let probe = run(
        &g,
        &mut PageRank {
            n: g.num_nodes() as f64,
            rounds,
        },
        |_| 0.0,
        &PregelConfig::sequential(),
    )
    .expect("probe run");
    let total_messages = probe.metrics.total_messages;

    let mut grp = c.benchmark_group("message_exchange/pagerank");
    grp.sample_size(10);
    grp.throughput(Throughput::Elements(total_messages));
    for workers in [1usize, 2, 4, 8] {
        let cfg = PregelConfig {
            num_workers: workers,
            max_supersteps: 1_000,
            ..PregelConfig::default()
        };
        grp.bench_with_input(BenchmarkId::from_parameter(workers), &g, |b, g| {
            b.iter(|| {
                let mut p = PageRank {
                    n: g.num_nodes() as f64,
                    rounds,
                };
                run(g, &mut p, |_| 0.0, &cfg).expect("run")
            })
        });
    }
    grp.finish();

    // Tracing overhead: the same flood at 4 workers with the tracer off
    // (the `None` branch every phase takes) vs. capturing into memory.
    let mut grp = c.benchmark_group("message_exchange/tracing");
    grp.sample_size(10);
    grp.throughput(Throughput::Elements(total_messages));
    let base = PregelConfig {
        num_workers: 4,
        max_supersteps: 1_000,
        ..PregelConfig::default()
    };
    let (tracer, _sink) = Tracer::in_memory();
    let traced = base.clone().with_tracer(tracer);
    for (name, cfg) in [("disabled", &base), ("memory", &traced)] {
        grp.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| {
                let mut p = PageRank {
                    n: g.num_nodes() as f64,
                    rounds,
                };
                run(g, &mut p, |_| 0.0, cfg).expect("run")
            })
        });
    }
    grp.finish();
}

criterion_group!(benches, message_exchange);
criterion_main!(benches);
