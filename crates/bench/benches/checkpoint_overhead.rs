//! Criterion bench for checkpoint overhead: the PageRank message flood of
//! `message_exchange` with snapshots disabled vs. written every 1 / 4
//! supersteps. The delta against `off` is the full cost of serializing the
//! BSP frontier and fsyncing it to disk; baseline numbers live in
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_graph::gen;
use gm_pregel::{
    run, CheckpointConfig, MasterContext, MasterDecision, PregelConfig, VertexContext,
    VertexProgram,
};

struct PageRank {
    n: f64,
    rounds: u32,
}

impl VertexProgram for PageRank {
    type VertexValue = f64;
    type Message = f64;

    fn message_bytes(&self, _m: &f64) -> u64 {
        8
    }

    fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
        if ctx.superstep() > self.rounds {
            MasterDecision::Halt
        } else {
            MasterDecision::Continue
        }
    }

    fn vertex_compute(
        &self,
        ctx: &mut VertexContext<'_, '_, f64>,
        value: &mut f64,
        messages: &[f64],
    ) {
        if ctx.superstep() == 0 {
            *value = 1.0 / self.n;
        } else {
            let mut sum = 0.0;
            for m in messages {
                sum += *m;
            }
            *value = 0.15 / self.n + 0.85 * sum;
        }
        if ctx.out_degree() > 0 {
            ctx.send_to_nbrs(*value / ctx.out_degree() as f64);
        }
    }
}

fn checkpoint_overhead(c: &mut Criterion) {
    let g = gen::rmat(10_000, 360_000, 1001);
    let rounds = 10;
    let dir = std::env::temp_dir().join(format!("gm-ckpt-bench-{}", std::process::id()));

    let mut grp = c.benchmark_group("checkpoint_overhead/pagerank");
    grp.sample_size(10);
    for (name, every) in [("off", 0u32), ("every-4", 4), ("every-1", 1)] {
        let mut cfg = PregelConfig {
            num_workers: 4,
            max_supersteps: 1_000,
            ..PregelConfig::default()
        };
        if every > 0 {
            // keep=1 bounds disk usage across Criterion's many iterations.
            cfg = cfg.with_checkpoints(CheckpointConfig::new(dir.clone(), every).with_keep(1));
        }
        grp.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| {
                let mut p = PageRank {
                    n: g.num_nodes() as f64,
                    rounds,
                };
                run(g, &mut p, |_| 0.0, &cfg).expect("run")
            })
        });
    }
    grp.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, checkpoint_overhead);
criterion_main!(benches);
