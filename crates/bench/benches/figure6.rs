//! Criterion bench behind **Figure 6**: wall time of each compiler-
//! generated Pregel program against its manual counterpart, per input
//! graph. Uses reduced graph sizes so `cargo bench` stays quick; the
//! `figure6` binary runs the full-scale sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gm_algorithms::{manual, sources};
use gm_bench::{args_for, boy_marks, sssp_root, weights};
use gm_core::CompileOptions;
use gm_graph::{gen, Graph};
use gm_interp::run_compiled;
use gm_pregel::PregelConfig;

fn small_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("twitter", gen::rmat(3000, 3000 * 36, 1001)),
        ("sk-2005", gen::web_copying(3600, 37, 0.5, 1003)),
    ]
}

fn bench_pair(
    c: &mut Criterion,
    group: &str,
    graph_name: &str,
    g: &Graph,
    alg: &str,
    src: &str,
    manual_run: impl Fn(&Graph, &PregelConfig),
) {
    let compiled = gm_bench::compile_source(src, &CompileOptions::default());
    let native = gm_algorithms::native::ALL
        .iter()
        .find(|a| a.source == src)
        .expect("native module");
    let args = args_for(alg, g);
    let cfg = PregelConfig::sequential();
    let mut grp = c.benchmark_group(group);
    grp.sample_size(10);
    grp.bench_with_input(BenchmarkId::new("generated", graph_name), g, |b, g| {
        b.iter(|| run_compiled(g, &compiled, &args, 7, &cfg).expect("generated run"))
    });
    grp.bench_with_input(BenchmarkId::new("native", graph_name), g, |b, g| {
        b.iter(|| (native.run)(g, &args, 7, &cfg).expect("native run"))
    });
    grp.bench_with_input(BenchmarkId::new("manual", graph_name), g, |b, g| {
        b.iter(|| manual_run(g, &cfg))
    });
    grp.finish();
}

fn figure6(c: &mut Criterion) {
    // The schedule is inherited from GM_SCHEDULE by every config below.
    println!(
        "schedule: {:?} (set GM_SCHEDULE=auto|pull to exercise the gather path)",
        PregelConfig::sequential().schedule
    );
    for (name, g) in small_graphs() {
        let ages = gm_bench::ages(&g);
        bench_pair(
            c,
            "avg_teen",
            name,
            &g,
            "avg_teen",
            sources::AVG_TEEN,
            |g, cfg| {
                manual::run_avg_teen(g, &ages, 25, cfg).expect("manual run");
            },
        );
        bench_pair(
            c,
            "pagerank",
            name,
            &g,
            "pagerank",
            sources::PAGERANK,
            |g, cfg| {
                manual::run_pagerank(g, 1e-9, 0.85, 10, cfg).expect("manual run");
            },
        );
        let member = gm_bench::membership(&g);
        bench_pair(
            c,
            "conductance",
            name,
            &g,
            "conductance",
            sources::CONDUCTANCE,
            |g, cfg| {
                manual::run_conductance(g, &member, cfg).expect("manual run");
            },
        );
        let ws = weights(&g);
        bench_pair(c, "sssp", name, &g, "sssp", sources::SSSP, |g, cfg| {
            manual::run_sssp(g, sssp_root(g), &ws, cfg).expect("manual run");
        });
    }
    // Bipartite matching on its own bipartite input.
    let g = gen::bipartite(2500, 2500, 2500 * 20, 1002);
    let marks = boy_marks(&g);
    bench_pair(
        c,
        "bipartite",
        "bipartite",
        &g,
        "bipartite",
        sources::BIPARTITE_MATCHING,
        |g, cfg| {
            manual::run_bipartite_matching(g, &marks, cfg).expect("manual run");
        },
    );
    // BC has no manual baseline (the paper's point) — bench generated only.
    let g = gen::rmat(2000, 2000 * 16, 77);
    let compiled = gm_bench::compile_source(sources::BC_APPROX, &CompileOptions::default());
    let args = args_for("bc", &g);
    let cfg = PregelConfig::sequential();
    let mut grp = c.benchmark_group("bc");
    grp.sample_size(10);
    grp.bench_function("generated/twitter", |b| {
        b.iter(|| run_compiled(&g, &compiled, &args, 7, &cfg).expect("bc run"))
    });
    let native = gm_algorithms::native::ALL
        .iter()
        .find(|a| a.source == sources::BC_APPROX)
        .expect("native module");
    grp.bench_function("native/twitter", |b| {
        b.iter(|| (native.run)(&g, &args, 7, &cfg).expect("bc native run"))
    });
    grp.finish();
}

criterion_group!(benches, figure6);
criterion_main!(benches);
