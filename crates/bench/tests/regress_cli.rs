//! End-to-end test of the `regress` perf-gate binary: a synthetic ≥20%
//! latency regression between two snapshots must exit non-zero, matching
//! runs must pass, structural drift must fail regardless of latency, and
//! `--write-baseline` must normalize a snapshot into a loadable baseline.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gm-regress-cli-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn snapshot(entries: &[(&str, f64, u64)]) -> String {
    let items: Vec<String> = entries
        .iter()
        .map(|(name, ms, steps)| {
            format!(
                "{{\"name\":\"{name}\",\"ms\":{ms},\"supersteps\":{steps},\"message_bytes\":4096}}"
            )
        })
        .collect();
    format!("{{\"schema\":1,\"entries\":[{}]}}", items.join(","))
}

fn regress(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_regress"))
        .args(args)
        .output()
        .expect("spawn regress")
}

#[test]
fn twenty_percent_regression_fails_the_gate() {
    let dir = fresh_dir("slow");
    let base = dir.join("base.json");
    let cur = dir.join("cur.json");
    std::fs::write(
        &base,
        snapshot(&[("figure6/pagerank/twitter/generated", 100.0, 8)]),
    )
    .unwrap();
    std::fs::write(
        &cur,
        snapshot(&[("figure6/pagerank/twitter/generated", 125.0, 8)]),
    )
    .unwrap();
    let out = regress(&[base.to_str().unwrap(), cur.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("FAIL"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn identical_snapshots_pass_and_threshold_is_configurable() {
    let dir = fresh_dir("ok");
    let base = dir.join("base.json");
    let cur = dir.join("cur.json");
    std::fs::write(&base, snapshot(&[("a", 100.0, 8), ("b", 3.0, 2)])).unwrap();
    std::fs::write(&cur, snapshot(&[("a", 110.0, 8), ("b", 3.0, 2)])).unwrap();

    // 10% slower: inside the default 20% band.
    let out = regress(&[base.to_str().unwrap(), cur.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));

    // The same pair fails a tightened 5% gate.
    let out = regress(&[
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--threshold",
        "5",
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn structural_drift_fails_even_when_faster() {
    let dir = fresh_dir("structural");
    let base = dir.join("base.json");
    let cur = dir.join("cur.json");
    std::fs::write(&base, snapshot(&[("a", 100.0, 8)])).unwrap();
    std::fs::write(&cur, snapshot(&[("a", 50.0, 9)])).unwrap();
    let out = regress(&[base.to_str().unwrap(), cur.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("supersteps 8 -> 9"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn write_baseline_normalizes_and_round_trips() {
    let dir = fresh_dir("baseline");
    let cur = dir.join("cur.json");
    let dest = dir.join("BENCH_baseline.json");
    // Entries deliberately out of name order: the baseline is sorted.
    std::fs::write(&cur, snapshot(&[("z", 2.0, 3), ("a", 1.0, 2)])).unwrap();
    let out = regress(&[
        "--write-baseline",
        dest.to_str().unwrap(),
        cur.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = std::fs::read_to_string(&dest).unwrap();
    assert!(text.find("\"a\"").unwrap() < text.find("\"z\"").unwrap());

    // The written baseline gates against the original snapshot cleanly.
    let out = regress(&[dest.to_str().unwrap(), cur.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_inputs_exit_2() {
    let dir = fresh_dir("bad");
    let good = dir.join("good.json");
    let bad = dir.join("bad.json");
    std::fs::write(&good, snapshot(&[("a", 1.0, 1)])).unwrap();
    std::fs::write(&bad, "{\"schema\":7}").unwrap();

    let out = regress(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = regress(&[good.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let out = regress(&[good.to_str().unwrap(), bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = regress(&[
        good.to_str().unwrap(),
        dir.join("absent.json").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}
