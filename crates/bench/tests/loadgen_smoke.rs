//! Smoke test for the `loadgen` binary against an in-process daemon:
//! a clean closed-loop run over two tenants must exit 0 under
//! `--expect-success` and write a parseable `regress`-schema snapshot
//! with nonzero throughput and latency percentiles.

use gm_bench::regress::Report;
use gmd::{Daemon, DaemonConfig, GraphSpec};
use std::process::Command;

#[test]
fn loadgen_round_trip_produces_a_regress_snapshot() {
    let config = DaemonConfig {
        graphs: vec![GraphSpec {
            name: "g".to_owned(),
            source: "rmat:200:800:5".to_owned(),
        }],
        post_mortem: None,
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(config).expect("daemon starts");
    let snapshot = std::env::temp_dir().join(format!("loadgen-smoke-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&snapshot);

    let output = Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .args([
            "--addr",
            &daemon.addr().to_string(),
            "--clients",
            "2",
            "--requests",
            "3",
            "--mix",
            "pagerank,sssp",
            "--tenants",
            "acme,globex",
            "--snapshot",
            snapshot.to_str().unwrap(),
            "--expect-success",
        ])
        .output()
        .expect("loadgen runs");
    assert!(
        output.status.success(),
        "loadgen failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("completed          6"),
        "all jobs done: {stdout}"
    );
    assert!(
        stdout.contains("0 divergent"),
        "fingerprints consistent: {stdout}"
    );

    let report = Report::load(&snapshot).expect("snapshot parses");
    let value = |name: &str| {
        report
            .entries
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("snapshot lacks {name}"))
            .ms
    };
    assert!(value("loadgen/throughput_jobs_per_s") > 0.0);
    assert!(value("loadgen/job_p50") > 0.0);
    assert!(value("loadgen/job_p99") >= value("loadgen/job_p50"));
    let _ = std::fs::remove_file(&snapshot);
}
