//! Integration tests for the `gmc` CLI binary: drive the real executable
//! end-to-end over a temp workspace.

use std::path::PathBuf;
use std::process::Command;

fn gmc() -> Command {
    // Cargo exposes the binary path to integration tests of the same crate.
    Command::new(env!("CARGO_BIN_EXE_gmc"))
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gmc-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

const SSSP: &str = r"
Procedure sssp(G: Graph, root: Node, len: E_P<Int>, dist: N_P<Int>) {
    Node_Prop<Int> dist_nxt;
    Node_Prop<Bool> updated;
    G.dist = (G == root) ? 0 : INF;
    G.updated = (G == root) ? True : False;
    G.dist_nxt = G.dist;
    Bool fin = False;
    While (!fin) {
        Foreach (n: G.Nodes)(n.updated) {
            Foreach (s: n.Nbrs) {
                Edge e = s.ToEdge();
                s.dist_nxt min= n.dist + e.len;
            }
        }
        Foreach (n: G.Nodes) {
            n.updated = n.dist_nxt < n.dist;
            n.dist = n.dist_nxt;
        }
        fin = !Exist(n: G.Nodes)(n.updated);
    }
}
";

#[test]
fn compile_emits_states_java_and_canonical() {
    let dir = temp_dir();
    let gm = dir.join("sssp.gm");
    std::fs::write(&gm, SSSP).unwrap();

    let out = gmc()
        .args(["compile", gm.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("pregel program `sssp`"), "{text}");
    assert!(text.contains("transformations:"), "{text}");

    let out = gmc()
        .args(["compile", gm.to_str().unwrap(), "--emit", "java"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("class GMVertex"), "{text}");

    let out = gmc()
        .args(["compile", gm.to_str().unwrap(), "--emit", "canonical"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Foreach"), "{text}");
}

#[test]
fn run_executes_and_prints_property() {
    let dir = temp_dir();
    let gm = dir.join("sssp2.gm");
    std::fs::write(&gm, SSSP).unwrap();
    let edges = dir.join("edges.txt");
    std::fs::write(&edges, "0 1 2\n1 2 3\n2 3 4\n0 3 10\n").unwrap();

    let out = gmc()
        .args([
            "run",
            gm.to_str().unwrap(),
            "--graph",
            edges.to_str().unwrap(),
            "--arg",
            "root=n:0",
            "--print",
            "dist",
            "--workers",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("supersteps:"), "{text}");
    // dist: 0, 2, 5, 9 via the weighted path.
    assert!(text.contains("0\t0"), "{text}");
    assert!(text.contains("1\t2"), "{text}");
    assert!(text.contains("2\t5"), "{text}");
    assert!(text.contains("3\t9"), "{text}");
}

#[test]
fn run_spills_under_a_tiny_message_budget_with_identical_results() {
    let dir = temp_dir();
    let gm = dir.join("sssp_spill.gm");
    std::fs::write(&gm, SSSP).unwrap();
    let edges = dir.join("edges_spill.txt");
    std::fs::write(&edges, "0 1 2\n1 2 3\n2 3 4\n0 3 10\n").unwrap();
    let spill_dir = dir.join("spill");

    let out = gmc()
        .args([
            "run",
            gm.to_str().unwrap(),
            "--graph",
            edges.to_str().unwrap(),
            "--arg",
            "root=n:0",
            "--print",
            "dist",
            "--workers",
            "2",
            "--max-message-bytes",
            "1",
            "--spill-dir",
            spill_dir.to_str().unwrap(),
            "--superstep-deadline",
            "60000",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Results are bit-identical to the unbudgeted run...
    assert!(text.contains("0\t0"), "{text}");
    assert!(text.contains("1\t2"), "{text}");
    assert!(text.contains("2\t5"), "{text}");
    assert!(text.contains("3\t9"), "{text}");
    // ...and the spill line reports the disk round-trip.
    assert!(text.contains("spills:"), "{text}");
}

#[test]
fn run_skip_edge_policy_tolerates_dirty_graphs() {
    let dir = temp_dir();
    let gm = dir.join("sssp_dirty.gm");
    std::fs::write(&gm, SSSP).unwrap();
    let edges = dir.join("edges_dirty.txt");
    std::fs::write(&edges, "0 1 2\nnot an edge\n1 2 3\n2 3 4\n0 3 10\n").unwrap();

    // Strict (the default) refuses the file, naming the line.
    let out = gmc()
        .args([
            "run",
            gm.to_str().unwrap(),
            "--graph",
            edges.to_str().unwrap(),
            "--arg",
            "root=n:0",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 2"), "{err}");

    // Skip policy loads the clean edges and reports the damage.
    let out = gmc()
        .args([
            "run",
            gm.to_str().unwrap(),
            "--graph",
            edges.to_str().unwrap(),
            "--arg",
            "root=n:0",
            "--edge-policy",
            "skip",
            "--print",
            "dist",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("skipped 1 malformed line"), "{err}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("3\t9"), "{text}");
}

#[test]
fn run_with_metrics_file_writes_exposition_and_prints_percentiles() {
    let dir = temp_dir();
    let gm = dir.join("sssp_metrics.gm");
    std::fs::write(&gm, SSSP).unwrap();
    let edges = dir.join("edges_metrics.txt");
    std::fs::write(&edges, "0 1 2\n1 2 3\n2 3 4\n0 3 10\n").unwrap();
    let prom = dir.join("metrics.prom");

    let out = gmc()
        .args([
            "run",
            gm.to_str().unwrap(),
            "--graph",
            edges.to_str().unwrap(),
            "--arg",
            "root=n:0",
            "--workers",
            "2",
            "--metrics-file",
            prom.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("per-phase latency"), "{text}");
    assert!(text.contains("compute"), "{text}");
    assert!(text.contains("metrics exposition written to"), "{text}");

    let prom_text = std::fs::read_to_string(&prom).unwrap();
    assert!(
        prom_text.contains("# TYPE gm_phase_seconds histogram"),
        "{prom_text}"
    );
    assert!(
        prom_text.contains("gm_phase_seconds_bucket{phase=\"compute\",le="),
        "{prom_text}"
    );
    assert!(
        prom_text.contains("gm_supersteps_total{direction=\"push\"}"),
        "{prom_text}"
    );
    assert!(prom_text.contains("gm_messages_total"), "{prom_text}");
}

#[test]
fn run_failure_names_the_post_mortem_bundle() {
    let dir = temp_dir();
    let gm = dir.join("sssp_bundle.gm");
    std::fs::write(&gm, SSSP).unwrap();
    let edges = dir.join("edges_bundle.txt");
    // A 100k-vertex chain: one superstep touches every vertex, which takes
    // far longer than the 1ms deadline below on any machine.
    let mut chain = String::new();
    for i in 0..100_000u32 {
        chain.push_str(&format!("{i} {} 1\n", i + 1));
    }
    std::fs::write(&edges, chain).unwrap();
    let bundles = dir.join("bundles");

    // The overrun deadline fails an early superstep, so the flight
    // recorder must dump a bundle and the error must point at it.
    let out = gmc()
        .args([
            "run",
            gm.to_str().unwrap(),
            "--graph",
            edges.to_str().unwrap(),
            "--arg",
            "root=n:0",
            "--superstep-deadline",
            "1",
            "--post-mortem-dir",
            bundles.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("deadline"), "{err}");
    assert!(err.contains("post-mortem bundle:"), "{err}");
    // The named directory exists and holds the manifest.
    let named: PathBuf = err
        .split("post-mortem bundle: ")
        .nth(1)
        .and_then(|rest| rest.split(')').next())
        .map(PathBuf::from)
        .expect("bundle path in error");
    assert!(named.starts_with(&bundles), "{named:?}");
    assert!(named.join("MANIFEST.json").is_file(), "{named:?}");
}

#[test]
fn verify_prints_summary_on_valid_program() {
    let dir = temp_dir();
    let gm = dir.join("sssp_verify.gm");
    std::fs::write(&gm, SSSP).unwrap();

    let out = gmc()
        .args(["verify", gm.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("pregel program `sssp`"), "{text}");
    assert!(text.contains("verified:"), "{text}");
    assert!(text.contains("message types"), "{text}");

    // The unoptimized state machine verifies too (more states, same summary
    // shape).
    let out = gmc()
        .args(["verify", gm.to_str().unwrap(), "--no-opt"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verified:"), "{text}");
}

#[test]
fn verify_rejects_malformed_program_nonzero() {
    let dir = temp_dir();
    let gm = dir.join("broken_verify.gm");
    // Semantic error: `y` is never declared.
    std::fs::write(
        &gm,
        "Procedure broken(G: Graph, x: N_P<Int>) {\n    G.x = y + 1;\n}\n",
    )
    .unwrap();
    let out = gmc()
        .args(["verify", gm.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("compilation failed"), "{err}");

    // Missing file and unknown flag both fail cleanly.
    let out = gmc().args(["verify"]).output().unwrap();
    assert!(!out.status.success());
    let out = gmc()
        .args(["verify", gm.to_str().unwrap(), "--wat"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag"), "{err}");
}

#[test]
fn compile_accepts_no_verify_flag() {
    let dir = temp_dir();
    let gm = dir.join("sssp_noverify.gm");
    std::fs::write(&gm, SSSP).unwrap();
    let out = gmc()
        .args(["compile", gm.to_str().unwrap(), "--no-verify"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("pregel program `sssp`"), "{text}");
}

#[test]
fn bad_inputs_fail_with_diagnostics() {
    let dir = temp_dir();
    let gm = dir.join("bad.gm");
    std::fs::write(&gm, "Procedure broken(").unwrap();
    let out = gmc()
        .args(["compile", gm.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("compilation failed"), "{err}");

    // Missing --graph.
    let out = gmc().args(["run", gm.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());

    // Unknown flag.
    let out = gmc()
        .args(["compile", gm.to_str().unwrap(), "--wat"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
