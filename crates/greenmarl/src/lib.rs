//! Facade crate: one `use greenmarl::prelude::*` away from compiling and
//! running Green-Marl graph programs on the bundled Pregel runtime.
//!
//! This workspace reproduces *"Simplifying Scalable Graph Processing with a
//! Domain-Specific Language"* (CGO 2014). See the individual crates:
//!
//! * [`gm_graph`] — graph substrate (CSR, generators, I/O);
//! * [`gm_pregel`] — the BSP vertex-centric runtime (GPS-style);
//! * [`gm_core`] — the Green-Marl → Pregel compiler (the paper's
//!   contribution);
//! * [`gm_interp`] — executes compiled state machines on the runtime;
//! * [`gm_algorithms`] — the paper's six benchmark algorithms (sources,
//!   manual baselines, sequential oracles).

pub use gm_algorithms as algorithms;
pub use gm_core as core;
pub use gm_graph as graph;
pub use gm_interp as interp;
pub use gm_pregel as pregel;

pub mod service;

/// The most common imports for using the library.
pub mod prelude {
    pub use gm_core::seqinterp::ArgValue;
    pub use gm_core::value::Value;
    pub use gm_core::{compile, CompileOptions, Compiled};
    pub use gm_graph::{gen, Graph, GraphBuilder, NodeId};
    pub use gm_interp::{run_compiled, CompiledOutcome};
    pub use gm_pregel::PregelConfig;
}
