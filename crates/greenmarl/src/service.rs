//! Compile-as-a-library: the `gmc` pipeline without a process around it.
//!
//! Long-lived hosts — the `gmd` daemon foremost — accept untrusted
//! Green-Marl source over the wire and must turn compiler diagnostics
//! into structured API errors instead of stderr + exit codes. This
//! module is the one entry point both `gmc` and `gmd` share, so a
//! program accepted by one is byte-for-byte the program the other runs.
//!
//! The PIR well-formedness verifier is **forced on** here regardless of
//! build profile: a daemon compiling tenant-supplied source wants the
//! translation re-checked after every optimization pass, not just in
//! debug builds.

use gm_core::{compile_with, CompileOptions, Compiled};
use gm_obs::Tracer;

/// Compiles Green-Marl source with default optimizations and the PIR
/// verifier on, rendering diagnostics into the returned error string.
/// This is the entry `gmd` compiles tenant-supplied source through.
pub fn compile_source(src: &str) -> Result<Compiled, String> {
    compile_source_with(src, true, Some(true), None)
}

/// Compiles Green-Marl source with explicit knobs: `optimize` selects the
/// standard pass pipeline vs. none, `verify` forces the PIR verifier on
/// or off (`None` keeps the build-profile default `gmc` documents), and
/// `tracer` receives per-pass compile spans.
pub fn compile_source_with(
    src: &str,
    optimize: bool,
    verify: Option<bool>,
    tracer: Option<&Tracer>,
) -> Result<Compiled, String> {
    let mut options = if optimize {
        CompileOptions::default()
    } else {
        CompileOptions::unoptimized()
    };
    if let Some(v) = verify {
        options.verify = v;
    }
    compile_with(src, &options, tracer).map_err(|d| d.render(src))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_a_builtin_source() {
        let compiled = compile_source(gm_algorithms::sources::PAGERANK).unwrap();
        assert!(!compiled.program.states.is_empty());
    }

    #[test]
    fn renders_diagnostics_for_bad_source() {
        let err = compile_source("Procedure broken(G: Graph) { nope }").unwrap_err();
        // The rendered diagnostic carries a source position, not a bare code.
        assert!(err.contains("1:"), "{err}");
    }

    #[test]
    fn unoptimized_compile_is_also_verified() {
        let compiled =
            compile_source_with(gm_algorithms::sources::SSSP, false, Some(true), None).unwrap();
        assert!(!compiled.program.states.is_empty());
    }
}
