//! `gmc` — the Green-Marl → Pregel compiler driver.
//!
//! ```text
//! gmc compile <file.gm> [--emit java|canonical|states] [--no-opt] [--no-verify]
//!             [--timing] [--trace <path>] [--trace-format jsonl|chrome]
//! gmc verify <file.gm> [--no-opt]
//! gmc emit-rust <file.gm> [--no-opt] [-o <file.rs>]
//! gmc run <file.gm> --graph <edges.txt> [--backend interp|native]
//!         [--arg name=value]...
//!         [--seed N] [--workers N] [--print prop] [--steps] [--timing]
//!         [--schedule push|pull|auto] [--dense-threshold F]
//!         [--trace <path>] [--trace-format jsonl|chrome]
//!         [--checkpoint-every N] [--checkpoint-dir <dir>] [--resume]
//!         [--keep-snapshots N] [--max-restarts N]
//!         [--max-message-bytes N] [--superstep-deadline MS]
//!         [--spill-dir <dir>] [--edge-policy strict|skip]
//!         [--metrics-listen <host:port>] [--metrics-file <path>]
//!         [--post-mortem-dir <dir>]
//! ```
//!
//! `gmc verify` compiles with the PIR well-formedness verifier forced on
//! (after translation and after every optimization pass), prints the
//! verified state-machine summary on success, and exits non-zero with the
//! diagnostics on failure. `gmc compile --no-verify` skips the verifier in
//! debug builds (it is off by default in release builds).
//!
//! `gmc emit-rust` compiles a procedure (verifier forced on) and prints a
//! standalone Rust module implementing the runtime's `VertexProgram` trait
//! natively — monomorphized message enum, native property fields, inlined
//! combiners — bit-identical in results to the interpreter. `gmc run
//! --backend native` executes such a module compiled into the binary
//! (`gm_algorithms::native`), selected by byte-equality of the generated
//! source, instead of interpreting the PIR.
//!
//! `--trace <path>` writes a structured event log of the compiler passes
//! (and, for `run`, the per-worker superstep execution) in the chosen
//! format — `jsonl` (the default; one event per line) or `chrome` (Chrome
//! Trace Event Format, loadable in `chrome://tracing` or Perfetto).
//! `--timing` prints the per-pass compile-time table; `--steps` prints the
//! per-superstep execution of the generated state machine. `run` loads a
//! whitespace edge list (`src dst [weight]`); if the procedure declares
//! edge-property parameters, the first one is fed from the weight column.
//! Scalar arguments are given as `--arg K=25`, `--arg d=0.85`,
//! `--arg root=n:0`, `--arg flag=true`. Node properties not supplied start
//! at their type's default.
//!
//! `--checkpoint-every N` snapshots the full BSP frontier into
//! `--checkpoint-dir` (default `gm-ckpt/` in the temp dir) every N
//! supersteps; `--resume` continues a previous run from the newest valid
//! snapshot there, and `--keep-snapshots N` prunes all but the newest N.
//! `--max-restarts N` lets the run restart itself after worker failures.
//!
//! `--schedule` selects the message direction: `push` (the Pregel
//! default), `pull` (gather every superstep the program supports — rejected
//! up front if none is pullable), or `auto` (per-superstep density
//! heuristic, cutoff tunable with `--dense-threshold`, a fraction of |E|).
//! Both flags default from the `GM_SCHEDULE` / `GM_DENSE_THRESHOLD`
//! environment variables. With `--steps`, a `dir` column shows which
//! supersteps were gathered.
//!
//! `--max-message-bytes N` caps the in-flight message bytes per superstep;
//! sealed buckets past the cap spill to `--spill-dir` (default: a run
//! directory under the temp dir) and are replayed at delivery with
//! bit-identical results. `--superstep-deadline MS` aborts any superstep
//! exceeding the wall-clock deadline with a structured error. Both default
//! from the `GM_MAX_MSG_BYTES` / `GM_SUPERSTEP_DEADLINE_MS` environment
//! variables. `--edge-policy skip` tolerates malformed edge-list lines,
//! reporting how many were skipped (the default, `strict`, aborts on the
//! first).
//!
//! `--metrics-listen <host:port>` serves live Prometheus metrics at
//! `http://<host:port>/metrics` while the run executes; `--metrics-file`
//! writes the final text exposition after it (either flag also prints a
//! per-phase latency summary with p50/p99). `--post-mortem-dir <dir>`
//! (default from `GM_POST_MORTEM_DIR`) arms the flight recorder: if the
//! run fails, a self-contained bundle — recent trace events, config,
//! metrics snapshot — is written under the directory and its path is
//! printed with the error.

use gm_core::seqinterp::ArgValue;
use gm_core::value::Value;
use gm_graph::io::LoadPolicy;
use gm_interp::run_compiled;
use gm_obs::metrics::MetricsRegistry;
use gm_obs::{TraceFormat, Tracer};
use gm_pregel::{
    CheckpointConfig, PostMortemConfig, PregelConfig, RecoveryPolicy, ResourceBudget, Schedule,
};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("emit-rust") => cmd_emit_rust(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        _ => {
            eprintln!("usage: gmc compile <file.gm> [--emit java|canonical|states] [--no-opt]");
            eprintln!("               [--no-verify] [--timing] [--trace <path>]");
            eprintln!("               [--trace-format jsonl|chrome]");
            eprintln!("       gmc verify <file.gm> [--no-opt]");
            eprintln!("       gmc emit-rust <file.gm> [--no-opt] [-o <file.rs>]");
            eprintln!("       gmc run <file.gm> --graph <edges.txt> [--backend interp|native]");
            eprintln!("               [--arg name=value]...");
            eprintln!("               [--seed N] [--workers N] [--print prop] [--steps]");
            eprintln!("               [--schedule push|pull|auto] [--dense-threshold F]");
            eprintln!("               [--timing] [--trace <path>] [--trace-format jsonl|chrome]");
            eprintln!("               [--checkpoint-every N] [--checkpoint-dir <dir>] [--resume]");
            eprintln!("               [--keep-snapshots N] [--max-restarts N]");
            eprintln!("               [--max-message-bytes N] [--superstep-deadline MS]");
            eprintln!("               [--spill-dir <dir>] [--edge-policy strict|skip]");
            eprintln!("               [--metrics-listen <host:port>] [--metrics-file <path>]");
            eprintln!("               [--post-mortem-dir <dir>]");
            ExitCode::FAILURE
        }
    }
}

fn load_and_compile(
    path: &str,
    optimize: bool,
    verify: Option<bool>,
    tracer: Option<&Tracer>,
) -> Result<gm_core::Compiled, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // Same library pipeline `gmd` compiles tenant source through.
    greenmarl::service::compile_source_with(&src, optimize, verify, tracer)
        .map_err(|rendered| format!("compilation failed:\n{rendered}"))
}

/// Builds the `--trace` tracer, if requested.
fn open_tracer(path: Option<&str>, format: TraceFormat) -> Result<Option<Tracer>, String> {
    match path {
        None => Ok(None),
        Some(p) => Tracer::to_file(p, format)
            .map(Some)
            .map_err(|e| format!("cannot open trace file {p}: {e}")),
    }
}

fn cmd_compile(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("gmc compile: missing input file");
        return ExitCode::FAILURE;
    };
    let mut emit = "states";
    let mut optimize = true;
    let mut verify: Option<bool> = None;
    let mut timing = false;
    let mut trace_path: Option<String> = None;
    let mut trace_format = TraceFormat::Jsonl;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--emit" => match it.next() {
                Some(e) => emit = e,
                None => {
                    eprintln!("gmc compile: --emit needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--no-opt" => optimize = false,
            "--no-verify" => verify = Some(false),
            "--timing" => timing = true,
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p.clone()),
                None => {
                    eprintln!("gmc compile: --trace needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--trace-format" => match it.next().map(|f| f.parse()) {
                Some(Ok(f)) => trace_format = f,
                Some(Err(e)) => {
                    eprintln!("gmc compile: {e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("gmc compile: --trace-format needs a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("gmc compile: unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let tracer = match open_tracer(trace_path.as_deref(), trace_format) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gmc compile: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = match load_and_compile(path, optimize, verify, tracer.as_ref()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match emit {
        "java" => print!("{}", gm_core::javagen::emit_java(&compiled.program)),
        "canonical" => print!("{}", compiled.canonical_source),
        "states" => {
            print!("{}", compiled.program);
            println!("transformations: {}", compiled.report);
        }
        other => {
            eprintln!("gmc compile: unknown --emit kind {other} (java|canonical|states)");
            return ExitCode::FAILURE;
        }
    }
    if timing {
        print!("{}", compiled.report.timing_table());
    }
    if let Some(t) = &tracer {
        if let Err(e) = t.finish() {
            eprintln!("gmc compile: cannot finish trace: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn cmd_verify(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("gmc verify: missing input file");
        return ExitCode::FAILURE;
    };
    let mut optimize = true;
    for a in &args[1..] {
        match a.as_str() {
            "--no-opt" => optimize = false,
            other => {
                eprintln!("gmc verify: unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let compiled = match load_and_compile(path, optimize, Some(true), None) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", compiled.program);
    println!("{}", gm_core::verify::summary(&compiled.program));
    ExitCode::SUCCESS
}

fn cmd_emit_rust(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("gmc emit-rust: missing input file");
        return ExitCode::FAILURE;
    };
    let mut optimize = true;
    let mut out_path: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-opt" => optimize = false,
            "-o" | "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("gmc emit-rust: {a} needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("gmc emit-rust: unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Codegen input is always re-verified, like `gmc verify`.
    let compiled = match load_and_compile(path, optimize, Some(true), None) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let rust = match gm_core::rustgen::emit_rust(&compiled.program) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gmc emit-rust: {e}");
            return ExitCode::FAILURE;
        }
    };
    match out_path {
        None => print!("{rust}"),
        Some(p) => {
            if let Err(e) = std::fs::write(&p, &rust) {
                eprintln!("gmc emit-rust: cannot write {p}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn parse_value(text: &str) -> Result<Value, String> {
    if let Some(node) = text.strip_prefix("n:") {
        return node
            .parse::<u32>()
            .map(Value::Node)
            .map_err(|e| format!("bad node id {text}: {e}"));
    }
    if text == "true" || text == "True" {
        return Ok(Value::Bool(true));
    }
    if text == "false" || text == "False" {
        return Ok(Value::Bool(false));
    }
    if let Ok(v) = text.parse::<i64>() {
        return Ok(Value::Int(v));
    }
    if let Ok(v) = text.parse::<f64>() {
        return Ok(Value::Double(v));
    }
    Err(format!(
        "cannot parse value {text:?} (try 42, 0.5, true, n:3)"
    ))
}

fn cmd_run(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("gmc run: missing input file");
        return ExitCode::FAILURE;
    };
    let mut graph_path = None;
    let mut native_backend = false;
    let mut scalar_args: Vec<(String, Value)> = Vec::new();
    let mut seed = 0u64;
    let mut workers = 0usize;
    let mut print_prop: Option<String> = None;
    let mut steps = false;
    let mut timing = false;
    let mut schedule: Option<Schedule> = None;
    let mut dense_threshold: Option<f64> = None;
    let mut trace_path: Option<String> = None;
    let mut trace_format = TraceFormat::Jsonl;
    let mut ckpt_every: Option<u32> = None;
    let mut ckpt_dir: Option<String> = None;
    let mut resume = false;
    let mut keep_snapshots = 0usize;
    let mut max_restarts: Option<u32> = None;
    let mut max_message_bytes: Option<u64> = None;
    let mut superstep_deadline_ms: Option<u64> = None;
    let mut spill_dir: Option<String> = None;
    let mut edge_policy = LoadPolicy::Strict;
    let mut metrics_listen: Option<String> = None;
    let mut metrics_file: Option<String> = None;
    let mut post_mortem_dir: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        let mut take = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("gmc run: {flag} needs a value"))
        };
        let r: Result<(), String> = (|| {
            match a.as_str() {
                "--graph" => graph_path = Some(take("--graph")?),
                "--backend" => match take("--backend")?.as_str() {
                    "interp" => native_backend = false,
                    "native" => native_backend = true,
                    other => {
                        return Err(format!(
                            "gmc run: unknown --backend {other} (interp|native)"
                        ))
                    }
                },
                "--seed" => {
                    seed = take("--seed")?
                        .parse()
                        .map_err(|e| format!("bad seed: {e}"))?
                }
                "--workers" => {
                    workers = take("--workers")?
                        .parse()
                        .map_err(|e| format!("bad workers: {e}"))?
                }
                "--print" => print_prop = Some(take("--print")?),
                "--steps" => steps = true,
                "--timing" => timing = true,
                "--schedule" => {
                    schedule = Some(
                        take("--schedule")?
                            .parse()
                            .map_err(|e| format!("gmc run: {e}"))?,
                    )
                }
                "--dense-threshold" => {
                    dense_threshold = Some(
                        take("--dense-threshold")?
                            .parse()
                            .map_err(|e| format!("bad dense threshold: {e}"))?,
                    );
                }
                "--trace" => trace_path = Some(take("--trace")?),
                "--trace-format" => {
                    trace_format = take("--trace-format")?.parse()?;
                }
                "--checkpoint-every" => {
                    ckpt_every = Some(
                        take("--checkpoint-every")?
                            .parse()
                            .map_err(|e| format!("bad checkpoint interval: {e}"))?,
                    );
                }
                "--checkpoint-dir" => ckpt_dir = Some(take("--checkpoint-dir")?),
                "--resume" => resume = true,
                "--keep-snapshots" => {
                    keep_snapshots = take("--keep-snapshots")?
                        .parse()
                        .map_err(|e| format!("bad snapshot count: {e}"))?;
                }
                "--max-restarts" => {
                    max_restarts = Some(
                        take("--max-restarts")?
                            .parse()
                            .map_err(|e| format!("bad restart budget: {e}"))?,
                    );
                }
                "--max-message-bytes" => {
                    max_message_bytes = Some(
                        take("--max-message-bytes")?
                            .parse()
                            .map_err(|e| format!("bad message budget: {e}"))?,
                    );
                }
                "--superstep-deadline" => {
                    superstep_deadline_ms = Some(
                        take("--superstep-deadline")?
                            .parse()
                            .map_err(|e| format!("bad deadline (milliseconds): {e}"))?,
                    );
                }
                "--spill-dir" => spill_dir = Some(take("--spill-dir")?),
                "--metrics-listen" => metrics_listen = Some(take("--metrics-listen")?),
                "--metrics-file" => metrics_file = Some(take("--metrics-file")?),
                "--post-mortem-dir" => post_mortem_dir = Some(take("--post-mortem-dir")?),
                "--edge-policy" => match take("--edge-policy")?.as_str() {
                    "strict" => edge_policy = LoadPolicy::Strict,
                    "skip" => edge_policy = LoadPolicy::SkipAndCount,
                    other => {
                        return Err(format!(
                            "gmc run: unknown --edge-policy {other} (strict|skip)"
                        ))
                    }
                },
                "--arg" => {
                    let kv = take("--arg")?;
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| format!("--arg expects name=value, got {kv:?}"))?;
                    scalar_args.push((k.to_owned(), parse_value(v)?));
                }
                other => return Err(format!("gmc run: unknown flag {other}")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let Some(graph_path) = graph_path else {
        eprintln!("gmc run: --graph is required");
        return ExitCode::FAILURE;
    };

    let tracer = match open_tracer(trace_path.as_deref(), trace_format) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gmc run: {e}");
            return ExitCode::FAILURE;
        }
    };
    let compiled = match load_and_compile(path, true, None, tracer.as_ref()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if timing {
        print!("{}", compiled.report.timing_table());
    }
    let loaded = match gm_graph::io::read_edge_list_file_with(&graph_path, edge_policy) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("gmc run: cannot load graph {graph_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if loaded.stats.lines_skipped > 0 {
        let first = loaded.stats.first_skipped.as_ref();
        eprintln!(
            "gmc run: skipped {} malformed line(s) in {graph_path}{}",
            loaded.stats.lines_skipped,
            first
                .map(|m| format!(" (first: line {}, {})", m.line, m.reason))
                .unwrap_or_default()
        );
    }

    let mut arg_map: HashMap<String, ArgValue> = scalar_args
        .into_iter()
        .map(|(k, v)| (k, ArgValue::Scalar(v)))
        .collect();
    // Feed the weight column to the first edge-property parameter.
    if let Some((name, _)) = compiled.program.edge_props.first() {
        arg_map.entry(name.clone()).or_insert_with(|| {
            ArgValue::EdgeProp(loaded.weights.iter().map(|&w| Value::Int(w)).collect())
        });
    }

    let mut config = if workers == 0 {
        PregelConfig::default()
    } else {
        PregelConfig::with_workers(workers)
    };
    // Flags layer on top of the GM_SCHEDULE / GM_DENSE_THRESHOLD defaults.
    if let Some(s) = schedule {
        config = config.with_schedule(s);
    }
    if let Some(t) = dense_threshold {
        config = config.with_dense_threshold(t);
    }
    if let Some(t) = &tracer {
        config = config.with_tracer(t.clone());
    }
    if let Some(every) = ckpt_every {
        let dir = ckpt_dir
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::env::temp_dir().join("gm-ckpt"));
        config = config.with_checkpoints(
            CheckpointConfig::new(dir, every)
                .with_resume(resume)
                .with_keep(keep_snapshots),
        );
    }
    if let Some(n) = max_restarts {
        config = config.with_recovery(RecoveryPolicy::with_max_restarts(n));
    }
    if max_message_bytes.is_some() || superstep_deadline_ms.is_some() || spill_dir.is_some() {
        // Flags layer on top of the environment-derived defaults.
        let mut budget = ResourceBudget::from_env();
        if let Some(bytes) = max_message_bytes {
            budget = budget.with_max_message_bytes(bytes);
        }
        if let Some(ms) = superstep_deadline_ms {
            budget = budget.with_superstep_deadline(std::time::Duration::from_millis(ms));
        }
        if let Some(dir) = &spill_dir {
            budget = budget.with_spill_dir(dir);
        }
        config = config.with_budget(budget);
    }
    let registry = (metrics_listen.is_some() || metrics_file.is_some())
        .then(|| Arc::new(MetricsRegistry::new()));
    if let Some(r) = &registry {
        config = config.with_registry(r.clone());
    }
    // The flag layers on top of the GM_POST_MORTEM_DIR default.
    if let Some(dir) = &post_mortem_dir {
        config = config.with_post_mortem(PostMortemConfig::new(dir));
    }
    let _server = match &metrics_listen {
        None => None,
        Some(addr) => {
            let r = registry.clone().expect("listen flag implies a registry");
            match gm_obs::http::serve(addr.as_str(), r) {
                Ok(s) => {
                    eprintln!("gmc run: serving metrics at http://{}/metrics", s.addr());
                    Some(s)
                }
                Err(e) => {
                    eprintln!("gmc run: cannot bind metrics endpoint {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    // Writes the final text exposition; on failure the snapshot still
    // carries everything up to (and including) the failure counters.
    let write_exposition = |registry: &Option<Arc<MetricsRegistry>>| -> Result<(), ExitCode> {
        if let (Some(r), Some(path)) = (registry, &metrics_file) {
            if let Err(e) = r.write_prometheus(path) {
                eprintln!("gmc run: cannot write metrics file {path}: {e}");
                return Err(ExitCode::FAILURE);
            }
        }
        Ok(())
    };
    // `--backend native` dispatches to a rustgen module compiled into the
    // binary. Programs are matched by *generated source*: the compiled PIR
    // is re-emitted through `gm-core::rustgen` and compared byte-for-byte
    // against each registered module, so a native run is guaranteed to
    // execute exactly the code `gmc emit-rust` would print today.
    let native = if native_backend {
        match gm_core::rustgen::emit_rust(&compiled.program) {
            Ok(generated) => match gm_algorithms::native::find_for_generated(&generated) {
                Some(alg) => {
                    eprintln!("gmc run: backend native ({})", alg.name);
                    Some(alg)
                }
                None => {
                    eprintln!(
                        "gmc run: no native module compiled in for `{}` (have: {}); \
                         regenerate with `gmc emit-rust` and rebuild, or drop --backend native",
                        compiled.program.name,
                        gm_algorithms::native::ALL
                            .iter()
                            .map(|a| a.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!(
                    "gmc run: cannot emit native code for `{}`: {e}",
                    compiled.program.name
                );
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let start = std::time::Instant::now();
    let result = match native {
        Some(alg) => (alg.run)(&loaded.graph, &arg_map, seed, &config),
        None => run_compiled(&loaded.graph, &compiled, &arg_map, seed, &config),
    };
    let out = match result {
        Ok(o) => o,
        Err(e) => {
            // The error's Display already names the post-mortem bundle
            // directory when one was written.
            eprintln!("gmc run: {e}");
            let _ = write_exposition(&registry);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "ran `{}` on {} vertices / {} edges in {:.2?}",
        compiled.program.name,
        loaded.graph.num_nodes(),
        loaded.graph.num_edges(),
        start.elapsed()
    );
    println!(
        "supersteps: {}   messages: {} ({} bytes)",
        out.metrics.supersteps, out.metrics.total_messages, out.metrics.total_message_bytes
    );
    if config.schedule != Schedule::Push {
        println!(
            "schedule: {:?}   pull supersteps: {}   direction switches: {}",
            config.schedule, out.metrics.pull_supersteps, out.metrics.direction_switches
        );
    }
    let rec = &out.metrics.recovery;
    if rec.checkpoints_written > 0 || rec.restores > 0 || rec.restarts > 0 {
        println!(
            "checkpoints: {} written ({} bytes)   restores: {}   restarts: {}",
            rec.checkpoints_written, rec.snapshot_bytes, rec.restores, rec.restarts
        );
    }
    let spill = &out.metrics.spill;
    if spill.buckets_spilled > 0 {
        println!(
            "spills: {} buckets ({} message bytes, {} on disk)   replayed: {}   peak in-flight: {} bytes",
            spill.buckets_spilled,
            spill.spilled_message_bytes,
            spill.spill_file_bytes,
            spill.files_replayed,
            spill.peak_in_flight_bytes
        );
    }
    if let Some(r) = &registry {
        println!("per-phase latency, seconds (p50 / p90 / p99):");
        for phase in ["master", "compute", "combine", "exchange", "barrier"] {
            // Retrieves the series the runtime's feed registered; the help
            // text is only used if the family were somehow absent.
            let h = r.histogram_with(
                "gm_phase_seconds",
                "wall-clock per phase",
                &[("phase", phase)],
            );
            let (p50, p90, p99) = h.percentiles();
            println!(
                "  {phase:<9} {p50:>11.6} / {p90:>11.6} / {p99:>11.6}   ({} observations)",
                h.count()
            );
        }
    }
    if let Err(code) = write_exposition(&registry) {
        return code;
    }
    if let (Some(_), Some(path)) = (&registry, &metrics_file) {
        println!("metrics exposition written to {path}");
    }
    if let Some(ret) = &out.ret {
        println!("return value: {ret}");
    }
    if steps {
        println!(
            "{:>9} {:>6} {:>5} {:>10} {:>10} {:>12}",
            "superstep", "state", "dir", "active", "messages", "bytes"
        );
        for (i, t) in out.trace.iter().enumerate() {
            let dir = match out.metrics.per_superstep.get(i) {
                Some(s) if s.pulled => "pull",
                _ => "push",
            };
            println!(
                "{:>9} {:>6} {:>5} {:>10} {:>10} {:>12}",
                i, t.state, dir, t.active_vertices, t.messages_sent, t.message_bytes
            );
        }
    }
    if let Some(t) = &tracer {
        if let Err(e) = t.finish() {
            eprintln!("gmc run: cannot finish trace: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(prop) = print_prop {
        match out.node_props.get(&prop) {
            Some(values) => {
                for (i, v) in values.iter().enumerate() {
                    println!("{i}\t{v}");
                }
            }
            None => {
                eprintln!(
                    "gmc run: no property `{prop}` (have: {})",
                    out.node_props
                        .keys()
                        .cloned()
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
