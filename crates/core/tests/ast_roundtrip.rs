//! Structured parser/printer round-trip: generate random ASTs directly
//! (deeper grammar coverage than string-level fuzzing), print them, parse
//! the output, and require a pretty-print fixed point.

use gm_core::ast::*;
use gm_core::parser::parse;
use gm_core::pretty::program_to_string;
use gm_core::types::Ty;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    // Avoid keywords and type names.
    "[a-z][a-z0-9_]{0,6}".prop_filter("reserved word", |s| {
        !matches!(
            s.as_str(),
            "min" | "max" // recombine into reduction-assignment tokens
        )
    })
}

fn scalar_ty() -> impl Strategy<Value = Ty> {
    prop_oneof![
        Just(Ty::Int),
        Just(Ty::Long),
        Just(Ty::Float),
        Just(Ty::Double),
        Just(Ty::Bool),
        Just(Ty::Node),
    ]
}

fn literal() -> impl Strategy<Value = ExprKind> {
    prop_oneof![
        (-100i64..100).prop_map(ExprKind::IntLit),
        (-100i64..100).prop_map(|v| ExprKind::FloatLit(v as f64 / 4.0)),
        any::<bool>().prop_map(ExprKind::BoolLit),
        Just(ExprKind::Nil),
    ]
}

fn expr(vars: Vec<String>) -> impl Strategy<Value = Expr> {
    let leaf = {
        let vars = vars.clone();
        prop_oneof![
            literal().prop_map(Expr::synth),
            (0..vars.len().max(1)).prop_map(move |i| {
                if vars.is_empty() {
                    Expr::int(1)
                } else {
                    Expr::var(&vars[i % vars.len()])
                }
            }),
        ]
    };
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), any::<u8>(), inner.clone()).prop_map(|(a, op, b)| {
                let ops = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Eq,
                    BinOp::Lt,
                    BinOp::Ge,
                ];
                Expr::binary(ops[op as usize % ops.len()], a, b)
            }),
            inner.clone().prop_map(|e| Expr::synth(ExprKind::Unary {
                op: UnOp::Neg,
                expr: Box::new(e),
            })),
            inner.clone().prop_map(|e| Expr::synth(ExprKind::Unary {
                op: UnOp::Abs,
                expr: Box::new(e),
            })),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| Expr::synth(
                ExprKind::Ternary {
                    cond: Box::new(c),
                    then_val: Box::new(a),
                    else_val: Box::new(b),
                }
            )),
        ]
    })
}

fn stmt(vars: Vec<String>, depth: u32) -> BoxedStrategy<Stmt> {
    let assign = {
        let vars = vars.clone();
        (0..vars.len().max(1), expr(vars.clone()), any::<u8>()).prop_map(move |(i, e, op)| {
            let ops = [
                AssignOp::Assign,
                AssignOp::Add,
                AssignOp::Sub,
                AssignOp::Min,
                AssignOp::Max,
            ];
            let name = if vars.is_empty() {
                "x".to_owned()
            } else {
                vars[i % vars.len()].clone()
            };
            Stmt::synth(StmtKind::Assign {
                target: Target::Scalar(name),
                op: ops[op as usize % ops.len()],
                value: e,
            })
        })
    };
    if depth == 0 {
        return assign.boxed();
    }
    let nested_if = {
        let vars = vars.clone();
        (
            expr(vars.clone()),
            prop::collection::vec(stmt(vars.clone(), depth - 1), 1..3),
            prop::option::of(prop::collection::vec(stmt(vars, depth - 1), 1..3)),
        )
            .prop_map(|(cond, then_s, else_s)| {
                Stmt::synth(StmtKind::If {
                    cond,
                    then_branch: Block::of(then_s),
                    else_branch: else_s.map(Block::of),
                })
            })
    };
    let nested_while = {
        let vars = vars.clone();
        (
            expr(vars.clone()),
            prop::collection::vec(stmt(vars, depth - 1), 1..3),
        )
            .prop_map(|(cond, body)| {
                Stmt::synth(StmtKind::While {
                    cond,
                    body: Block::of(body),
                    do_while: false,
                })
            })
    };
    prop_oneof![3 => assign, 1 => nested_if, 1 => nested_while].boxed()
}

fn program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec((ident(), scalar_ty()), 1..4),
        prop::collection::vec(Just(()), 0..1),
    )
        .prop_flat_map(|(decls, _)| {
            // Deduplicate declared names.
            let mut names = Vec::new();
            let mut unique = Vec::new();
            for (n, t) in decls {
                if !names.contains(&n) {
                    names.push(n.clone());
                    unique.push((n, t));
                }
            }
            let vars: Vec<String> = unique.iter().map(|(n, _)| n.clone()).collect();
            prop::collection::vec(stmt(vars, 2), 0..5).prop_map(move |stmts| {
                let mut body = Vec::new();
                for (n, t) in &unique {
                    body.push(Stmt::synth(StmtKind::VarDecl {
                        ty: t.clone(),
                        name: n.clone(),
                        init: Some(match t {
                            Ty::Bool => Expr::bool(false),
                            Ty::Node => Expr::synth(ExprKind::Nil),
                            Ty::Float | Ty::Double => Expr::synth(ExprKind::FloatLit(0.0)),
                            _ => Expr::int(0),
                        }),
                    }));
                }
                body.extend(stmts);
                Program {
                    procedures: vec![Procedure {
                        name: "generated".into(),
                        params: vec![Param {
                            name: "G".into(),
                            ty: Ty::Graph,
                            span: gm_core::Span::synthetic(),
                        }],
                        ret: None,
                        body: Block::of(body),
                        span: gm_core::Span::synthetic(),
                    }],
                }
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print(parse(print(ast))) == print(ast): the printer emits valid
    /// Green-Marl and reaches a fixed point.
    #[test]
    fn pretty_print_parse_fixed_point(p in program()) {
        let printed = program_to_string(&p);
        let reparsed = parse(&printed).unwrap_or_else(|e| {
            panic!("printer emitted invalid source:\n{}\n---\n{printed}", e.render(&printed));
        });
        let printed2 = program_to_string(&reparsed);
        prop_assert_eq!(printed, printed2);
    }
}
