//! The end-to-end compilation pipeline (Fig. 1 of the paper).

use crate::ast::Program;
use crate::astutil::count_nodes;
use crate::canonical::check_canonical;
use crate::diag::Diagnostics;
use crate::normalize::desugar_bulk;
use crate::parser::parse;
use crate::pir::PregelProgram;
use crate::pretty::procedure_to_string;
use crate::report::TransformReport;
use crate::sema::ProcInfo;
use crate::transform::canonicalize;
use crate::translate::translate;
use gm_obs::{Category, Tracer};
use std::time::Instant;

/// Compilation switches (the ablation benches flip these).
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions {
    /// §4.2 State Merging.
    pub state_merging: bool,
    /// §4.2 Intra-Loop State Merging.
    pub intra_loop_merging: bool,
    /// Extension beyond the paper: mark single-reduction message tags as
    /// combinable so the runtime can fold them sender-side (off by
    /// default, like the paper's compiler).
    pub combiners: bool,
    /// Run the [`crate::verify`] PIR well-formedness checks after
    /// translation and after every optimization pass, turning internal
    /// compiler bugs into structured diagnostics instead of downstream
    /// panics or silent miscompiles. On by default in debug/test builds,
    /// off in release builds; `gmc verify` forces it on.
    pub verify: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            state_merging: true,
            intra_loop_merging: true,
            combiners: false,
            verify: cfg!(debug_assertions),
        }
    }
}

impl CompileOptions {
    /// Disables both optimizations (the naive translation).
    pub fn unoptimized() -> Self {
        CompileOptions {
            state_merging: false,
            intra_loop_merging: false,
            ..Self::default()
        }
    }

    /// Everything on, including the combiner extension.
    pub fn with_combiners() -> Self {
        CompileOptions {
            combiners: true,
            ..Self::default()
        }
    }

    /// Forces the PIR verifier on regardless of build profile.
    pub fn verified(mut self) -> Self {
        self.verify = true;
        self
    }
}

/// The result of compiling one procedure.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The executable Pregel state machine.
    pub program: PregelProgram,
    /// Which transformation/translation steps fired (Table 3).
    pub report: TransformReport,
    /// The Pregel-canonical Green-Marl the transformations produced.
    pub canonical_source: String,
    /// Final symbol table.
    pub info: ProcInfo,
    /// The canonical AST (used by differential tests).
    pub ast: crate::ast::Procedure,
}

/// Compiles the first procedure of `src` into a Pregel program.
///
/// Pipeline: parse → bulk-assignment desugar → type check → §4.1
/// transformations → §3.2 canonical check → §3.1 translation → §4.2
/// optimization.
///
/// # Errors
///
/// Returns every diagnostic produced by the failing phase.
pub fn compile(src: &str, options: &CompileOptions) -> Result<Compiled, Diagnostics> {
    compile_with(src, options, None)
}

/// [`compile`], optionally re-emitting the per-pass timings into a
/// [`Tracer`] as compiler-category spans (plus an instant event naming
/// the transformation steps that fired). The timings themselves are
/// always collected into [`Compiled::report`]; the tracer only controls
/// whether they also land in a trace file.
///
/// # Errors
///
/// Returns every diagnostic produced by the failing phase.
pub fn compile_with(
    src: &str,
    options: &CompileOptions,
    tracer: Option<&Tracer>,
) -> Result<Compiled, Diagnostics> {
    let mut report = TransformReport::new();

    let started = Instant::now();
    let mut program: Program = parse(src)?;
    let parsed_nodes: usize = program.procedures.iter().map(count_nodes).sum();
    report.record_timing("parse", started.elapsed(), 0, parsed_nodes);

    let started = Instant::now();
    desugar_bulk(&mut program);
    if program.procedures.is_empty() {
        let mut d = Diagnostics::new();
        d.error(crate::diag::Span::synthetic(), "no procedure to compile");
        return Err(d);
    }
    let desugared_nodes: usize = program.procedures.iter().map(count_nodes).sum();
    report.record_timing("desugar", started.elapsed(), parsed_nodes, desugared_nodes);
    let mut proc = program.procedures.remove(0);

    let info = canonicalize(&mut proc, &mut report)?;

    let ast_nodes = count_nodes(&proc);
    let started = Instant::now();
    check_canonical(&proc, &info)?;
    report.record_timing("check_canonical", started.elapsed(), ast_nodes, ast_nodes);
    let canonical_source = procedure_to_string(&proc);

    let started = Instant::now();
    let mut pregel = translate(&proc, &info, &mut report)?;
    report.record_timing(
        "translate",
        started.elapsed(),
        ast_nodes,
        pregel.num_instrs(),
    );
    if options.verify {
        crate::verify::verify_stage(
            &pregel,
            "translate",
            &crate::verify::VerifyOptions::strict(),
        )?;
    }

    let instrs_before = pregel.num_instrs();
    let started = Instant::now();
    if options.verify {
        crate::optimize::optimize_verified(
            &mut pregel,
            options.state_merging,
            options.intra_loop_merging,
            &mut report,
        )?;
    } else {
        crate::optimize::optimize(
            &mut pregel,
            options.state_merging,
            options.intra_loop_merging,
            &mut report,
        );
    }
    if options.combiners {
        crate::optimize::mark_combiners(&mut pregel);
        if options.verify {
            crate::verify::verify_stage(
                &pregel,
                "mark_combiners",
                &crate::verify::VerifyOptions::strict(),
            )?;
        }
    }
    report.record_timing(
        "optimize",
        started.elapsed(),
        instrs_before,
        pregel.num_instrs(),
    );

    // Pullability runs last: state merging and combiner marking reshape
    // kernels, and the verdicts must describe the final state machine.
    let started = Instant::now();
    crate::pullability::annotate(&mut pregel);
    report.record_timing(
        "pullability",
        started.elapsed(),
        pregel.num_instrs(),
        pregel.num_instrs(),
    );

    if let Some(t) = tracer {
        emit_pass_spans(t, &report);
    }

    Ok(Compiled {
        program: pregel,
        report,
        canonical_source,
        info,
        ast: proc,
    })
}

/// Re-emits the collected pass timings as consecutive compiler-category
/// spans ending "now" (the measurements were taken before the tracer saw
/// them, so the spans are laid out back-to-back at their cumulative
/// offsets), plus an instant event naming the Table 3 steps that fired.
fn emit_pass_spans(tracer: &Tracer, report: &TransformReport) {
    let total: u64 = report
        .pass_timings()
        .iter()
        .map(|t| t.duration.as_micros() as u64)
        .sum();
    let mut ts = tracer.now_us().saturating_sub(total);
    for timing in report.pass_timings() {
        let dur = timing.duration.as_micros() as u64;
        tracer.span_at(
            format!("pass/{}", timing.pass),
            Category::Compiler,
            0,
            ts,
            dur,
            vec![
                ("nodes_before", timing.nodes_before.into()),
                ("nodes_after", timing.nodes_after.into()),
            ],
        );
        ts += dur;
    }
    tracer.instant(
        "transform_steps",
        Category::Compiler,
        0,
        vec![("steps", report.to_string().into())],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Step;

    #[test]
    fn compile_avg_teen_like_program() {
        let src = "Procedure avg_teen(G: Graph, age, teen_cnt: N_P<Int>, K: Int) : Double {
            Foreach (n: G.Nodes) {
                n.teen_cnt = Count(t: n.InNbrs)(t.age >= 13 && t.age < 20);
            }
            Double avg = Avg(n: G.Nodes)[n.age > K]{n.teen_cnt};
            Return avg;
        }";
        let compiled = compile(src, &CompileOptions::default()).expect("compiles");
        assert!(compiled.report.applied(Step::StateMachine));
        assert!(compiled.report.applied(Step::FlippingEdge));
        assert!(compiled.report.applied(Step::DissectingLoops));
        assert!(compiled.program.num_vertex_kernels() >= 2);
        assert!(compiled.canonical_source.contains("Foreach"));
        assert!(!compiled.canonical_source.contains("Count("));
    }

    #[test]
    fn compile_reports_canonicality_errors() {
        // A random read in sequential phase cannot be transformed away.
        let src = "Procedure f(G: Graph, s: Node, x: N_P<Int>) : Int {
            Int v = s.x;
            Return v;
        }";
        let err = compile(src, &CompileOptions::default()).unwrap_err();
        assert!(err.to_string().contains("random reading"), "{err}");
    }

    #[test]
    fn optimization_flags_change_state_count() {
        let src = "Procedure f(G: Graph, x: N_P<Int>, x2: N_P<Int>) {
            Int k = 0;
            While (k < 3) {
                Foreach (n: G.Nodes) {
                    Foreach (t: n.Nbrs) {
                        t.x2 += n.x;
                    }
                }
                Foreach (n: G.Nodes) {
                    n.x = n.x2;
                    n.x2 = 0;
                }
                k += 1;
            }
        }";
        let unopt = compile(src, &CompileOptions::unoptimized()).unwrap();
        let opt = compile(src, &CompileOptions::default()).unwrap();
        assert!(opt.program.states.len() <= unopt.program.states.len());
        assert!(opt.report.applied(Step::IntraLoopMerge));
    }

    #[test]
    fn parse_errors_surface() {
        assert!(compile("Procedure f(", &CompileOptions::default()).is_err());
    }

    #[test]
    fn pass_timings_cover_the_pipeline_and_reach_the_tracer() {
        let src = "Procedure f(G: Graph, x: N_P<Int>, x2: N_P<Int>) {
            Foreach (n: G.Nodes) {
                Foreach (t: n.Nbrs) {
                    t.x2 += n.x;
                }
            }
        }";
        let (tracer, sink) = Tracer::in_memory();
        let compiled = compile_with(src, &CompileOptions::default(), Some(&tracer)).unwrap();
        let passes: Vec<&str> = compiled
            .report
            .pass_timings()
            .iter()
            .map(|t| t.pass)
            .collect();
        for expected in [
            "parse",
            "desugar",
            "canonicalize/sema",
            "canonicalize/flip",
            "check_canonical",
            "translate",
            "optimize",
        ] {
            assert!(passes.contains(&expected), "missing {expected}: {passes:?}");
        }
        // Node counts are populated: parse produces a non-empty AST, and
        // translate switches to PIR instruction counts.
        let parse_t = &compiled.report.pass_timings()[0];
        assert_eq!(parse_t.pass, "parse");
        assert!(parse_t.nodes_after > 0);
        // One compiler span per pass plus the steps instant.
        let events = sink.events();
        let spans = events
            .iter()
            .filter(|e| e.name.starts_with("pass/"))
            .count();
        assert_eq!(spans, passes.len());
        assert!(events.iter().any(|e| e.name == "transform_steps"));
        assert!(events
            .iter()
            .all(|e| e.cat == gm_obs::Category::Compiler && e.tid == 0));
        // The timing table renders every pass.
        let table = compiled.report.timing_table();
        assert!(table.contains("canonicalize/flip"), "{table}");
    }
}
