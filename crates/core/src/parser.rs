//! Recursive-descent parser for the Green-Marl subset.
//!
//! The grammar follows the Green-Marl sources shown in the paper (Figures 2
//! and 4 and the Appendix): procedures, scalar/property declarations,
//! (reduction) assignments, `If`/`While`/`Do-While`, parallel `Foreach` with
//! optional filters, `InBFS`/`InReverse` traversals, and aggregate
//! expressions (`Sum`, `Count`, `Exist`, ...).

use crate::ast::*;
use crate::diag::{Diag, Diagnostics, Span};
use crate::lexer::{lex, Tok, Token};
use crate::types::Ty;

/// Parses a complete Green-Marl source text.
///
/// # Errors
///
/// Returns all lexical errors (first only) or the first syntax error.
pub fn parse(src: &str) -> Result<Program, Diagnostics> {
    let tokens = lex(src).map_err(|d| Diagnostics { errors: vec![d] })?;
    let mut p = Parser { tokens, pos: 0 };
    match p.program() {
        Ok(prog) => Ok(prog),
        Err(d) => Err(Diagnostics { errors: vec![d] }),
    }
}

/// Parses a single expression — used by tests and the REPL-style examples.
///
/// # Errors
///
/// Returns the first lexical or syntax error.
pub fn parse_expr(src: &str) -> Result<Expr, Diagnostics> {
    let tokens = lex(src).map_err(|d| Diagnostics { errors: vec![d] })?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr().map_err(|d| Diagnostics { errors: vec![d] })?;
    p.expect(&Tok::Eof)
        .map_err(|d| Diagnostics { errors: vec![d] })?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

type PResult<T> = Result<T, Diag>;

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok) -> PResult<Span> {
        if self.peek() == tok {
            let sp = self.span();
            self.bump();
            Ok(sp)
        } else {
            Err(Diag::new(
                self.span(),
                format!("expected {tok}, found {}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(Diag::new(
                self.span(),
                format!("expected identifier, found {other}"),
            )),
        }
    }

    // ---- program structure ----

    fn program(&mut self) -> PResult<Program> {
        let mut procedures = Vec::new();
        while self.peek() != &Tok::Eof {
            procedures.push(self.procedure()?);
        }
        if procedures.is_empty() {
            return Err(Diag::new(self.span(), "empty input: expected a Procedure"));
        }
        Ok(Program { procedures })
    }

    fn procedure(&mut self) -> PResult<Procedure> {
        let start = self.expect(&Tok::Procedure)?;
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                // One or more names sharing a type: `a, b: T`.
                let mut names = vec![(self.ident()?, self.prev_span())];
                while self.eat(&Tok::Comma) {
                    // Lookahead: `name :` continues this group only if the
                    // token after the name is not a ':' starting a new type
                    // for the *same* group... groups always end at ':'.
                    names.push((self.ident()?, self.prev_span()));
                    if self.peek() == &Tok::Colon {
                        break;
                    }
                }
                self.expect(&Tok::Colon)?;
                let ty = self.ty()?;
                for (n, sp) in names {
                    params.push(Param {
                        name: n,
                        ty: ty.clone(),
                        span: sp,
                    });
                }
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let ret = if self.eat(&Tok::Colon) {
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(Procedure {
            name,
            params,
            ret,
            body,
            span: start,
        })
    }

    fn ty(&mut self) -> PResult<Ty> {
        let sp = self.span();
        let name = self.ident()?;
        let ty = match name.as_str() {
            "Int" => Ty::Int,
            "Long" => Ty::Long,
            "Float" => Ty::Float,
            "Double" => Ty::Double,
            "Bool" => Ty::Bool,
            "Node" => Ty::Node,
            "Edge" => Ty::Edge,
            "Graph" => Ty::Graph,
            "Node_Prop" | "N_P" | "NodeProp" => {
                self.expect(&Tok::Lt)?;
                let inner = self.ty()?;
                self.expect(&Tok::Gt)?;
                self.maybe_graph_binding()?;
                return Ok(Ty::NodeProp(Box::new(inner)));
            }
            "Edge_Prop" | "E_P" | "EdgeProp" => {
                self.expect(&Tok::Lt)?;
                let inner = self.ty()?;
                self.expect(&Tok::Gt)?;
                self.maybe_graph_binding()?;
                return Ok(Ty::EdgeProp(Box::new(inner)));
            }
            other => {
                return Err(Diag::new(sp, format!("unknown type `{other}`")));
            }
        };
        Ok(ty)
    }

    /// Accepts and ignores the optional graph binding `(G)` after a property
    /// type — the subset supports only a single input graph.
    fn maybe_graph_binding(&mut self) -> PResult<()> {
        if self.eat(&Tok::LParen) {
            self.ident()?;
            self.expect(&Tok::RParen)?;
        }
        Ok(())
    }

    fn is_type_name(tok: &Tok) -> bool {
        matches!(tok, Tok::Ident(name) if matches!(
            name.as_str(),
            "Int" | "Long" | "Float" | "Double" | "Bool" | "Node" | "Edge" | "Graph"
                | "Node_Prop" | "N_P" | "NodeProp" | "Edge_Prop" | "E_P" | "EdgeProp"
        ))
    }

    // ---- statements ----

    fn block(&mut self) -> PResult<Block> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            if self.peek() == &Tok::Eof {
                return Err(Diag::new(
                    self.span(),
                    "unexpected end of input inside block",
                ));
            }
            if self.eat(&Tok::Semi) {
                continue; // empty statement
            }
            self.append_stmt(&mut stmts)?;
        }
        self.expect(&Tok::RBrace)?;
        Ok(Block { stmts })
    }

    /// Parses one source statement, which may expand to several AST
    /// statements (multi-declarators like `Int a = 0, b = 1;` are spliced
    /// into the surrounding block so the declared names stay in scope).
    fn append_stmt(&mut self, out: &mut Vec<Stmt>) -> PResult<()> {
        if Self::is_type_name(self.peek()) && matches!(self.peek2(), Tok::Ident(_) | Tok::Lt) {
            self.var_decls(out)
        } else {
            let s = self.stmt()?;
            out.push(s);
            Ok(())
        }
    }

    /// Parses a statement; single statements after `If`/`While`/loops are
    /// wrapped into one-element blocks by the callers.
    fn stmt(&mut self) -> PResult<Stmt> {
        let sp = self.span();
        match self.peek().clone() {
            Tok::LBrace => {
                let b = self.block()?;
                Ok(Stmt {
                    kind: StmtKind::Block(b),
                    span: sp,
                })
            }
            Tok::If => self.if_stmt(),
            Tok::While => self.while_stmt(),
            Tok::Do => self.do_while_stmt(),
            Tok::Foreach => self.foreach_stmt(true),
            Tok::For => self.foreach_stmt(false),
            Tok::InBfs => self.inbfs_stmt(),
            Tok::Return => {
                self.bump();
                let value = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Return(value),
                    span: sp,
                })
            }
            tok if Self::is_type_name(&tok) && matches!(self.peek2(), Tok::Ident(_) | Tok::Lt) => {
                // A declaration in single-statement position (e.g. the body
                // of an If without braces); multi-declarators become a block.
                let mut stmts = Vec::new();
                self.var_decls(&mut stmts)?;
                if stmts.len() == 1 {
                    Ok(stmts.pop().expect("one statement parsed"))
                } else {
                    Ok(Stmt {
                        kind: StmtKind::Block(Block { stmts }),
                        span: sp,
                    })
                }
            }
            Tok::Ident(_) => self.assign_stmt(),
            other => Err(Diag::new(sp, format!("expected statement, found {other}"))),
        }
    }

    /// Parses `T a [= e] [, b [= e]]* ;` into one `VarDecl` per declarator.
    fn var_decls(&mut self, out: &mut Vec<Stmt>) -> PResult<()> {
        let sp = self.span();
        let ty = self.ty()?;
        loop {
            let name = self.ident()?;
            let init = if self.eat(&Tok::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            out.push(Stmt {
                kind: StmtKind::VarDecl {
                    ty: ty.clone(),
                    name,
                    init,
                },
                span: sp,
            });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::Semi)?;
        Ok(())
    }

    fn assign_stmt(&mut self) -> PResult<Stmt> {
        let sp = self.span();
        let base = self.ident()?;
        let target = if self.eat(&Tok::Dot) {
            let prop = self.ident()?;
            Target::Prop { obj: base, prop }
        } else {
            Target::Scalar(base)
        };
        // Determine the operator; `min=`/`max=` arrive as Ident + Assign.
        let op = match self.peek().clone() {
            Tok::Assign => {
                self.bump();
                AssignOp::Assign
            }
            Tok::Le => {
                self.bump();
                AssignOp::Defer
            }
            Tok::PlusAssign => {
                self.bump();
                AssignOp::Add
            }
            Tok::MinusAssign => {
                self.bump();
                AssignOp::Sub
            }
            Tok::StarAssign => {
                self.bump();
                AssignOp::Mul
            }
            Tok::AndAssign => {
                self.bump();
                AssignOp::And
            }
            Tok::OrAssign => {
                self.bump();
                AssignOp::Or
            }
            Tok::PlusPlus => {
                self.bump();
                self.expect(&Tok::Semi)?;
                return Ok(Stmt {
                    kind: StmtKind::Assign {
                        target,
                        op: AssignOp::Add,
                        value: Expr {
                            kind: ExprKind::IntLit(1),
                            span: sp,
                            ty: None,
                        },
                    },
                    span: sp,
                });
            }
            Tok::Ident(name)
                if (name == "min" || name == "max") && self.peek2() == &Tok::Assign =>
            {
                self.bump();
                self.bump();
                if name == "min" {
                    AssignOp::Min
                } else {
                    AssignOp::Max
                }
            }
            other => {
                return Err(Diag::new(
                    self.span(),
                    format!("expected assignment operator, found {other}"),
                ))
            }
        };
        let value = self.expr()?;
        // Optional reduction binding `@ ident` (accepted, not used: the
        // subset infers the binding from loop structure).
        if self.eat(&Tok::At) {
            self.ident()?;
        }
        self.expect(&Tok::Semi)?;
        Ok(Stmt {
            kind: StmtKind::Assign { target, op, value },
            span: sp,
        })
    }

    fn stmt_as_block(&mut self) -> PResult<Block> {
        if self.peek() == &Tok::LBrace {
            self.block()
        } else {
            let s = self.stmt()?;
            Ok(Block { stmts: vec![s] })
        }
    }

    fn if_stmt(&mut self) -> PResult<Stmt> {
        let sp = self.expect(&Tok::If)?;
        self.expect(&Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen)?;
        let then_branch = self.stmt_as_block()?;
        let else_branch = if self.eat(&Tok::Else) {
            Some(self.stmt_as_block()?)
        } else {
            None
        };
        Ok(Stmt {
            kind: StmtKind::If {
                cond,
                then_branch,
                else_branch,
            },
            span: sp,
        })
    }

    fn while_stmt(&mut self) -> PResult<Stmt> {
        let sp = self.expect(&Tok::While)?;
        self.expect(&Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen)?;
        let body = self.stmt_as_block()?;
        Ok(Stmt {
            kind: StmtKind::While {
                cond,
                body,
                do_while: false,
            },
            span: sp,
        })
    }

    fn do_while_stmt(&mut self) -> PResult<Stmt> {
        let sp = self.expect(&Tok::Do)?;
        let body = self.stmt_as_block()?;
        self.expect(&Tok::While)?;
        self.expect(&Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::Semi)?;
        Ok(Stmt {
            kind: StmtKind::While {
                cond,
                body,
                do_while: true,
            },
            span: sp,
        })
    }

    fn iter_source(&mut self) -> PResult<IterSource> {
        let base = self.ident()?;
        self.expect(&Tok::Dot)?;
        let sp = self.span();
        let kind = self.ident()?;
        match kind.as_str() {
            "Nodes" => Ok(IterSource::Nodes { graph: base }),
            "Nbrs" | "OutNbrs" => Ok(IterSource::OutNbrs { of: base }),
            "InNbrs" => Ok(IterSource::InNbrs { of: base }),
            "UpNbrs" => Ok(IterSource::UpNbrs { of: base }),
            "DownNbrs" => Ok(IterSource::DownNbrs { of: base }),
            other => Err(Diag::new(
                sp,
                format!("unknown iteration source `{other}` (expected Nodes, Nbrs, InNbrs, UpNbrs or DownNbrs)"),
            )),
        }
    }

    /// Optional filter after an iterator header: `(cond)` or `[cond]`.
    fn maybe_filter(&mut self) -> PResult<Option<Expr>> {
        if self.eat(&Tok::LBracket) {
            let e = self.expr()?;
            self.expect(&Tok::RBracket)?;
            Ok(Some(e))
        } else if self.peek() == &Tok::LParen {
            self.bump();
            let e = self.expr()?;
            self.expect(&Tok::RParen)?;
            Ok(Some(e))
        } else {
            Ok(None)
        }
    }

    fn foreach_stmt(&mut self, parallel: bool) -> PResult<Stmt> {
        let sp = self.bump(); // Foreach / For
        debug_assert!(matches!(sp, Tok::Foreach | Tok::For));
        let sp = self.prev_span();
        self.expect(&Tok::LParen)?;
        let iter = self.ident()?;
        self.expect(&Tok::Colon)?;
        let source = self.iter_source()?;
        self.expect(&Tok::RParen)?;
        let filter = self.maybe_filter()?;
        let body = self.stmt_as_block()?;
        Ok(Stmt {
            kind: StmtKind::Foreach(Box::new(ForeachStmt {
                iter,
                source,
                filter,
                body,
                parallel,
            })),
            span: sp,
        })
    }

    fn inbfs_stmt(&mut self) -> PResult<Stmt> {
        let sp = self.expect(&Tok::InBfs)?;
        self.expect(&Tok::LParen)?;
        let iter = self.ident()?;
        self.expect(&Tok::Colon)?;
        let graph = self.ident()?;
        self.expect(&Tok::Dot)?;
        let nodes_sp = self.span();
        let nodes = self.ident()?;
        if nodes != "Nodes" {
            return Err(Diag::new(nodes_sp, "InBFS iterates `G.Nodes`"));
        }
        self.expect(&Tok::From)?;
        let root = self.expr()?;
        self.expect(&Tok::RParen)?;
        let body = self.block()?;
        let reverse_body = if self.eat(&Tok::InReverse) {
            Some(self.block()?)
        } else {
            None
        };
        Ok(Stmt {
            kind: StmtKind::InBfs(Box::new(BfsStmt {
                iter,
                graph,
                root,
                body,
                reverse_body,
            })),
            span: sp,
        })
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> PResult<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let cond = self.or_expr()?;
        if self.eat(&Tok::Question) {
            let then_val = self.expr()?;
            self.expect(&Tok::Colon)?;
            let else_val = self.expr()?;
            let span = cond.span.merge(else_val.span);
            Ok(Expr {
                kind: ExprKind::Ternary {
                    cond: Box::new(cond),
                    then_val: Box::new(then_val),
                    else_val: Box::new(else_val),
                },
                span,
                ty: None,
            })
        } else {
            Ok(cond)
        }
    }

    fn binary_level(
        &mut self,
        next: fn(&mut Self) -> PResult<Expr>,
        ops: &[(Tok, BinOp)],
    ) -> PResult<Expr> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in ops {
                if self.peek() == tok {
                    self.bump();
                    let rhs = next(self)?;
                    let span = lhs.span.merge(rhs.span);
                    lhs = Expr {
                        kind: ExprKind::Binary {
                            op: *op,
                            lhs: Box::new(lhs),
                            rhs: Box::new(rhs),
                        },
                        span,
                        ty: None,
                    };
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn or_expr(&mut self) -> PResult<Expr> {
        self.binary_level(Self::and_expr, &[(Tok::OrOr, BinOp::Or)])
    }

    fn and_expr(&mut self) -> PResult<Expr> {
        self.binary_level(Self::equality, &[(Tok::AndAnd, BinOp::And)])
    }

    fn equality(&mut self) -> PResult<Expr> {
        self.binary_level(
            Self::relational,
            &[(Tok::EqEq, BinOp::Eq), (Tok::NotEq, BinOp::Ne)],
        )
    }

    fn relational(&mut self) -> PResult<Expr> {
        self.binary_level(
            Self::additive,
            &[
                (Tok::Le, BinOp::Le),
                (Tok::Ge, BinOp::Ge),
                (Tok::Lt, BinOp::Lt),
                (Tok::Gt, BinOp::Gt),
            ],
        )
    }

    fn additive(&mut self) -> PResult<Expr> {
        self.binary_level(
            Self::multiplicative,
            &[(Tok::Plus, BinOp::Add), (Tok::Minus, BinOp::Sub)],
        )
    }

    fn multiplicative(&mut self) -> PResult<Expr> {
        self.binary_level(
            Self::unary,
            &[
                (Tok::Star, BinOp::Mul),
                (Tok::Slash, BinOp::Div),
                (Tok::Percent, BinOp::Mod),
            ],
        )
    }

    fn unary(&mut self) -> PResult<Expr> {
        let sp = self.span();
        if self.eat(&Tok::Minus) {
            if self.peek() == &Tok::Inf {
                self.bump();
                return Ok(Expr {
                    kind: ExprKind::Inf { negative: true },
                    span: sp.merge(self.prev_span()),
                    ty: None,
                });
            }
            let e = self.unary()?;
            let span = sp.merge(e.span);
            return Ok(Expr {
                kind: ExprKind::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(e),
                },
                span,
                ty: None,
            });
        }
        if self.eat(&Tok::Not) {
            let e = self.unary()?;
            let span = sp.merge(e.span);
            return Ok(Expr {
                kind: ExprKind::Unary {
                    op: UnOp::Not,
                    expr: Box::new(e),
                },
                span,
                ty: None,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut e = self.primary()?;
        while self.peek() == &Tok::Dot {
            // Only variables can take `.prop` / `.Method()` in the subset.
            let obj = match &e.kind {
                ExprKind::Var(name) => name.clone(),
                _ => {
                    return Err(Diag::new(
                        self.span(),
                        "property access requires a plain variable on the left",
                    ))
                }
            };
            self.bump(); // '.'
            let member = self.ident()?;
            if self.eat(&Tok::LParen) {
                let mut args = Vec::new();
                if self.peek() != &Tok::RParen {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                let end = self.expect(&Tok::RParen)?;
                e = Expr {
                    kind: ExprKind::Call {
                        obj,
                        method: member,
                        args,
                    },
                    span: e.span.merge(end),
                    ty: None,
                };
            } else {
                let span = e.span.merge(self.prev_span());
                e = Expr {
                    kind: ExprKind::Prop { obj, prop: member },
                    span,
                    ty: None,
                };
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> PResult<Expr> {
        let sp = self.span();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::IntLit(v),
                    span: sp,
                    ty: None,
                })
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::FloatLit(v),
                    span: sp,
                    ty: None,
                })
            }
            Tok::True => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::BoolLit(true),
                    span: sp,
                    ty: None,
                })
            }
            Tok::False => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::BoolLit(false),
                    span: sp,
                    ty: None,
                })
            }
            Tok::Inf => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Inf { negative: false },
                    span: sp,
                    ty: None,
                })
            }
            Tok::Nil => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Nil,
                    span: sp,
                    ty: None,
                })
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Pipe => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::Pipe)?;
                let span = sp.merge(self.prev_span());
                Ok(Expr {
                    kind: ExprKind::Unary {
                        op: UnOp::Abs,
                        expr: Box::new(e),
                    },
                    span,
                    ty: None,
                })
            }
            Tok::Ident(name) if Self::agg_kind(&name).is_some() && self.peek2() == &Tok::LParen => {
                self.agg_expr()
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Var(name),
                    span: sp,
                    ty: None,
                })
            }
            other => Err(Diag::new(sp, format!("expected expression, found {other}"))),
        }
    }

    fn agg_kind(name: &str) -> Option<AggKind> {
        Some(match name {
            "Sum" => AggKind::Sum,
            "Product" => AggKind::Product,
            "Count" => AggKind::Count,
            "Max" => AggKind::Max,
            "Min" => AggKind::Min,
            "Avg" => AggKind::Avg,
            "Exist" => AggKind::Exist,
            "All" => AggKind::All,
            _ => return None,
        })
    }

    /// Aggregate syntax: `Kind(it: src) group? group?` where each group is
    /// `(expr)`, `[expr]` or `{expr}`. With two groups the first is the
    /// filter and the second the body; with one group it is the body for
    /// value aggregates (`Sum`, `Max`, ...) and the condition for
    /// `Count`/`Exist`/`All`.
    fn agg_expr(&mut self) -> PResult<Expr> {
        let sp = self.span();
        let name = self.ident()?;
        let kind = Self::agg_kind(&name).expect("checked by caller");
        self.expect(&Tok::LParen)?;
        let iter = self.ident()?;
        self.expect(&Tok::Colon)?;
        let source = self.iter_source()?;
        self.expect(&Tok::RParen)?;

        let mut groups: Vec<Expr> = Vec::new();
        for _ in 0..2 {
            if self.eat(&Tok::LBracket) {
                let e = self.expr()?;
                self.expect(&Tok::RBracket)?;
                groups.push(e);
            } else if self.peek() == &Tok::LBrace {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RBrace)?;
                groups.push(e);
            } else if self.peek() == &Tok::LParen {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                groups.push(e);
            } else {
                break;
            }
        }
        // With a single trailing group: value aggregates take it as the
        // body; `All` takes it as its condition (filtering would invert the
        // semantics); `Count`/`Exist` take it as the filter (equivalent to
        // the condition for these two).
        let needs_body = matches!(
            kind,
            AggKind::Sum
                | AggKind::Product
                | AggKind::Max
                | AggKind::Min
                | AggKind::Avg
                | AggKind::All
        );
        let (filter, body) = match (groups.len(), needs_body) {
            (2, _) => {
                let mut it = groups.into_iter();
                let f = it.next().expect("two groups parsed");
                let b = it.next().expect("two groups parsed");
                (Some(f), Some(b))
            }
            (1, true) => (None, Some(groups.pop().expect("one group parsed"))),
            (1, false) => (Some(groups.pop().expect("one group parsed")), None),
            (0, false) => (None, None),
            (0, true) => {
                return Err(Diag::new(
                    sp,
                    format!("{} requires a body expression", kind.name()),
                ))
            }
            _ => unreachable!("at most two groups"),
        };
        let span = sp.merge(self.prev_span());
        Ok(Expr {
            kind: ExprKind::Agg(Box::new(AggExpr {
                kind,
                iter,
                source,
                filter,
                body,
            })),
            span,
            ty: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        match parse(src) {
            Ok(p) => p,
            Err(d) => panic!("parse failed:\n{}", d.render(src)),
        }
    }

    #[test]
    fn minimal_procedure() {
        let p = parse_ok("Procedure f(G: Graph) { Int x = 0; }");
        assert_eq!(p.procedures.len(), 1);
        let f = &p.procedures[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.params[0].ty, Ty::Graph);
        assert!(f.ret.is_none());
    }

    #[test]
    fn grouped_params_and_return_type() {
        let p = parse_ok("Procedure f(G: Graph, a, b: Int) : Double { Return 1.0; }");
        let f = &p.procedures[0];
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[1].name, "a");
        assert_eq!(f.params[2].name, "b");
        assert_eq!(f.params[2].ty, Ty::Int);
        assert_eq!(f.ret, Some(Ty::Double));
    }

    #[test]
    fn property_types() {
        let p = parse_ok("Procedure f(G: Graph, d: Node_Prop<Int>(G), l: E_P<Double>) { }");
        let f = &p.procedures[0];
        assert_eq!(f.params[1].ty, Ty::NodeProp(Box::new(Ty::Int)));
        assert_eq!(f.params[2].ty, Ty::EdgeProp(Box::new(Ty::Double)));
    }

    #[test]
    fn foreach_with_filter_and_nested() {
        let p = parse_ok(
            "Procedure f(G: Graph, age: N_P<Int>, cnt: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    Foreach (t: n.InNbrs) (t.age >= 13 && t.age <= 19) {
                        n.cnt += 1;
                    }
                }
            }",
        );
        let body = &p.procedures[0].body;
        match &body.stmts[0].kind {
            StmtKind::Foreach(outer) => {
                assert_eq!(outer.iter, "n");
                assert!(outer.parallel);
                assert!(outer.filter.is_none());
                match &outer.body.stmts[0].kind {
                    StmtKind::Foreach(inner) => {
                        assert_eq!(inner.source, IterSource::InNbrs { of: "n".into() });
                        assert!(inner.filter.is_some());
                        match &inner.body.stmts[0].kind {
                            StmtKind::Assign { op, .. } => assert_eq!(*op, AssignOp::Add),
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn min_assign_and_defer_assign() {
        let p = parse_ok(
            "Procedure f(G: Graph, d: N_P<Int>, p: N_P<Double>) {
                Foreach (n: G.Nodes) {
                    n.d min= 3;
                    n.p <= 0.5;
                }
            }",
        );
        match &p.procedures[0].body.stmts[0].kind {
            StmtKind::Foreach(f) => {
                match &f.body.stmts[0].kind {
                    StmtKind::Assign { op, .. } => assert_eq!(*op, AssignOp::Min),
                    other => panic!("unexpected {other:?}"),
                }
                match &f.body.stmts[1].kind {
                    StmtKind::Assign { op, .. } => assert_eq!(*op, AssignOp::Defer),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn le_in_expression_context_is_comparison() {
        let e = parse_expr("a <= b").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary { op: BinOp::Le, .. }));
    }

    #[test]
    fn increment_desugars_to_plus_one() {
        let p = parse_ok("Procedure f(G: Graph) { Int c = 0; c++; }");
        match &p.procedures[0].body.stmts[1].kind {
            StmtKind::Assign { op, value, .. } => {
                assert_eq!(*op, AssignOp::Add);
                assert!(matches!(value.kind, ExprKind::IntLit(1)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ternary_and_abs() {
        let e = parse_expr("(c == 0) ? 0 : |s| / 2").unwrap();
        match e.kind {
            ExprKind::Ternary { else_val, .. } => match else_val.kind {
                ExprKind::Binary {
                    op: BinOp::Div,
                    lhs,
                    ..
                } => {
                    assert!(matches!(lhs.kind, ExprKind::Unary { op: UnOp::Abs, .. }));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregates_two_group_and_one_group_forms() {
        // Two groups: filter then body.
        let e = parse_expr("Sum(u: G.Nodes)[u.member == num](u.Degree())").unwrap();
        match e.kind {
            ExprKind::Agg(a) => {
                assert_eq!(a.kind, AggKind::Sum);
                assert!(a.filter.is_some());
                assert!(a.body.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        // One group on a value aggregate: it is the body.
        let e = parse_expr("Sum(w: v.UpNbrs){w.sigma}").unwrap();
        match e.kind {
            ExprKind::Agg(a) => {
                assert!(a.filter.is_none());
                assert!(a.body.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        // One group on Exist: it is the condition (filter slot).
        let e = parse_expr("Exist(n: G.Nodes)(n.updated)").unwrap();
        match e.kind {
            ExprKind::Agg(a) => {
                assert_eq!(a.kind, AggKind::Exist);
                assert!(a.filter.is_some());
                assert!(a.body.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sum_without_body_is_an_error() {
        assert!(parse_expr("Sum(u: G.Nodes)").is_err());
    }

    #[test]
    fn inbfs_with_reverse() {
        let p = parse_ok(
            "Procedure f(G: Graph, s: Node, sigma: N_P<Double>) {
                InBFS (v: G.Nodes From s) {
                    v.sigma = Sum(w: v.UpNbrs){w.sigma};
                }
                InReverse {
                    v.sigma = 0.0;
                }
            }",
        );
        match &p.procedures[0].body.stmts[0].kind {
            StmtKind::InBfs(b) => {
                assert_eq!(b.iter, "v");
                assert_eq!(b.graph, "G");
                assert!(b.reverse_body.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn do_while() {
        let p = parse_ok("Procedure f(G: Graph) { Int x = 0; Do { x += 1; } While (x < 3); }");
        match &p.procedures[0].body.stmts[1].kind {
            StmtKind::While { do_while, .. } => assert!(do_while),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn calls_with_and_without_receiver_args() {
        let e = parse_expr("G.PickRandom()").unwrap();
        assert!(matches!(e.kind, ExprKind::Call { .. }));
        let e = parse_expr("s.ToEdge()").unwrap();
        match e.kind {
            ExprKind::Call { obj, method, args } => {
                assert_eq!(obj, "s");
                assert_eq!(method, "ToEdge");
                assert!(args.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_declarator_splices_into_block() {
        let p = parse_ok("Procedure f(G: Graph) { Int a = 1, b = 2; a = b; }");
        let stmts = &p.procedures[0].body.stmts;
        assert_eq!(stmts.len(), 3);
        assert!(matches!(stmts[0].kind, StmtKind::VarDecl { .. }));
        assert!(matches!(stmts[1].kind, StmtKind::VarDecl { .. }));
        assert!(matches!(stmts[2].kind, StmtKind::Assign { .. }));
    }

    #[test]
    fn error_messages_carry_position() {
        let err = parse("Procedure f(G: Graph) { Int x = ; }").unwrap_err();
        assert!(err.has_errors());
        let rendered = err.render("Procedure f(G: Graph) { Int x = ; }");
        assert!(rendered.contains("expected expression"), "{rendered}");
    }

    #[test]
    fn unknown_type_is_an_error() {
        assert!(parse("Procedure f(G: Grap) { }").is_err());
    }

    #[test]
    fn negative_inf() {
        let e = parse_expr("-INF").unwrap();
        assert!(matches!(e.kind, ExprKind::Inf { negative: true }));
    }

    #[test]
    fn sequential_for_loop() {
        let p = parse_ok("Procedure f(G: Graph, x: N_P<Int>) { For (n: G.Nodes) { n.x = 0; } }");
        match &p.procedures[0].body.stmts[0].kind {
            StmtKind::Foreach(f) => assert!(!f.parallel),
            other => panic!("unexpected {other:?}"),
        }
    }
}
