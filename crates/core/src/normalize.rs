//! Syntactic normalization, run before semantic analysis.
//!
//! The single pre-sema rewrite is **bulk-assignment desugaring**: the
//! Green-Marl shorthand `G.prop = expr` (assigning every vertex, as in the
//! paper's SSSP `G.dist = (G == root) ? 0 : INF;`) becomes an explicit
//! parallel loop. References to the graph variable inside the right-hand
//! side denote the implicit iterator and are substituted.

use crate::ast::*;
use crate::astutil::{subst_var_expr, NameGen};
use crate::types::Ty;

/// Desugars bulk assignments in every procedure of `program`.
pub fn desugar_bulk(program: &mut Program) {
    for proc in &mut program.procedures {
        let graph = match proc.params.iter().find(|p| p.ty == Ty::Graph) {
            Some(p) => p.name.clone(),
            None => continue,
        };
        let mut names = NameGen::for_procedure(proc);
        desugar_block(&mut proc.body, &graph, &mut names);
    }
}

fn desugar_block(block: &mut Block, graph: &str, names: &mut NameGen) {
    let stmts = std::mem::take(&mut block.stmts);
    for mut stmt in stmts {
        // Recurse first so nested bulk assignments are handled too.
        match &mut stmt.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                desugar_block(then_branch, graph, names);
                if let Some(eb) = else_branch {
                    desugar_block(eb, graph, names);
                }
            }
            StmtKind::While { body, .. } => desugar_block(body, graph, names),
            StmtKind::Foreach(f) => desugar_block(&mut f.body, graph, names),
            StmtKind::InBfs(b) => {
                desugar_block(&mut b.body, graph, names);
                if let Some(rb) = &mut b.reverse_body {
                    desugar_block(rb, graph, names);
                }
            }
            StmtKind::Block(b) => desugar_block(b, graph, names),
            _ => {}
        }

        let is_bulk = matches!(
            &stmt.kind,
            StmtKind::Assign {
                target: Target::Prop { obj, .. },
                ..
            } if obj == graph
        );
        if is_bulk {
            let (prop, op, mut value) = match stmt.kind {
                StmtKind::Assign {
                    target: Target::Prop { prop, .. },
                    op,
                    value,
                } => (prop, op, value),
                _ => unreachable!("checked above"),
            };
            let iter = names.fresh("_bk");
            subst_var_expr(&mut value, graph, &iter);
            let assign = Stmt::synth(StmtKind::Assign {
                target: Target::Prop {
                    obj: iter.clone(),
                    prop,
                },
                op,
                value,
            });
            block
                .stmts
                .push(Stmt::synth(StmtKind::Foreach(Box::new(ForeachStmt {
                    iter,
                    source: IterSource::Nodes {
                        graph: graph.to_owned(),
                    },
                    filter: None,
                    body: Block::of(vec![assign]),
                    parallel: true,
                }))));
        } else {
            block.stmts.push(stmt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::pretty::program_to_string;

    fn normalized(src: &str) -> String {
        let mut p = parse(src).unwrap();
        desugar_bulk(&mut p);
        program_to_string(&p)
    }

    #[test]
    fn bulk_assignment_becomes_foreach() {
        let out = normalized(
            "Procedure f(G: Graph, dist: N_P<Int>) {
                G.dist = 0;
            }",
        );
        assert!(out.contains("Foreach (_bk1: G.Nodes)"), "{out}");
        assert!(out.contains("_bk1.dist = 0;"), "{out}");
    }

    #[test]
    fn graph_references_in_rhs_become_iterator() {
        let out = normalized(
            "Procedure f(G: Graph, root: Node, dist: N_P<Int>) {
                G.dist = (G == root) ? 0 : INF;
            }",
        );
        assert!(out.contains("(_bk1 == root)"), "{out}");
        assert!(!out.contains("(G == root)"), "{out}");
    }

    #[test]
    fn bulk_prop_copy() {
        let out = normalized(
            "Procedure f(G: Graph, a: N_P<Int>, b: N_P<Int>) {
                G.a = G.b;
            }",
        );
        assert!(out.contains("_bk1.a = _bk1.b;"), "{out}");
    }

    #[test]
    fn bulk_inside_while_and_reduction_ops() {
        let out = normalized(
            "Procedure f(G: Graph, u: N_P<Bool>) {
                While (True) {
                    G.u &&= False;
                }
            }",
        );
        assert!(out.contains("_bk1.u &&= False;"), "{out}");
    }

    #[test]
    fn semantics_are_preserved() {
        use crate::seqinterp::{run_procedure, ArgValue};
        use crate::value::Value;
        use std::collections::HashMap;

        let g = gm_graph::gen::path(4);
        let src = "Procedure f(G: Graph, root: Node, dist: N_P<Int>) {
            G.dist = (G == root) ? 0 : INF;
        }";
        let mut p = parse(src).unwrap();
        desugar_bulk(&mut p);
        let infos = crate::sema::check(&mut p).unwrap();
        let out = run_procedure(
            &g,
            &p.procedures[0],
            &infos[0],
            &HashMap::from([("root".to_owned(), ArgValue::Scalar(Value::Node(2)))]),
            0,
        )
        .unwrap();
        assert_eq!(
            out.node_props["dist"],
            vec![
                Value::Int(i64::MAX),
                Value::Int(i64::MAX),
                Value::Int(0),
                Value::Int(i64::MAX)
            ]
        );
    }

    #[test]
    fn non_bulk_assignments_untouched() {
        let out = normalized(
            "Procedure f(G: Graph, x: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    n.x = 1;
                }
            }",
        );
        assert!(!out.contains("_bk"), "{out}");
    }
}
