//! Pretty-printer: AST → Green-Marl source text.
//!
//! Used to display the canonical form produced by the §4.1 transformations,
//! to count Green-Marl lines of code for the Table 2 reproduction, and to
//! round-trip-test the parser.

use crate::ast::*;
use crate::types::Ty;
use std::fmt::Write;

/// Renders a whole program.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    for (i, proc) in p.procedures.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        write_procedure(&mut out, proc);
    }
    out
}

/// Renders one procedure.
pub fn procedure_to_string(p: &Procedure) -> String {
    let mut out = String::new();
    write_procedure(&mut out, p);
    out
}

/// Renders one statement at indent level 0.
pub fn stmt_to_string(s: &Stmt) -> String {
    let mut out = String::new();
    write_stmt(&mut out, s, 0);
    out
}

/// Renders one expression.
pub fn expr_to_string(e: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, e);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn write_procedure(out: &mut String, p: &Procedure) {
    out.push_str("Procedure ");
    out.push_str(&p.name);
    out.push('(');
    for (i, param) in p.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", param.name, ty_to_src(&param.ty));
    }
    out.push(')');
    if let Some(ret) = &p.ret {
        let _ = write!(out, " : {}", ty_to_src(ret));
    }
    out.push(' ');
    write_block(out, &p.body, 0);
    out.push('\n');
}

fn ty_to_src(ty: &Ty) -> String {
    ty.to_string()
}

fn write_block(out: &mut String, b: &Block, level: usize) {
    out.push_str("{\n");
    for s in &b.stmts {
        write_stmt(out, s, level + 1);
    }
    indent(out, level);
    out.push('}');
}

fn write_stmt(out: &mut String, s: &Stmt, level: usize) {
    indent(out, level);
    match &s.kind {
        StmtKind::VarDecl { ty, name, init } => {
            let _ = write!(out, "{} {}", ty_to_src(ty), name);
            if let Some(e) = init {
                out.push_str(" = ");
                write_expr(out, e);
            }
            out.push_str(";\n");
        }
        StmtKind::Assign { target, op, value } => {
            match target {
                Target::Scalar(name) => out.push_str(name),
                Target::Prop { obj, prop } => {
                    let _ = write!(out, "{obj}.{prop}");
                }
            }
            let op_str = match op {
                AssignOp::Assign => " = ",
                AssignOp::Defer => " <= ",
                AssignOp::Add => " += ",
                AssignOp::Sub => " -= ",
                AssignOp::Mul => " *= ",
                AssignOp::Min => " min= ",
                AssignOp::Max => " max= ",
                AssignOp::And => " &&= ",
                AssignOp::Or => " ||= ",
            };
            out.push_str(op_str);
            write_expr(out, value);
            out.push_str(";\n");
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            out.push_str("If (");
            write_expr(out, cond);
            out.push_str(") ");
            write_block(out, then_branch, level);
            if let Some(eb) = else_branch {
                out.push_str(" Else ");
                write_block(out, eb, level);
            }
            out.push('\n');
        }
        StmtKind::While {
            cond,
            body,
            do_while,
        } => {
            if *do_while {
                out.push_str("Do ");
                write_block(out, body, level);
                out.push_str(" While (");
                write_expr(out, cond);
                out.push_str(");\n");
            } else {
                out.push_str("While (");
                write_expr(out, cond);
                out.push_str(") ");
                write_block(out, body, level);
                out.push('\n');
            }
        }
        StmtKind::Foreach(f) => {
            let kw = if f.parallel { "Foreach" } else { "For" };
            let _ = write!(out, "{kw} ({}: {}) ", f.iter, source_to_src(&f.source));
            if let Some(filter) = &f.filter {
                out.push('(');
                write_expr(out, filter);
                out.push_str(") ");
            }
            write_block(out, &f.body, level);
            out.push('\n');
        }
        StmtKind::InBfs(b) => {
            let _ = write!(out, "InBFS ({}: {}.Nodes From ", b.iter, b.graph);
            write_expr(out, &b.root);
            out.push_str(") ");
            write_block(out, &b.body, level);
            if let Some(rb) = &b.reverse_body {
                out.push_str(" InReverse ");
                write_block(out, rb, level);
            }
            out.push('\n');
        }
        StmtKind::Return(value) => {
            out.push_str("Return");
            if let Some(e) = value {
                out.push(' ');
                write_expr(out, e);
            }
            out.push_str(";\n");
        }
        StmtKind::Block(b) => {
            write_block(out, b, level);
            out.push('\n');
        }
    }
}

fn source_to_src(s: &IterSource) -> String {
    match s {
        IterSource::Nodes { graph } => format!("{graph}.Nodes"),
        IterSource::OutNbrs { of } => format!("{of}.Nbrs"),
        IterSource::InNbrs { of } => format!("{of}.InNbrs"),
        IterSource::UpNbrs { of } => format!("{of}.UpNbrs"),
        IterSource::DownNbrs { of } => format!("{of}.DownNbrs"),
    }
}

fn write_expr(out: &mut String, e: &Expr) {
    match &e.kind {
        // Negative literals print parenthesized so that reparsing (which
        // produces a unary negation) reprints identically — the printer is
        // a fixed point under parse ∘ print.
        ExprKind::IntLit(v) if *v < 0 => {
            let _ = write!(out, "(-{})", v.unsigned_abs());
        }
        ExprKind::IntLit(v) => {
            let _ = write!(out, "{v}");
        }
        ExprKind::FloatLit(v) => {
            let (sign, mag) = if *v < 0.0 { ("(-", v.abs()) } else { ("", *v) };
            if mag.fract() == 0.0 && mag.is_finite() && mag < 1e15 {
                let _ = write!(out, "{sign}{mag:.1}");
            } else {
                let _ = write!(out, "{sign}{mag}");
            }
            if !sign.is_empty() {
                out.push(')');
            }
        }
        ExprKind::BoolLit(v) => out.push_str(if *v { "True" } else { "False" }),
        ExprKind::Inf { negative } => {
            if *negative {
                out.push('-');
            }
            out.push_str("INF");
        }
        ExprKind::Nil => out.push_str("NIL"),
        ExprKind::Var(name) => out.push_str(name),
        ExprKind::Prop { obj, prop } => {
            let _ = write!(out, "{obj}.{prop}");
        }
        ExprKind::Unary { op, expr } => match op {
            UnOp::Neg => {
                out.push_str("(-");
                write_expr(out, expr);
                out.push(')');
            }
            UnOp::Not => {
                out.push_str("(!");
                write_expr(out, expr);
                out.push(')');
            }
            UnOp::Abs => {
                // A directly nested `|…|` would print as `||…||`, which
                // lexes as the `||` operator — parenthesize the operand.
                let nested_abs = matches!(&expr.kind, ExprKind::Unary { op: UnOp::Abs, .. });
                out.push('|');
                if nested_abs {
                    out.push('(');
                }
                write_expr(out, expr);
                if nested_abs {
                    out.push(')');
                }
                out.push('|');
            }
        },
        ExprKind::Binary { op, lhs, rhs } => {
            let op_str = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "&&",
                BinOp::Or => "||",
            };
            out.push('(');
            write_expr(out, lhs);
            let _ = write!(out, " {op_str} ");
            write_expr(out, rhs);
            out.push(')');
        }
        ExprKind::Ternary {
            cond,
            then_val,
            else_val,
        } => {
            out.push('(');
            write_expr(out, cond);
            out.push_str(" ? ");
            write_expr(out, then_val);
            out.push_str(" : ");
            write_expr(out, else_val);
            out.push(')');
        }
        ExprKind::Agg(a) => {
            let _ = write!(
                out,
                "{}({}: {})",
                a.kind.name(),
                a.iter,
                source_to_src(&a.source)
            );
            if let Some(f) = &a.filter {
                out.push('[');
                write_expr(out, f);
                out.push(']');
            }
            if let Some(b) = &a.body {
                out.push('{');
                write_expr(out, b);
                out.push('}');
            }
        }
        ExprKind::Call { obj, method, args } => {
            let _ = write!(out, "{obj}.{method}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a);
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    /// Parse → print → parse must reach a fixed point (the second parse
    /// yields the same AST as the first, ignoring spans).
    fn roundtrip(src: &str) {
        let p1 = parse(src).expect("first parse");
        let printed = program_to_string(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| {
            panic!(
                "reparse failed:\n{}\nsource:\n{printed}",
                e.render(&printed)
            )
        });
        let printed2 = program_to_string(&p2);
        assert_eq!(printed, printed2, "pretty-print not a fixed point");
    }

    #[test]
    fn roundtrip_teen_count() {
        roundtrip(
            "Procedure avg_teen_cnt(G: Graph, age, teen_cnt: N_P<Int>, K: Int) : Float {
                Int S = 0, C = 0;
                Foreach (n: G.Nodes) {
                    n.teen_cnt = Count(t: n.InNbrs)(t.age >= 13 && t.age < 20);
                }
                Foreach (n: G.Nodes)(n.age > K) {
                    S += n.teen_cnt;
                    C += 1;
                }
                Float avg = (C == 0) ? 0.0 : S / C;
                Return avg;
            }",
        );
    }

    #[test]
    fn roundtrip_bfs() {
        roundtrip(
            "Procedure bc(G: Graph, s: Node, sigma: N_P<Double>) {
                InBFS (v: G.Nodes From s) {
                    v.sigma = Sum(w: v.UpNbrs){w.sigma};
                }
                InReverse {
                    v.sigma += 1.0;
                }
            }",
        );
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip(
            "Procedure f(G: Graph, p: N_P<Bool>) {
                Bool fin = False;
                While (!fin) {
                    fin = True;
                    If (G.NumNodes() > 10) {
                        fin = False;
                    } Else {
                        fin = True;
                    }
                }
                Do {
                    fin = !fin;
                } While (fin);
            }",
        );
    }

    #[test]
    fn expr_forms() {
        let cases = [
            "((a + b) * 3)",
            "|x - y|",
            "(c ? 1 : 2)",
            "Sum(u: G.Nodes)[u.m]{u.Degree()}",
            "Exist(n: G.Nodes)[n.updated]",
            "-INF",
            "NIL",
        ];
        for c in cases {
            let e = parse_expr(c).expect(c);
            let printed = expr_to_string(&e);
            let e2 = parse_expr(&printed).unwrap_or_else(|d| {
                panic!("reparse of {printed:?} failed: {d:?}");
            });
            assert_eq!(expr_to_string(&e2), printed);
        }
    }

    #[test]
    fn float_literals_keep_a_decimal_point() {
        let e = parse_expr("1.0").unwrap();
        assert_eq!(expr_to_string(&e), "1.0");
    }
}
