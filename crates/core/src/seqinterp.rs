//! Sequential shared-memory interpreter for (checked) Green-Marl programs.
//!
//! This is the *reference semantics* of the language: an imperative,
//! random-access execution with no notion of timesteps — exactly the mental
//! model the paper says Green-Marl programmers write against (§2.2). The
//! Pregel pipeline is differentially tested against this interpreter: for
//! every algorithm, `seqinterp(source) == pregel(compile(source))`.
//!
//! ## Parallel-region write semantics
//!
//! `Foreach` iterations are executed in ascending element order. Within a
//! parallel region (an outermost parallel `Foreach`, or one level of an
//! `InBFS` pass):
//!
//! * writes to properties of the region's own iterator vertex apply
//!   immediately (each vertex owns its state, as in Pregel);
//! * writes to *other* vertices — inner-loop neighbors or random nodes —
//!   and all deferred (`<=`) writes are buffered and applied when the
//!   region ends, in ascending (writer, program-order) sequence. Reductions
//!   combine with the pre-existing value; plain assignments resolve to the
//!   last writer.
//!
//! This is exactly the visibility the BSP translation produces (messages
//! are applied at the next timestep, delivered in sender order), so the
//! sequential interpreter and the compiled Pregel execution agree even on
//! racy programs such as the bipartite-matching handshake.

use crate::ast::*;
use crate::diag::Span;
use crate::sema::ProcInfo;
use crate::types::Ty;
use crate::value::{apply_bin, apply_reduce, apply_un, Value, NIL_NODE};
use gm_graph::{EdgeId, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An argument passed to a procedure.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// A scalar (`Int`, `Double`, `Bool`, `Node`, ...).
    Scalar(Value),
    /// A node property, indexed by vertex id. Length must match.
    NodeProp(Vec<Value>),
    /// An edge property, indexed by edge id. Length must match.
    EdgeProp(Vec<Value>),
}

/// Result of executing a procedure.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// The `Return` value, if the procedure returned one.
    pub ret: Option<Value>,
    /// Final contents of every node property (parameters and locals),
    /// keyed by unique name.
    pub node_props: HashMap<String, Vec<Value>>,
    /// Final contents of every edge property.
    pub edge_props: HashMap<String, Vec<Value>>,
    /// Final values of scalar parameters and top-level locals.
    pub scalars: HashMap<String, Value>,
}

/// Errors surfaced during interpretation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A parameter was not supplied or had the wrong shape.
    BadArgument(String),
    /// A `While` loop exceeded the iteration safety limit.
    LoopLimit(String),
    /// `PickRandom` on an empty graph, property length mismatch, etc.
    Runtime(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::BadArgument(m) => write!(f, "bad argument: {m}"),
            EvalError::LoopLimit(m) => write!(f, "loop limit exceeded: {m}"),
            EvalError::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl Error for EvalError {}

/// Safety bound on `While` iterations.
const WHILE_LIMIT: u64 = 10_000_000;

/// Executes `proc` (already checked by [`crate::sema`]) on `graph`.
///
/// `args` supplies every non-graph parameter by (unique) name; node/edge
/// property parameters may be supplied to set initial contents, otherwise
/// they start at the type's default. `seed` drives `G.PickRandom()`.
///
/// # Errors
///
/// Returns [`EvalError`] for missing/malformed arguments or runaway loops.
///
/// # Panics
///
/// Panics on arithmetic faults (division by zero) and on internal type
/// confusion, which the type checker rules out for checked programs.
pub fn run_procedure(
    graph: &Graph,
    proc: &Procedure,
    info: &ProcInfo,
    args: &HashMap<String, ArgValue>,
    seed: u64,
) -> Result<ExecOutcome, EvalError> {
    let mut interp = Interp {
        graph,
        info,
        scalars: HashMap::new(),
        node_props: HashMap::new(),
        edge_props: HashMap::new(),
        iter_edges: HashMap::new(),
        bfs_levels: HashMap::new(),
        region: None,
        rng: StdRng::seed_from_u64(seed),
    };

    for param in &proc.params {
        match &param.ty {
            Ty::Graph => {}
            Ty::NodeProp(inner) => {
                let values = match args.get(&param.name) {
                    Some(ArgValue::NodeProp(v)) => {
                        if v.len() != graph.num_nodes() as usize {
                            return Err(EvalError::BadArgument(format!(
                                "node property `{}` has length {}, graph has {} nodes",
                                param.name,
                                v.len(),
                                graph.num_nodes()
                            )));
                        }
                        v.clone()
                    }
                    Some(_) => {
                        return Err(EvalError::BadArgument(format!(
                            "`{}` must be a node property",
                            param.name
                        )))
                    }
                    None => vec![Value::default_for(inner); graph.num_nodes() as usize],
                };
                interp.node_props.insert(param.name.clone(), values);
            }
            Ty::EdgeProp(inner) => {
                let values = match args.get(&param.name) {
                    Some(ArgValue::EdgeProp(v)) => {
                        if v.len() != graph.num_edges() as usize {
                            return Err(EvalError::BadArgument(format!(
                                "edge property `{}` has length {}, graph has {} edges",
                                param.name,
                                v.len(),
                                graph.num_edges()
                            )));
                        }
                        v.clone()
                    }
                    Some(_) => {
                        return Err(EvalError::BadArgument(format!(
                            "`{}` must be an edge property",
                            param.name
                        )))
                    }
                    None => vec![Value::default_for(inner); graph.num_edges() as usize],
                };
                interp.edge_props.insert(param.name.clone(), values);
            }
            scalar_ty => {
                let v = match args.get(&param.name) {
                    Some(ArgValue::Scalar(v)) => v.coerce(scalar_ty),
                    Some(_) => {
                        return Err(EvalError::BadArgument(format!(
                            "`{}` must be a scalar",
                            param.name
                        )))
                    }
                    None => {
                        return Err(EvalError::BadArgument(format!(
                            "missing scalar argument `{}`",
                            param.name
                        )))
                    }
                };
                interp.scalars.insert(param.name.clone(), v);
            }
        }
    }

    let flow = interp.exec_block(&proc.body)?;
    let ret = match flow {
        Flow::Return(v) => v,
        Flow::Normal => None,
    };
    Ok(ExecOutcome {
        ret,
        node_props: interp.node_props,
        edge_props: interp.edge_props,
        scalars: interp.scalars,
    })
}

enum Flow {
    Normal,
    Return(Option<Value>),
}

/// One buffered region write, applied when the parallel region ends.
enum RegionWrite {
    Scalar(String, AssignOp, Value),
    NodeProp(String, u32, AssignOp, Value),
    EdgeProp(String, u32, AssignOp, Value),
}

/// The active parallel region: its iterator (whose own vertex gets
/// immediate writes) and the buffered cross-vertex writes.
struct Region {
    iter: String,
    writes: Vec<RegionWrite>,
}

struct Interp<'a> {
    graph: &'a Graph,
    info: &'a ProcInfo,
    scalars: HashMap<String, Value>,
    node_props: HashMap<String, Vec<Value>>,
    edge_props: HashMap<String, Vec<Value>>,
    /// For each live neighborhood iterator, the edge connecting it.
    iter_edges: HashMap<String, EdgeId>,
    /// For each live BFS iterator, the level of every vertex.
    bfs_levels: HashMap<String, Vec<u32>>,
    /// The active parallel region, if any (regions do not nest: an inner
    /// parallel Foreach joins the outer region).
    region: Option<Region>,
    rng: StdRng,
}

const LEV_INF: u32 = u32::MAX;

impl Interp<'_> {
    fn exec_block(&mut self, block: &Block) -> Result<Flow, EvalError> {
        for stmt in &block.stmts {
            match self.exec_stmt(stmt)? {
                Flow::Normal => {}
                ret => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<Flow, EvalError> {
        match &stmt.kind {
            StmtKind::VarDecl { ty, name, init } => {
                match ty {
                    Ty::NodeProp(inner) => {
                        self.node_props.insert(
                            name.clone(),
                            vec![Value::default_for(inner); self.graph.num_nodes() as usize],
                        );
                    }
                    Ty::EdgeProp(inner) => {
                        self.edge_props.insert(
                            name.clone(),
                            vec![Value::default_for(inner); self.graph.num_edges() as usize],
                        );
                    }
                    scalar => {
                        let v = match init {
                            Some(e) => self.eval(e)?.coerce(scalar),
                            None => Value::default_for(scalar),
                        };
                        self.scalars.insert(name.clone(), v);
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Assign { target, op, value } => {
                let v = self.eval(value)?;
                self.assign(target, *op, v, stmt.span)?;
                Ok(Flow::Normal)
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval(cond)?.as_bool() {
                    self.exec_block(then_branch)
                } else if let Some(eb) = else_branch {
                    self.exec_block(eb)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While {
                cond,
                body,
                do_while,
            } => {
                let mut iters: u64 = 0;
                if *do_while {
                    loop {
                        match self.exec_block(body)? {
                            Flow::Normal => {}
                            ret => return Ok(ret),
                        }
                        if !self.eval(cond)?.as_bool() {
                            break;
                        }
                        iters += 1;
                        if iters > WHILE_LIMIT {
                            return Err(EvalError::LoopLimit("Do-While".into()));
                        }
                    }
                } else {
                    while self.eval(cond)?.as_bool() {
                        match self.exec_block(body)? {
                            Flow::Normal => {}
                            ret => return Ok(ret),
                        }
                        iters += 1;
                        if iters > WHILE_LIMIT {
                            return Err(EvalError::LoopLimit("While".into()));
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Foreach(f) => {
                // Open a region only for an outermost parallel loop.
                let opened = f.parallel && self.region.is_none();
                if opened {
                    self.region = Some(Region {
                        iter: f.iter.clone(),
                        writes: Vec::new(),
                    });
                }
                let elements = self.iterate(&f.source)?;
                for (node, edge) in elements {
                    self.bind_iter(&f.iter, node, edge);
                    let keep = match &f.filter {
                        Some(filter) => self.eval(filter)?.as_bool(),
                        None => true,
                    };
                    if keep {
                        match self.exec_block(&f.body)? {
                            Flow::Normal => {}
                            ret => {
                                self.unbind_iter(&f.iter);
                                if opened {
                                    self.apply_region();
                                }
                                return Ok(ret);
                            }
                        }
                    }
                    self.unbind_iter(&f.iter);
                }
                if opened {
                    self.apply_region();
                }
                Ok(Flow::Normal)
            }
            StmtKind::InBfs(b) => self.exec_bfs(b),
            StmtKind::Return(value) => {
                let v = match value {
                    Some(e) => Some(self.eval(e)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Block(b) => self.exec_block(b),
        }
    }

    fn apply_region(&mut self) {
        let region = self.region.take().expect("no active region");
        for w in region.writes {
            match w {
                RegionWrite::Scalar(name, op, v) => {
                    let cur = *self.scalars.get(&name).expect("scalar exists");
                    self.scalars.insert(name, apply_reduce(op, cur, v));
                }
                RegionWrite::NodeProp(prop, idx, op, v) => {
                    let slot =
                        &mut self.node_props.get_mut(&prop).expect("prop exists")[idx as usize];
                    *slot = apply_reduce(op, *slot, v);
                }
                RegionWrite::EdgeProp(prop, idx, op, v) => {
                    let slot =
                        &mut self.edge_props.get_mut(&prop).expect("prop exists")[idx as usize];
                    *slot = apply_reduce(op, *slot, v);
                }
            }
        }
    }

    fn exec_bfs(&mut self, b: &BfsStmt) -> Result<Flow, EvalError> {
        let root = self.eval(&b.root)?.as_node();
        if root == NIL_NODE || root >= self.graph.num_nodes() {
            return Err(EvalError::Runtime(
                "InBFS root is NIL or out of range".into(),
            ));
        }
        // Level computation over out-edges.
        let n = self.graph.num_nodes() as usize;
        let mut levels = vec![LEV_INF; n];
        levels[root as usize] = 0;
        let mut frontier = vec![root];
        let mut depth = 0u32;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                for (t, _) in self.graph.out_neighbors(NodeId(u)) {
                    if levels[t.index()] == LEV_INF {
                        levels[t.index()] = depth + 1;
                        next.push(t.0);
                    }
                }
            }
            next.sort_unstable();
            frontier = next;
            depth += 1;
        }
        let max_level = depth.saturating_sub(1);
        self.bfs_levels.insert(b.iter.clone(), levels.clone());

        // Forward pass: level by level, vertices ascending within a level.
        let mut by_level: Vec<Vec<u32>> = vec![Vec::new(); max_level as usize + 1];
        for (v, &lev) in levels.iter().enumerate() {
            if lev != LEV_INF {
                by_level[lev as usize].push(v as u32);
            }
        }
        for level_nodes in &by_level {
            self.region = Some(Region {
                iter: b.iter.clone(),
                writes: Vec::new(),
            });
            for &v in level_nodes {
                self.bind_iter(&b.iter, v, None);
                match self.exec_block(&b.body)? {
                    Flow::Normal => {}
                    ret => {
                        self.unbind_iter(&b.iter);
                        self.apply_region();
                        self.bfs_levels.remove(&b.iter);
                        return Ok(ret);
                    }
                }
                self.unbind_iter(&b.iter);
            }
            self.apply_region();
        }

        // Reverse pass.
        if let Some(rb) = &b.reverse_body {
            for level_nodes in by_level.iter().rev() {
                self.region = Some(Region {
                    iter: b.iter.clone(),
                    writes: Vec::new(),
                });
                for &v in level_nodes {
                    self.bind_iter(&b.iter, v, None);
                    match self.exec_block(rb)? {
                        Flow::Normal => {}
                        ret => {
                            self.unbind_iter(&b.iter);
                            self.apply_region();
                            self.bfs_levels.remove(&b.iter);
                            return Ok(ret);
                        }
                    }
                    self.unbind_iter(&b.iter);
                }
                self.apply_region();
            }
        }
        self.bfs_levels.remove(&b.iter);
        Ok(Flow::Normal)
    }

    fn bind_iter(&mut self, name: &str, node: u32, edge: Option<EdgeId>) {
        self.scalars.insert(name.to_owned(), Value::Node(node));
        if let Some(e) = edge {
            self.iter_edges.insert(name.to_owned(), e);
        }
    }

    fn unbind_iter(&mut self, name: &str) {
        self.scalars.remove(name);
        self.iter_edges.remove(name);
    }

    /// Elements of an iteration source: `(node, connecting edge)`.
    ///
    /// Neighborhoods are iterated in **ascending neighbor id** (ties by
    /// edge id), not CSR insertion order: that is the order the
    /// message-based BSP execution realizes at each receiver, so float
    /// reductions agree bit-for-bit between the two executions.
    fn iterate(&mut self, source: &IterSource) -> Result<Vec<(u32, Option<EdgeId>)>, EvalError> {
        let mut elements: Vec<(u32, Option<EdgeId>)> = match source {
            IterSource::Nodes { .. } => {
                return Ok(self.graph.nodes().map(|nid| (nid.0, None)).collect())
            }
            IterSource::OutNbrs { of } => {
                let base = self.node_of(of)?;
                self.graph
                    .out_neighbors(NodeId(base))
                    .map(|(t, e)| (t.0, Some(e)))
                    .collect()
            }
            IterSource::InNbrs { of } => {
                let base = self.node_of(of)?;
                self.graph
                    .in_neighbors(NodeId(base))
                    .map(|(s, e)| (s.0, Some(e)))
                    .collect()
            }
            IterSource::UpNbrs { of } => {
                let base = self.node_of(of)?;
                let levels = self.levels_for(of)?;
                let lev = levels[base as usize];
                self.graph
                    .in_neighbors(NodeId(base))
                    .filter(|(s, _)| lev != LEV_INF && lev > 0 && levels[s.index()] == lev - 1)
                    .map(|(s, e)| (s.0, Some(e)))
                    .collect()
            }
            IterSource::DownNbrs { of } => {
                let base = self.node_of(of)?;
                let levels = self.levels_for(of)?;
                let lev = levels[base as usize];
                self.graph
                    .out_neighbors(NodeId(base))
                    .filter(|(t, _)| lev != LEV_INF && levels[t.index()] == lev + 1)
                    .map(|(t, e)| (t.0, Some(e)))
                    .collect()
            }
        };
        elements.sort_by_key(|&(n, e)| (n, e));
        Ok(elements)
    }

    fn node_of(&self, var: &str) -> Result<u32, EvalError> {
        match self.scalars.get(var) {
            Some(Value::Node(v)) if *v != NIL_NODE => Ok(*v),
            Some(Value::Node(_)) => Err(EvalError::Runtime(format!(
                "iteration over neighbors of NIL node `{var}`"
            ))),
            other => Err(EvalError::Runtime(format!(
                "`{var}` is not a node (found {other:?})"
            ))),
        }
    }

    fn levels_for(&self, var: &str) -> Result<&Vec<u32>, EvalError> {
        self.bfs_levels
            .get(var)
            .ok_or_else(|| EvalError::Runtime(format!("`{var}` is not a live BFS iterator")))
    }

    fn assign(
        &mut self,
        target: &Target,
        op: AssignOp,
        value: Value,
        _span: Span,
    ) -> Result<(), EvalError> {
        match target {
            Target::Scalar(name) => {
                let declared = self.info.ty(name).clone();
                let value = value.coerce(&declared);
                if op == AssignOp::Defer {
                    if let Some(region) = self.region.as_mut() {
                        region
                            .writes
                            .push(RegionWrite::Scalar(name.clone(), op, value));
                        return Ok(());
                    }
                }
                let current = *self.scalars.get(name).ok_or_else(|| {
                    EvalError::Runtime(format!("scalar `{name}` not initialized"))
                })?;
                let next = apply_reduce(op, current, value);
                self.scalars.insert(name.clone(), next);
                Ok(())
            }
            Target::Prop { obj, prop } => {
                let declared = self.info.ty(prop).prop_inner().clone();
                let value = value.coerce(&declared);
                let obj_val = *self
                    .scalars
                    .get(obj)
                    .ok_or_else(|| EvalError::Runtime(format!("`{obj}` not bound")))?;
                // Cross-vertex (and all deferred) writes buffer until the
                // region ends; writes through the region's own iterator
                // apply immediately.
                let buffered = match &self.region {
                    Some(region) => op == AssignOp::Defer || region.iter != *obj,
                    None => false,
                };
                match obj_val {
                    Value::Node(idx) => {
                        if idx == NIL_NODE {
                            return Err(EvalError::Runtime("property write through NIL".into()));
                        }
                        if !self.node_props.contains_key(prop) {
                            return Err(EvalError::Runtime(format!("unknown property `{prop}`")));
                        }
                        if buffered {
                            self.region
                                .as_mut()
                                .expect("region checked")
                                .writes
                                .push(RegionWrite::NodeProp(prop.clone(), idx, op, value));
                        } else {
                            let slot =
                                &mut self.node_props.get_mut(prop).expect("checked")[idx as usize];
                            *slot = apply_reduce(op, *slot, value);
                        }
                        Ok(())
                    }
                    Value::Edge(idx) => {
                        if !self.edge_props.contains_key(prop) {
                            return Err(EvalError::Runtime(format!("unknown property `{prop}`")));
                        }
                        if buffered {
                            self.region
                                .as_mut()
                                .expect("region checked")
                                .writes
                                .push(RegionWrite::EdgeProp(prop.clone(), idx, op, value));
                        } else {
                            let slot =
                                &mut self.edge_props.get_mut(prop).expect("checked")[idx as usize];
                            *slot = apply_reduce(op, *slot, value);
                        }
                        Ok(())
                    }
                    other => Err(EvalError::Runtime(format!(
                        "property write through non-node `{obj}` = {other}"
                    ))),
                }
            }
        }
    }

    fn eval(&mut self, e: &Expr) -> Result<Value, EvalError> {
        Ok(match &e.kind {
            ExprKind::IntLit(v) => Value::Int(*v),
            ExprKind::FloatLit(v) => Value::Double(*v),
            ExprKind::BoolLit(v) => Value::Bool(*v),
            ExprKind::Inf { negative } => Value::inf_for(e.ty(), *negative),
            ExprKind::Nil => Value::Node(NIL_NODE),
            ExprKind::Var(name) => *self
                .scalars
                .get(name)
                .ok_or_else(|| EvalError::Runtime(format!("variable `{name}` not initialized")))?,
            ExprKind::Prop { obj, prop } => {
                let obj_val = *self
                    .scalars
                    .get(obj)
                    .ok_or_else(|| EvalError::Runtime(format!("`{obj}` not bound")))?;
                match obj_val {
                    Value::Node(idx) => {
                        if idx == NIL_NODE {
                            return Err(EvalError::Runtime("property read through NIL".into()));
                        }
                        self.node_props.get(prop).ok_or_else(|| {
                            EvalError::Runtime(format!("unknown property `{prop}`"))
                        })?[idx as usize]
                    }
                    Value::Edge(idx) => {
                        self.edge_props.get(prop).ok_or_else(|| {
                            EvalError::Runtime(format!("unknown property `{prop}`"))
                        })?[idx as usize]
                    }
                    other => {
                        return Err(EvalError::Runtime(format!(
                            "property read through non-node `{obj}` = {other}"
                        )))
                    }
                }
            }
            ExprKind::Unary { op, expr } => apply_un(*op, self.eval(expr)?),
            ExprKind::Binary { op, lhs, rhs } => {
                // Short-circuit logic, like the generated Java would.
                match op {
                    BinOp::And => {
                        if !self.eval(lhs)?.as_bool() {
                            return Ok(Value::Bool(false));
                        }
                        return Ok(Value::Bool(self.eval(rhs)?.as_bool()));
                    }
                    BinOp::Or => {
                        if self.eval(lhs)?.as_bool() {
                            return Ok(Value::Bool(true));
                        }
                        return Ok(Value::Bool(self.eval(rhs)?.as_bool()));
                    }
                    _ => {}
                }
                apply_bin(*op, self.eval(lhs)?, self.eval(rhs)?)
            }
            ExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                let branch = if self.eval(cond)?.as_bool() {
                    self.eval(then_val)?
                } else {
                    self.eval(else_val)?
                };
                match e.ty {
                    Some(ref t) if t.is_value() => branch.coerce(t),
                    _ => branch,
                }
            }
            ExprKind::Agg(agg) => self.eval_agg(agg, e.ty.as_ref())?,
            ExprKind::Call { obj, method, .. } => match method.as_str() {
                "NumNodes" => Value::Int(self.graph.num_nodes() as i64),
                "NumEdges" => Value::Int(self.graph.num_edges() as i64),
                "PickRandom" => {
                    let n = self.graph.num_nodes();
                    if n == 0 {
                        return Err(EvalError::Runtime("PickRandom on empty graph".into()));
                    }
                    Value::Node(self.rng.gen_range(0..n))
                }
                "Degree" | "OutDegree" | "NumNbrs" => {
                    let v = self.node_of(obj)?;
                    Value::Int(self.graph.out_degree(NodeId(v)) as i64)
                }
                "InDegree" => {
                    let v = self.node_of(obj)?;
                    Value::Int(self.graph.in_degree(NodeId(v)) as i64)
                }
                "ToEdge" => {
                    let e = self.iter_edges.get(obj).ok_or_else(|| {
                        EvalError::Runtime(format!(
                            "`{obj}` has no connecting edge (not a live neighborhood iterator)"
                        ))
                    })?;
                    Value::Edge(e.0)
                }
                other => return Err(EvalError::Runtime(format!("unknown built-in `{other}`"))),
            },
        })
    }

    fn eval_agg(&mut self, agg: &AggExpr, result_ty: Option<&Ty>) -> Result<Value, EvalError> {
        let elements = self.iterate(&agg.source)?;
        let body_ty = agg
            .body
            .as_ref()
            .and_then(|b| b.ty.clone())
            .or_else(|| result_ty.cloned());
        let mut acc: Option<Value> = None;
        let mut count: i64 = 0;
        let mut exist = false;
        let mut all = true;
        let mut sum_f = 0.0f64;
        for (node, edge) in elements {
            self.bind_iter(&agg.iter, node, edge);
            let keep = match &agg.filter {
                Some(f) => self.eval(f)?.as_bool(),
                None => true,
            };
            if keep {
                match agg.kind {
                    AggKind::Count => count += 1,
                    AggKind::Exist | AggKind::All => {
                        // Condition may be in the body slot; if both filter
                        // and body exist, the filter narrows and the body is
                        // the condition. With only a filter, the filter IS
                        // the condition (already applied above).
                        let cond = match &agg.body {
                            Some(b) => self.eval(b)?.as_bool(),
                            None => true,
                        };
                        exist |= cond;
                        all &= cond;
                    }
                    AggKind::Sum | AggKind::Product | AggKind::Max | AggKind::Min => {
                        let body = agg.body.as_ref().expect("value aggregate has a body");
                        let v = self.eval(body)?;
                        let op = match agg.kind {
                            AggKind::Sum => AssignOp::Add,
                            AggKind::Product => AssignOp::Mul,
                            AggKind::Max => AssignOp::Max,
                            AggKind::Min => AssignOp::Min,
                            _ => unreachable!(),
                        };
                        acc = Some(match acc {
                            None => v,
                            Some(a) => apply_reduce(op, a, v),
                        });
                    }
                    AggKind::Avg => {
                        let body = agg.body.as_ref().expect("Avg has a body");
                        sum_f += self.eval(body)?.as_f64();
                        count += 1;
                    }
                }
            }
            self.unbind_iter(&agg.iter);
        }
        Ok(match agg.kind {
            AggKind::Count => Value::Int(count),
            AggKind::Exist => Value::Bool(exist),
            AggKind::All => Value::Bool(all),
            AggKind::Avg => Value::Double(if count == 0 {
                0.0
            } else {
                sum_f / count as f64
            }),
            AggKind::Sum | AggKind::Product => acc.unwrap_or_else(|| {
                let ty = body_ty.unwrap_or(Ty::Int);
                match agg.kind {
                    AggKind::Sum => Value::default_for(&ty),
                    _ => Value::Int(1).coerce(&ty),
                }
            }),
            AggKind::Max => {
                acc.unwrap_or_else(|| Value::inf_for(&body_ty.clone().unwrap_or(Ty::Int), true))
            }
            AggKind::Min => {
                acc.unwrap_or_else(|| Value::inf_for(&body_ty.clone().unwrap_or(Ty::Int), false))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema;
    use gm_graph::gen;

    fn run_src(graph: &Graph, src: &str, args: &HashMap<String, ArgValue>) -> ExecOutcome {
        let mut prog = parse(src).expect("parse");
        let infos = sema::check(&mut prog).expect("sema");
        run_procedure(graph, &prog.procedures[0], &infos[0], args, 42).expect("run")
    }

    #[test]
    fn scalar_arithmetic_and_return() {
        let g = gen::path(3);
        let out = run_src(
            &g,
            "Procedure f(G: Graph, k: Int) : Int {
                Int x = 2;
                x += k * 3;
                Return x;
            }",
            &HashMap::from([("k".to_owned(), ArgValue::Scalar(Value::Int(4)))]),
        );
        assert_eq!(out.ret, Some(Value::Int(14)));
    }

    #[test]
    fn foreach_with_filter_counts() {
        let g = gen::star(4); // hub 0 → spokes 1..=4
        let out = run_src(
            &g,
            "Procedure f(G: Graph) : Int {
                Int c = 0;
                Foreach (n: G.Nodes)(n.Degree() == 0) {
                    c += 1;
                }
                Return c;
            }",
            &HashMap::new(),
        );
        assert_eq!(out.ret, Some(Value::Int(4)));
    }

    #[test]
    fn neighborhood_iteration_writes_neighbors() {
        // Everyone adds 1 to each out-neighbor's cnt.
        let g = gen::path(4);
        let out = run_src(
            &g,
            "Procedure f(G: Graph, cnt: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    Foreach (t: n.Nbrs) {
                        t.cnt += 1;
                    }
                }
            }",
            &HashMap::new(),
        );
        assert_eq!(
            out.node_props["cnt"],
            vec![Value::Int(0), Value::Int(1), Value::Int(1), Value::Int(1)]
        );
    }

    #[test]
    fn in_neighbor_pull() {
        let g = gen::star(3); // 0 → 1,2,3
        let out = run_src(
            &g,
            "Procedure f(G: Graph, x: N_P<Int>, s: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    n.x = 7;
                }
                Foreach (n: G.Nodes) {
                    n.s = Sum(w: n.InNbrs){w.x};
                }
            }",
            &HashMap::new(),
        );
        assert_eq!(out.node_props["s"][0], Value::Int(0));
        assert_eq!(out.node_props["s"][1], Value::Int(7));
    }

    #[test]
    fn deferred_assignment_reads_old_values() {
        // Shift: every vertex takes the value of its in-neighbor, all at
        // once (deferred), on a cycle.
        let g = gen::cycle(3);
        let vals = vec![Value::Int(10), Value::Int(20), Value::Int(30)];
        let out = run_src(
            &g,
            "Procedure f(G: Graph, x: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    Foreach (t: n.Nbrs) {
                        t.x <= n.x;
                    }
                }
            }",
            &HashMap::from([("x".to_owned(), ArgValue::NodeProp(vals))]),
        );
        // Edge i → i+1, so each vertex receives its predecessor's old value.
        assert_eq!(
            out.node_props["x"],
            vec![Value::Int(30), Value::Int(10), Value::Int(20)]
        );
    }

    #[test]
    fn while_loop_and_exist() {
        let g = gen::path(5);
        let out = run_src(
            &g,
            "Procedure f(G: Graph, visited: N_P<Bool>) : Int {
                Int rounds = 0;
                Foreach (n: G.Nodes)(n.InDegree() == 0) {
                    n.visited = True;
                }
                Bool fin = False;
                While (!fin) {
                    Foreach (n: G.Nodes)(n.visited) {
                        Foreach (t: n.Nbrs) {
                            t.visited = True;
                        }
                    }
                    rounds += 1;
                    fin = !Exist(n: G.Nodes)(!n.visited);
                }
                Return rounds;
            }",
            &HashMap::new(),
        );
        assert_eq!(out.ret, Some(Value::Int(4)));
    }

    #[test]
    fn edge_properties_via_to_edge() {
        let g = gen::path(3);
        let weights = vec![Value::Int(5), Value::Int(7)];
        let out = run_src(
            &g,
            "Procedure f(G: Graph, len: E_P<Int>, d: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    Foreach (s: n.Nbrs) {
                        Edge e = s.ToEdge();
                        s.d = e.len;
                    }
                }
            }",
            &HashMap::from([("len".to_owned(), ArgValue::EdgeProp(weights))]),
        );
        assert_eq!(
            out.node_props["d"],
            vec![Value::Int(0), Value::Int(5), Value::Int(7)]
        );
    }

    #[test]
    fn bfs_forward_and_reverse_with_up_down_nbrs() {
        // Diamond: 0→1, 0→2, 1→3, 2→3. Path counting: sigma like Brandes.
        let mut b = gm_graph::GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 3);
        b.add_edge(2, 3);
        let g = b.build();
        let out = run_src(
            &g,
            "Procedure f(G: Graph, root: Node, sigma: N_P<Double>, back: N_P<Double>) {
                Foreach (n: G.Nodes) {
                    n.sigma = 0.0;
                }
                root.sigma = 1.0;
                InBFS (v: G.Nodes From root) {
                    v.sigma += Sum(w: v.UpNbrs){w.sigma};
                }
                InReverse {
                    v.back = Sum(w: v.DownNbrs){w.back} + 1.0;
                }
            }",
            &HashMap::from([("root".to_owned(), ArgValue::Scalar(Value::Node(0)))]),
        );
        // sigma: number of shortest paths from 0.
        assert_eq!(
            out.node_props["sigma"],
            vec![
                Value::Double(1.0),
                Value::Double(1.0),
                Value::Double(1.0),
                Value::Double(2.0)
            ]
        );
        // back: 3 has no children → 1; 1 and 2 → 2; 0 → 5.
        assert_eq!(
            out.node_props["back"],
            vec![
                Value::Double(5.0),
                Value::Double(2.0),
                Value::Double(2.0),
                Value::Double(1.0)
            ]
        );
    }

    #[test]
    fn bulk_assignment_via_graph_is_not_executed_here() {
        // `G.sigma = 0.0` in the previous test exercised the bulk path —
        // the interpreter resolves it through the Node branch after
        // normalize; pre-normalize it reaches the graph variable, which is
        // reported as a runtime misuse.
        let g = gen::path(2);
        let mut prog = parse(
            "Procedure f(G: Graph, x: N_P<Int>) {
                G.x = 1;
            }",
        )
        .unwrap();
        let infos = sema::check(&mut prog).unwrap();
        let r = run_procedure(&g, &prog.procedures[0], &infos[0], &HashMap::new(), 0);
        assert!(r.is_err(), "bulk assignment requires normalize first");
    }

    #[test]
    fn pick_random_is_seeded() {
        let g = gen::path(100);
        let src = "Procedure f(G: Graph) : Node {
            Node s = G.PickRandom();
            Return s;
        }";
        let mut prog = parse(src).unwrap();
        let infos = sema::check(&mut prog).unwrap();
        let a = run_procedure(&g, &prog.procedures[0], &infos[0], &HashMap::new(), 7)
            .unwrap()
            .ret;
        let b = run_procedure(&g, &prog.procedures[0], &infos[0], &HashMap::new(), 7)
            .unwrap()
            .ret;
        let c = run_procedure(&g, &prog.procedures[0], &infos[0], &HashMap::new(), 8)
            .unwrap()
            .ret;
        assert_eq!(a, b);
        assert!(a.is_some());
        let _ = c; // different seed may or may not collide; just must run
    }

    #[test]
    fn missing_argument_is_reported() {
        let g = gen::path(2);
        let mut prog = parse("Procedure f(G: Graph, k: Int) { Int x = k; }").unwrap();
        let infos = sema::check(&mut prog).unwrap();
        let err =
            run_procedure(&g, &prog.procedures[0], &infos[0], &HashMap::new(), 0).unwrap_err();
        assert!(matches!(err, EvalError::BadArgument(_)));
        assert!(err.to_string().contains("k"));
    }

    #[test]
    fn empty_aggregates_have_identities() {
        let g = gen::path(1); // single vertex, no neighbors
        let out = run_src(
            &g,
            "Procedure f(G: Graph, x: N_P<Int>, mn: N_P<Int>, mx: N_P<Int>, c: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    n.x = Sum(t: n.Nbrs){t.x};
                    n.mn = Min(t: n.Nbrs){t.x};
                    n.mx = Max(t: n.Nbrs){t.x};
                    n.c = Count(t: n.Nbrs);
                }
            }",
            &HashMap::new(),
        );
        assert_eq!(out.node_props["x"][0], Value::Int(0));
        assert_eq!(out.node_props["mn"][0], Value::Int(i64::MAX));
        assert_eq!(out.node_props["mx"][0], Value::Int(i64::MIN));
        assert_eq!(out.node_props["c"][0], Value::Int(0));
    }

    #[test]
    fn ternary_coerces_to_result_type() {
        let g = gen::path(2);
        let out = run_src(
            &g,
            "Procedure f(G: Graph, c: Int) : Double {
                Double v = (c == 0) ? 0.0 : c / 2;
                Return v;
            }",
            &HashMap::from([("c".to_owned(), ArgValue::Scalar(Value::Int(7)))]),
        );
        assert_eq!(out.ret, Some(Value::Double(3.0))); // 7/2 integer-divides
    }
}
