//! AST analysis and rewriting helpers shared by the transformation passes.

use crate::ast::*;
use std::collections::HashSet;

/// Generates names that collide with nothing in the procedure.
#[derive(Clone, Debug, Default)]
pub struct NameGen {
    used: HashSet<String>,
    counter: u32,
}

impl NameGen {
    /// Builds a generator that avoids every identifier appearing in `proc`.
    pub fn for_procedure(proc: &Procedure) -> Self {
        let mut used = HashSet::new();
        for p in &proc.params {
            used.insert(p.name.clone());
        }
        collect_idents_block(&proc.body, &mut used);
        NameGen { used, counter: 0 }
    }

    /// Produces a fresh name starting with `base` (e.g. `_tmp`).
    pub fn fresh(&mut self, base: &str) -> String {
        loop {
            self.counter += 1;
            let candidate = format!("{base}{}", self.counter);
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }
}

fn collect_idents_block(b: &Block, out: &mut HashSet<String>) {
    for s in &b.stmts {
        collect_idents_stmt(s, out);
    }
}

fn collect_idents_stmt(s: &Stmt, out: &mut HashSet<String>) {
    match &s.kind {
        StmtKind::VarDecl { name, init, .. } => {
            out.insert(name.clone());
            if let Some(e) = init {
                collect_idents_expr(e, out);
            }
        }
        StmtKind::Assign { target, value, .. } => {
            match target {
                Target::Scalar(n) => {
                    out.insert(n.clone());
                }
                Target::Prop { obj, prop } => {
                    out.insert(obj.clone());
                    out.insert(prop.clone());
                }
            }
            collect_idents_expr(value, out);
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            collect_idents_expr(cond, out);
            collect_idents_block(then_branch, out);
            if let Some(eb) = else_branch {
                collect_idents_block(eb, out);
            }
        }
        StmtKind::While { cond, body, .. } => {
            collect_idents_expr(cond, out);
            collect_idents_block(body, out);
        }
        StmtKind::Foreach(f) => {
            out.insert(f.iter.clone());
            out.insert(f.source.base().to_owned());
            if let Some(filt) = &f.filter {
                collect_idents_expr(filt, out);
            }
            collect_idents_block(&f.body, out);
        }
        StmtKind::InBfs(b) => {
            out.insert(b.iter.clone());
            out.insert(b.graph.clone());
            collect_idents_expr(&b.root, out);
            collect_idents_block(&b.body, out);
            if let Some(rb) = &b.reverse_body {
                collect_idents_block(rb, out);
            }
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                collect_idents_expr(e, out);
            }
        }
        StmtKind::Block(b) => collect_idents_block(b, out),
    }
}

fn collect_idents_expr(e: &Expr, out: &mut HashSet<String>) {
    match &e.kind {
        ExprKind::Var(n) => {
            out.insert(n.clone());
        }
        ExprKind::Prop { obj, prop } => {
            out.insert(obj.clone());
            out.insert(prop.clone());
        }
        ExprKind::Unary { expr, .. } => collect_idents_expr(expr, out),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_idents_expr(lhs, out);
            collect_idents_expr(rhs, out);
        }
        ExprKind::Ternary {
            cond,
            then_val,
            else_val,
        } => {
            collect_idents_expr(cond, out);
            collect_idents_expr(then_val, out);
            collect_idents_expr(else_val, out);
        }
        ExprKind::Agg(a) => {
            out.insert(a.iter.clone());
            out.insert(a.source.base().to_owned());
            if let Some(f) = &a.filter {
                collect_idents_expr(f, out);
            }
            if let Some(b) = &a.body {
                collect_idents_expr(b, out);
            }
        }
        ExprKind::Call { obj, args, .. } => {
            out.insert(obj.clone());
            for a in args {
                collect_idents_expr(a, out);
            }
        }
        _ => {}
    }
}

/// Replaces every reference to variable `from` with `to` in an expression
/// (variable uses, property-access bases, call receivers, aggregate-source
/// bases). Names are assumed globally unique (post-sema), so no shadowing
/// check is needed.
pub fn subst_var_expr(e: &mut Expr, from: &str, to: &str) {
    match &mut e.kind {
        ExprKind::Var(n) if n == from => {
            *n = to.to_owned();
        }
        ExprKind::Prop { obj, .. } if obj == from => {
            *obj = to.to_owned();
        }
        ExprKind::Unary { expr, .. } => subst_var_expr(expr, from, to),
        ExprKind::Binary { lhs, rhs, .. } => {
            subst_var_expr(lhs, from, to);
            subst_var_expr(rhs, from, to);
        }
        ExprKind::Ternary {
            cond,
            then_val,
            else_val,
        } => {
            subst_var_expr(cond, from, to);
            subst_var_expr(then_val, from, to);
            subst_var_expr(else_val, from, to);
        }
        ExprKind::Agg(a) => {
            subst_source(&mut a.source, from, to);
            if let Some(f) = &mut a.filter {
                subst_var_expr(f, from, to);
            }
            if let Some(b) = &mut a.body {
                subst_var_expr(b, from, to);
            }
        }
        ExprKind::Call { obj, args, .. } => {
            if obj == from {
                *obj = to.to_owned();
            }
            for a in args {
                subst_var_expr(a, from, to);
            }
        }
        _ => {}
    }
}

fn subst_source(s: &mut IterSource, from: &str, to: &str) {
    let base = match s {
        IterSource::Nodes { graph } => graph,
        IterSource::OutNbrs { of }
        | IterSource::InNbrs { of }
        | IterSource::UpNbrs { of }
        | IterSource::DownNbrs { of } => of,
    };
    if base == from {
        *base = to.to_owned();
    }
}

/// Replaces variable references inside a whole statement (targets included).
pub fn subst_var_stmt(s: &mut Stmt, from: &str, to: &str) {
    match &mut s.kind {
        StmtKind::VarDecl { init, .. } => {
            if let Some(e) = init {
                subst_var_expr(e, from, to);
            }
        }
        StmtKind::Assign { target, value, .. } => {
            match target {
                Target::Scalar(n) => {
                    if n == from {
                        *n = to.to_owned();
                    }
                }
                Target::Prop { obj, .. } => {
                    if obj == from {
                        *obj = to.to_owned();
                    }
                }
            }
            subst_var_expr(value, from, to);
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            subst_var_expr(cond, from, to);
            subst_var_block(then_branch, from, to);
            if let Some(eb) = else_branch {
                subst_var_block(eb, from, to);
            }
        }
        StmtKind::While { cond, body, .. } => {
            subst_var_expr(cond, from, to);
            subst_var_block(body, from, to);
        }
        StmtKind::Foreach(f) => {
            subst_source(&mut f.source, from, to);
            if let Some(filt) = &mut f.filter {
                subst_var_expr(filt, from, to);
            }
            subst_var_block(&mut f.body, from, to);
        }
        StmtKind::InBfs(b) => {
            subst_var_expr(&mut b.root, from, to);
            subst_var_block(&mut b.body, from, to);
            if let Some(rb) = &mut b.reverse_body {
                subst_var_block(rb, from, to);
            }
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                subst_var_expr(e, from, to);
            }
        }
        StmtKind::Block(b) => subst_var_block(b, from, to),
    }
}

/// [`subst_var_stmt`] over every statement of a block.
pub fn subst_var_block(b: &mut Block, from: &str, to: &str) {
    for s in &mut b.stmts {
        subst_var_stmt(s, from, to);
    }
}

/// A location written by an assignment.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Place {
    /// A scalar variable.
    Scalar(String),
    /// `obj.prop`.
    Prop {
        /// Base variable.
        obj: String,
        /// Property name.
        prop: String,
    },
}

/// Collects every assignment in a block (recursively), as `(place, op)`.
pub fn writes_in_block(b: &Block) -> Vec<(Place, AssignOp)> {
    let mut out = Vec::new();
    writes_rec(b, &mut out);
    out
}

fn writes_rec(b: &Block, out: &mut Vec<(Place, AssignOp)>) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Assign { target, op, .. } => {
                let place = match target {
                    Target::Scalar(n) => Place::Scalar(n.clone()),
                    Target::Prop { obj, prop } => Place::Prop {
                        obj: obj.clone(),
                        prop: prop.clone(),
                    },
                };
                out.push((place, *op));
            }
            StmtKind::VarDecl { name, init, .. } => {
                if init.is_some() {
                    out.push((Place::Scalar(name.clone()), AssignOp::Assign));
                }
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                writes_rec(then_branch, out);
                if let Some(eb) = else_branch {
                    writes_rec(eb, out);
                }
            }
            StmtKind::While { body, .. } => writes_rec(body, out),
            StmtKind::Foreach(f) => writes_rec(&f.body, out),
            StmtKind::InBfs(bf) => {
                writes_rec(&bf.body, out);
                if let Some(rb) = &bf.reverse_body {
                    writes_rec(rb, out);
                }
            }
            StmtKind::Block(inner) => writes_rec(inner, out),
            StmtKind::Return(_) => {}
        }
    }
}

/// Collects every read in an expression: variable uses (excluding pure
/// receivers of degree-like calls? no — receivers count) and property reads.
pub fn reads_in_expr(e: &Expr, out: &mut Vec<Place>) {
    match &e.kind {
        ExprKind::Var(n) => out.push(Place::Scalar(n.clone())),
        ExprKind::Prop { obj, prop } => out.push(Place::Prop {
            obj: obj.clone(),
            prop: prop.clone(),
        }),
        ExprKind::Unary { expr, .. } => reads_in_expr(expr, out),
        ExprKind::Binary { lhs, rhs, .. } => {
            reads_in_expr(lhs, out);
            reads_in_expr(rhs, out);
        }
        ExprKind::Ternary {
            cond,
            then_val,
            else_val,
        } => {
            reads_in_expr(cond, out);
            reads_in_expr(then_val, out);
            reads_in_expr(else_val, out);
        }
        ExprKind::Agg(a) => {
            if let Some(f) = &a.filter {
                reads_in_expr(f, out);
            }
            if let Some(b) = &a.body {
                reads_in_expr(b, out);
            }
        }
        ExprKind::Call { obj, args, .. } => {
            out.push(Place::Scalar(obj.clone()));
            for a in args {
                reads_in_expr(a, out);
            }
        }
        _ => {}
    }
}

/// Collects every read in a block: RHS expressions, filters, conditions, and
/// reduction targets (a `+=` both reads and writes its target).
pub fn reads_in_block(b: &Block) -> Vec<Place> {
    let mut out = Vec::new();
    reads_block_rec(b, &mut out);
    out
}

fn reads_block_rec(b: &Block, out: &mut Vec<Place>) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::VarDecl { init, .. } => {
                if let Some(e) = init {
                    reads_in_expr(e, out);
                }
            }
            StmtKind::Assign { target, op, value } => {
                reads_in_expr(value, out);
                if op.is_reduction() {
                    match target {
                        Target::Scalar(n) => out.push(Place::Scalar(n.clone())),
                        Target::Prop { obj, prop } => out.push(Place::Prop {
                            obj: obj.clone(),
                            prop: prop.clone(),
                        }),
                    }
                }
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                reads_in_expr(cond, out);
                reads_block_rec(then_branch, out);
                if let Some(eb) = else_branch {
                    reads_block_rec(eb, out);
                }
            }
            StmtKind::While { cond, body, .. } => {
                reads_in_expr(cond, out);
                reads_block_rec(body, out);
            }
            StmtKind::Foreach(f) => {
                if let Some(filt) = &f.filter {
                    reads_in_expr(filt, out);
                }
                reads_block_rec(&f.body, out);
            }
            StmtKind::InBfs(bf) => {
                reads_in_expr(&bf.root, out);
                reads_block_rec(&bf.body, out);
                if let Some(rb) = &bf.reverse_body {
                    reads_block_rec(rb, out);
                }
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    reads_in_expr(e, out);
                }
            }
            StmtKind::Block(inner) => reads_block_rec(inner, out),
        }
    }
}

/// Counts AST nodes (statements and expressions) in a procedure — the
/// size measure reported by the per-pass compile timings.
pub fn count_nodes(proc: &Procedure) -> usize {
    count_block(&proc.body)
}

fn count_block(b: &Block) -> usize {
    b.stmts.iter().map(count_stmt).sum()
}

fn count_stmt(s: &Stmt) -> usize {
    1 + match &s.kind {
        StmtKind::VarDecl { init, .. } => init.as_ref().map_or(0, count_expr),
        StmtKind::Assign { value, .. } => count_expr(value),
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            count_expr(cond)
                + count_block(then_branch)
                + else_branch.as_ref().map_or(0, count_block)
        }
        StmtKind::While { cond, body, .. } => count_expr(cond) + count_block(body),
        StmtKind::Foreach(f) => f.filter.as_ref().map_or(0, count_expr) + count_block(&f.body),
        StmtKind::InBfs(bf) => {
            count_expr(&bf.root)
                + count_block(&bf.body)
                + bf.reverse_body.as_ref().map_or(0, count_block)
        }
        StmtKind::Return(e) => e.as_ref().map_or(0, count_expr),
        StmtKind::Block(inner) => count_block(inner),
    }
}

fn count_expr(e: &Expr) -> usize {
    1 + match &e.kind {
        ExprKind::Unary { expr, .. } => count_expr(expr),
        ExprKind::Binary { lhs, rhs, .. } => count_expr(lhs) + count_expr(rhs),
        ExprKind::Ternary {
            cond,
            then_val,
            else_val,
        } => count_expr(cond) + count_expr(then_val) + count_expr(else_val),
        ExprKind::Agg(a) => {
            a.filter.as_ref().map_or(0, count_expr) + a.body.as_ref().map_or(0, count_expr)
        }
        ExprKind::Call { args, .. } => args.iter().map(count_expr).sum(),
        _ => 0,
    }
}

/// Whether an expression contains any aggregate sub-expression.
pub fn contains_agg(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Agg(_) => true,
        ExprKind::Unary { expr, .. } => contains_agg(expr),
        ExprKind::Binary { lhs, rhs, .. } => contains_agg(lhs) || contains_agg(rhs),
        ExprKind::Ternary {
            cond,
            then_val,
            else_val,
        } => contains_agg(cond) || contains_agg(then_val) || contains_agg(else_val),
        ExprKind::Call { args, .. } => args.iter().any(contains_agg),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn body_of(src: &str) -> Block {
        parse(src).unwrap().procedures.remove(0).body
    }

    #[test]
    fn namegen_avoids_existing() {
        let p = parse("Procedure f(G: Graph) { Int _tmp1 = 0; Int x = _tmp1; }").unwrap();
        let mut ng = NameGen::for_procedure(&p.procedures[0]);
        let n = ng.fresh("_tmp");
        assert_ne!(n, "_tmp1");
        let n2 = ng.fresh("_tmp");
        assert_ne!(n, n2);
    }

    #[test]
    fn subst_renames_all_reference_forms() {
        let mut b = body_of(
            "Procedure f(G: Graph, p: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    n.p = G.NumNodes();
                }
            }",
        );
        subst_var_block(&mut b, "G", "H");
        let printed = crate::pretty::stmt_to_string(&b.stmts[0]);
        assert!(printed.contains("H.Nodes"), "{printed}");
        assert!(printed.contains("H.NumNodes()"), "{printed}");
    }

    #[test]
    fn writes_and_reads_collection() {
        let b = body_of(
            "Procedure f(G: Graph, p: N_P<Int>, q: N_P<Int>) {
                Int s = 0;
                Foreach (n: G.Nodes) {
                    Foreach (t: n.Nbrs) {
                        t.p += n.q;
                    }
                    s += 1;
                }
            }",
        );
        let writes = writes_in_block(&b);
        assert!(writes.contains(&(
            Place::Prop {
                obj: "t".into(),
                prop: "p".into()
            },
            AssignOp::Add
        )));
        assert!(writes.contains(&(Place::Scalar("s".into()), AssignOp::Add)));
        let reads = reads_in_block(&b);
        assert!(reads.contains(&Place::Prop {
            obj: "n".into(),
            prop: "q".into()
        }));
        // Reduction target counts as a read.
        assert!(reads.contains(&Place::Prop {
            obj: "t".into(),
            prop: "p".into()
        }));
    }

    #[test]
    fn count_nodes_grows_with_the_program() {
        let small = parse("Procedure f(G: Graph) { Int x = 1; }").unwrap();
        let big = parse(
            "Procedure f(G: Graph, p: N_P<Int>) {
                Int x = 1 + 2;
                Foreach (n: G.Nodes) {
                    n.p = x;
                }
            }",
        )
        .unwrap();
        let small_n = count_nodes(&small.procedures[0]);
        let big_n = count_nodes(&big.procedures[0]);
        assert!(small_n >= 2, "decl + literal: {small_n}");
        assert!(big_n > small_n, "{big_n} vs {small_n}");
    }

    #[test]
    fn contains_agg_detects_nesting() {
        let e = crate::parser::parse_expr("1 + Sum(n: G.Nodes){n.Degree()}").unwrap();
        assert!(contains_agg(&e));
        let e2 = crate::parser::parse_expr("1 + 2").unwrap();
        assert!(!contains_agg(&e2));
    }

    // Silence an unused-import lint path for parse in some cfgs.
    #[allow(dead_code)]
    fn _use(_: fn(&str) -> Result<crate::ast::Program, crate::diag::Diagnostics>) {}
    #[allow(dead_code)]
    fn _u2() {
        _use(parse);
    }
}
