//! Source locations and diagnostics.

use std::error::Error;
use std::fmt;

/// A half-open byte range into the source text.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Span {
    /// First byte.
    pub start: u32,
    /// One past the last byte.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// A zero-width span used by compiler-synthesized nodes.
    pub fn synthetic() -> Span {
        Span::default()
    }
}

/// A single compiler diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diag {
    /// Where in the source the problem is.
    pub span: Span,
    /// Human-readable description, lowercase, no trailing period.
    pub message: String,
}

impl Diag {
    /// Creates a diagnostic.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        Diag {
            span,
            message: message.into(),
        }
    }

    /// Renders the diagnostic with 1-based line/column computed from `src`.
    pub fn render(&self, src: &str) -> String {
        let (line, col) = line_col(src, self.span.start);
        format!("{line}:{col}: {}", self.message)
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error at bytes {}..{}: {}",
            self.span.start, self.span.end, self.message
        )
    }
}

/// A batch of diagnostics, used as the error type of compiler phases.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Diagnostics {
    /// Individual errors in source order.
    pub errors: Vec<Diag>,
}

impl Diagnostics {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one error.
    pub fn error(&mut self, span: Span, message: impl Into<String>) {
        self.errors.push(Diag::new(span, message));
    }

    /// Whether any error was recorded.
    pub fn has_errors(&self) -> bool {
        !self.errors.is_empty()
    }

    /// Renders all diagnostics against the source text, one per line.
    pub fn render(&self, src: &str) -> String {
        self.errors
            .iter()
            .map(|d| d.render(src))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.errors.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl Error for Diagnostics {}

/// Computes the 1-based `(line, column)` of byte `pos` within `src`.
fn line_col(src: &str, pos: u32) -> (usize, usize) {
    let pos = (pos as usize).min(src.len());
    let mut line = 1;
    let mut col = 1;
    for (i, ch) in src.char_indices() {
        if i >= pos {
            break;
        }
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 10);
        assert_eq!(a.merge(b), Span::new(3, 10));
        assert_eq!(b.merge(a), Span::new(3, 10));
    }

    #[test]
    fn render_line_col() {
        let src = "abc\ndef\nghi";
        let d = Diag::new(Span::new(5, 6), "bad thing");
        assert_eq!(d.render(src), "2:2: bad thing");
    }

    #[test]
    fn render_position_past_end_is_clamped() {
        let d = Diag::new(Span::new(100, 101), "eof issue");
        assert_eq!(d.render("ab"), "1:3: eof issue");
    }

    #[test]
    fn diagnostics_batch() {
        let mut ds = Diagnostics::new();
        assert!(!ds.has_errors());
        ds.error(Span::new(0, 1), "first");
        ds.error(Span::new(2, 3), "second");
        assert!(ds.has_errors());
        let rendered = ds.render("abcd");
        assert!(rendered.contains("first") && rendered.contains("second"));
        assert!(ds.to_string().contains("first"));
    }
}
