//! The dynamic runtime value shared by the sequential interpreter and the
//! Pregel-state-machine interpreter.

use crate::ast::{BinOp, UnOp};
use crate::types::Ty;
use std::fmt;

/// Sentinel vertex id for Green-Marl's `NIL` node.
pub const NIL_NODE: u32 = u32::MAX;

/// A runtime value. `Int`/`Long` share the `Int` representation and
/// `Float`/`Double` share `Double`; declared widths only matter for message
/// byte accounting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Floating point.
    Double(f64),
    /// Boolean.
    Bool(bool),
    /// Vertex reference ([`NIL_NODE`] encodes `NIL`).
    Node(u32),
    /// Edge reference.
    Edge(u32),
}

impl Value {
    /// The zero/identity default for a declared type (what uninitialized
    /// Green-Marl variables hold).
    pub fn default_for(ty: &Ty) -> Value {
        match ty {
            Ty::Int | Ty::Long => Value::Int(0),
            Ty::Float | Ty::Double => Value::Double(0.0),
            Ty::Bool => Value::Bool(false),
            Ty::Node => Value::Node(NIL_NODE),
            Ty::Edge => Value::Edge(0),
            other => panic!("no runtime default for type {other}"),
        }
    }

    /// `INF` for a declared type: `i64::MAX` for integers, `+∞` for floats.
    pub fn inf_for(ty: &Ty, negative: bool) -> Value {
        match ty {
            Ty::Int | Ty::Long => Value::Int(if negative { i64::MIN } else { i64::MAX }),
            Ty::Float | Ty::Double => Value::Double(if negative {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            }),
            other => panic!("INF has no meaning at type {other}"),
        }
    }

    /// Coerces to the runtime representation of `ty` (int↔float
    /// conversions; everything else must already match).
    ///
    /// # Panics
    ///
    /// Panics on unconvertible combinations — the type checker rules those
    /// out before execution.
    pub fn coerce(self, ty: &Ty) -> Value {
        match (self, ty) {
            (Value::Int(v), Ty::Int | Ty::Long) => Value::Int(v),
            (Value::Int(v), Ty::Float | Ty::Double) => Value::Double(v as f64),
            (Value::Double(v), Ty::Float | Ty::Double) => Value::Double(v),
            (Value::Double(v), Ty::Int | Ty::Long) => Value::Int(v as i64),
            (Value::Bool(v), Ty::Bool) => Value::Bool(v),
            (Value::Node(v), Ty::Node) => Value::Node(v),
            (Value::Edge(v), Ty::Edge) => Value::Edge(v),
            (v, t) => panic!("cannot coerce {v:?} to {t}"),
        }
    }

    /// Integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `Int`.
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            other => panic!("expected Int, found {other:?}"),
        }
    }

    /// Numeric payload as `f64` (ints widen).
    ///
    /// # Panics
    ///
    /// Panics for non-numeric values.
    pub fn as_f64(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Double(v) => v,
            other => panic!("expected numeric, found {other:?}"),
        }
    }

    /// Boolean payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Bool`.
    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(v) => v,
            other => panic!("expected Bool, found {other:?}"),
        }
    }

    /// Vertex-id payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Node`.
    pub fn as_node(self) -> u32 {
        match self {
            Value::Node(v) => v,
            other => panic!("expected Node, found {other:?}"),
        }
    }

    /// Edge-id payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `Edge`.
    pub fn as_edge(self) -> u32 {
        match self {
            Value::Edge(v) => v,
            other => panic!("expected Edge, found {other:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Node(v) if *v == NIL_NODE => f.write_str("NIL"),
            Value::Node(v) => write!(f, "n{v}"),
            Value::Edge(v) => write!(f, "e{v}"),
        }
    }
}

/// Evaluates a binary operation with Green-Marl semantics: integer
/// arithmetic stays integral (truncating division), mixed arithmetic
/// widens to float, comparisons work across numeric types, and `==`/`!=`
/// apply to nodes and edges.
///
/// # Panics
///
/// Panics on combinations the type checker rejects (e.g. `%` on floats)
/// and on integer division by zero.
pub fn apply_bin(op: BinOp, a: Value, b: Value) -> Value {
    use BinOp::*;
    use Value::*;
    match op {
        Add | Sub | Mul | Div => match (a, b) {
            (Int(x), Int(y)) => Int(match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        panic!("integer division by zero")
                    } else {
                        x / y
                    }
                }
                _ => unreachable!(),
            }),
            (x, y) => {
                let (x, y) = (x.as_f64(), y.as_f64());
                Double(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    _ => unreachable!(),
                })
            }
        },
        Mod => match (a, b) {
            (Int(x), Int(y)) => {
                if y == 0 {
                    panic!("integer modulo by zero")
                } else {
                    Int(x % y)
                }
            }
            (x, y) => panic!("% requires integers, found {x:?} and {y:?}"),
        },
        Eq | Ne => {
            let eq = match (a, b) {
                (Int(x), Int(y)) => x == y,
                (Bool(x), Bool(y)) => x == y,
                (Node(x), Node(y)) => x == y,
                (Edge(x), Edge(y)) => x == y,
                (x, y) => x.as_f64() == y.as_f64(),
            };
            Bool(if op == Eq { eq } else { !eq })
        }
        Lt | Le | Gt | Ge => {
            let ord = match (a, b) {
                (Int(x), Int(y)) => x.partial_cmp(&y),
                (x, y) => x.as_f64().partial_cmp(&y.as_f64()),
            };
            let r = match (op, ord) {
                (Lt, Some(o)) => o.is_lt(),
                (Le, Some(o)) => o.is_le(),
                (Gt, Some(o)) => o.is_gt(),
                (Ge, Some(o)) => o.is_ge(),
                (_, None) => false, // NaN comparisons are false
                _ => unreachable!(),
            };
            Bool(r)
        }
        And => Bool(a.as_bool() && b.as_bool()),
        Or => Bool(a.as_bool() || b.as_bool()),
    }
}

/// Evaluates a unary operation.
///
/// # Panics
///
/// Panics on type mismatches the checker rules out.
pub fn apply_un(op: UnOp, v: Value) -> Value {
    match (op, v) {
        (UnOp::Neg, Value::Int(x)) => Value::Int(-x),
        (UnOp::Neg, Value::Double(x)) => Value::Double(-x),
        (UnOp::Not, Value::Bool(x)) => Value::Bool(!x),
        (UnOp::Abs, Value::Int(x)) => Value::Int(x.abs()),
        (UnOp::Abs, Value::Double(x)) => Value::Double(x.abs()),
        (op, v) => panic!("unary {op:?} not applicable to {v:?}"),
    }
}

/// Combines `current` and `incoming` under a reduction assignment operator
/// (`+=`, `min=`, ...). Plain and deferred assignment replace.
///
/// # Panics
///
/// Panics on type mismatches the checker rules out.
pub fn apply_reduce(op: crate::ast::AssignOp, current: Value, incoming: Value) -> Value {
    use crate::ast::AssignOp;
    match op {
        AssignOp::Assign | AssignOp::Defer => incoming,
        AssignOp::Add => apply_bin(BinOp::Add, current, incoming),
        AssignOp::Sub => apply_bin(BinOp::Sub, current, incoming),
        AssignOp::Mul => apply_bin(BinOp::Mul, current, incoming),
        AssignOp::Min => match (current, incoming) {
            (Value::Int(x), Value::Int(y)) => Value::Int(x.min(y)),
            (Value::Node(x), Value::Node(y)) => Value::Node(x.min(y)),
            (x, y) => Value::Double(x.as_f64().min(y.as_f64())),
        },
        AssignOp::Max => match (current, incoming) {
            (Value::Int(x), Value::Int(y)) => Value::Int(x.max(y)),
            (Value::Node(x), Value::Node(y)) => Value::Node(x.max(y)),
            (x, y) => Value::Double(x.as_f64().max(y.as_f64())),
        },
        AssignOp::And => Value::Bool(current.as_bool() && incoming.as_bool()),
        AssignOp::Or => Value::Bool(current.as_bool() || incoming.as_bool()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AssignOp;

    #[test]
    fn defaults_and_inf() {
        assert_eq!(Value::default_for(&Ty::Int), Value::Int(0));
        assert_eq!(Value::default_for(&Ty::Node), Value::Node(NIL_NODE));
        assert_eq!(Value::inf_for(&Ty::Int, false), Value::Int(i64::MAX));
        assert_eq!(
            Value::inf_for(&Ty::Double, true),
            Value::Double(f64::NEG_INFINITY)
        );
    }

    #[test]
    fn integer_arithmetic_truncates() {
        assert_eq!(
            apply_bin(BinOp::Div, Value::Int(7), Value::Int(2)),
            Value::Int(3)
        );
        assert_eq!(
            apply_bin(BinOp::Mod, Value::Int(7), Value::Int(2)),
            Value::Int(1)
        );
    }

    #[test]
    fn mixed_arithmetic_widens() {
        assert_eq!(
            apply_bin(BinOp::Div, Value::Int(7), Value::Double(2.0)),
            Value::Double(3.5)
        );
        assert_eq!(
            apply_bin(BinOp::Add, Value::Double(0.5), Value::Int(1)),
            Value::Double(1.5)
        );
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn int_div_by_zero_panics() {
        apply_bin(BinOp::Div, Value::Int(1), Value::Int(0));
    }

    #[test]
    fn comparisons_and_equality() {
        assert_eq!(
            apply_bin(BinOp::Lt, Value::Int(1), Value::Double(1.5)),
            Value::Bool(true)
        );
        assert_eq!(
            apply_bin(BinOp::Eq, Value::Node(3), Value::Node(3)),
            Value::Bool(true)
        );
        assert_eq!(
            apply_bin(BinOp::Ne, Value::Node(3), Value::Node(NIL_NODE)),
            Value::Bool(true)
        );
        // NaN comparisons are false.
        assert_eq!(
            apply_bin(BinOp::Lt, Value::Double(f64::NAN), Value::Double(1.0)),
            Value::Bool(false)
        );
    }

    #[test]
    fn logic_and_unary() {
        assert_eq!(
            apply_bin(BinOp::And, Value::Bool(true), Value::Bool(false)),
            Value::Bool(false)
        );
        assert_eq!(apply_un(UnOp::Not, Value::Bool(false)), Value::Bool(true));
        assert_eq!(apply_un(UnOp::Abs, Value::Int(-4)), Value::Int(4));
        assert_eq!(apply_un(UnOp::Abs, Value::Double(-0.5)), Value::Double(0.5));
        assert_eq!(apply_un(UnOp::Neg, Value::Int(4)), Value::Int(-4));
    }

    #[test]
    fn reductions() {
        assert_eq!(
            apply_reduce(AssignOp::Min, Value::Int(5), Value::Int(3)),
            Value::Int(3)
        );
        assert_eq!(
            apply_reduce(AssignOp::Max, Value::Double(1.0), Value::Double(2.0)),
            Value::Double(2.0)
        );
        assert_eq!(
            apply_reduce(AssignOp::Add, Value::Int(1), Value::Int(2)),
            Value::Int(3)
        );
        assert_eq!(
            apply_reduce(AssignOp::Assign, Value::Int(1), Value::Int(2)),
            Value::Int(2)
        );
        assert_eq!(
            apply_reduce(AssignOp::Or, Value::Bool(false), Value::Bool(true)),
            Value::Bool(true)
        );
        // Arbitrary-write resolution uses Max over node ids (documented in
        // DESIGN.md) — exercised via Max on Node values.
        assert_eq!(
            apply_reduce(AssignOp::Max, Value::Node(2), Value::Node(7)),
            Value::Node(7)
        );
    }

    #[test]
    fn coerce_between_numeric_reprs() {
        assert_eq!(Value::Int(3).coerce(&Ty::Double), Value::Double(3.0));
        assert_eq!(Value::Double(3.7).coerce(&Ty::Int), Value::Int(3));
        assert_eq!(Value::Bool(true).coerce(&Ty::Bool), Value::Bool(true));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Node(NIL_NODE).to_string(), "NIL");
        assert_eq!(Value::Node(4).to_string(), "n4");
        assert_eq!(Value::Int(-2).to_string(), "-2");
    }
}
