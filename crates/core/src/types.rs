//! The Green-Marl type system.

use std::fmt;

/// A Green-Marl type.
///
/// `Int`/`Long` evaluate as 64-bit integers and `Float`/`Double` as 64-bit
/// floats in this implementation, but the width distinction is kept because
/// message-payload byte accounting (the paper's network I/O metric) uses the
/// declared width.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 32-bit integer.
    Int,
    /// 64-bit integer.
    Long,
    /// 32-bit float.
    Float,
    /// 64-bit float.
    Double,
    /// Boolean.
    Bool,
    /// A vertex of the (single) input graph.
    Node,
    /// An edge of the input graph.
    Edge,
    /// The input graph itself.
    Graph,
    /// A per-vertex property of the inner type (`Node_Prop<T>` / `N_P<T>`).
    NodeProp(Box<Ty>),
    /// A per-edge property of the inner type (`Edge_Prop<T>` / `E_P<T>`).
    EdgeProp(Box<Ty>),
}

impl Ty {
    /// Whether this is a numeric scalar (`Int`, `Long`, `Float`, `Double`).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Ty::Int | Ty::Long | Ty::Float | Ty::Double)
    }

    /// Whether this is an integer scalar.
    pub fn is_integer(&self) -> bool {
        matches!(self, Ty::Int | Ty::Long)
    }

    /// Whether this is a floating-point scalar.
    pub fn is_float(&self) -> bool {
        matches!(self, Ty::Float | Ty::Double)
    }

    /// Whether values of this type can live in vertex state / messages
    /// (scalars and `Node`/`Edge` references).
    pub fn is_value(&self) -> bool {
        matches!(
            self,
            Ty::Int | Ty::Long | Ty::Float | Ty::Double | Ty::Bool | Ty::Node | Ty::Edge
        )
    }

    /// Serialized width in bytes, as the generated Java serialization would
    /// ship it — this drives the network-I/O metric.
    ///
    /// # Panics
    ///
    /// Panics for non-value types (`Graph`, properties).
    pub fn byte_width(&self) -> u64 {
        match self {
            Ty::Int | Ty::Float => 4,
            Ty::Long | Ty::Double => 8,
            Ty::Bool => 1,
            Ty::Node => 4,
            Ty::Edge => 4,
            other => panic!("type {other} has no serialized width"),
        }
    }

    /// The inner type of a property.
    ///
    /// # Panics
    ///
    /// Panics if this is not a property type.
    pub fn prop_inner(&self) -> &Ty {
        match self {
            Ty::NodeProp(inner) | Ty::EdgeProp(inner) => inner,
            other => panic!("type {other} is not a property"),
        }
    }

    /// The result type of a binary arithmetic operation between `self` and
    /// `other`, or `None` if the combination is ill-typed. Widening follows
    /// the usual numeric lattice (`Int < Long < Float < Double`).
    pub fn join_numeric(&self, other: &Ty) -> Option<Ty> {
        if !self.is_numeric() || !other.is_numeric() {
            return None;
        }
        fn rank(t: &Ty) -> u8 {
            match t {
                Ty::Int => 0,
                Ty::Long => 1,
                Ty::Float => 2,
                Ty::Double => 3,
                _ => unreachable!(),
            }
        }
        Some(if rank(self) >= rank(other) {
            self.clone()
        } else {
            other.clone()
        })
    }

    /// Whether a value of type `from` can be assigned to a slot of type
    /// `self` (identity or numeric widening; `Int`/`Long` and
    /// `Float`/`Double` are mutually assignable since they share runtime
    /// representations).
    pub fn accepts(&self, from: &Ty) -> bool {
        self == from || (self.is_numeric() && from.is_numeric())
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => f.write_str("Int"),
            Ty::Long => f.write_str("Long"),
            Ty::Float => f.write_str("Float"),
            Ty::Double => f.write_str("Double"),
            Ty::Bool => f.write_str("Bool"),
            Ty::Node => f.write_str("Node"),
            Ty::Edge => f.write_str("Edge"),
            Ty::Graph => f.write_str("Graph"),
            Ty::NodeProp(inner) => write!(f, "Node_Prop<{inner}>"),
            Ty::EdgeProp(inner) => write!(f, "Edge_Prop<{inner}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(Ty::Int.is_numeric() && Ty::Double.is_numeric());
        assert!(!Ty::Bool.is_numeric());
        assert!(Ty::Long.is_integer() && !Ty::Float.is_integer());
        assert!(Ty::Float.is_float() && !Ty::Int.is_float());
        assert!(Ty::Node.is_value());
        assert!(!Ty::Graph.is_value());
    }

    #[test]
    fn byte_widths_match_declared_types() {
        assert_eq!(Ty::Int.byte_width(), 4);
        assert_eq!(Ty::Long.byte_width(), 8);
        assert_eq!(Ty::Float.byte_width(), 4);
        assert_eq!(Ty::Double.byte_width(), 8);
        assert_eq!(Ty::Bool.byte_width(), 1);
        assert_eq!(Ty::Node.byte_width(), 4);
    }

    #[test]
    #[should_panic(expected = "no serialized width")]
    fn graph_has_no_width() {
        Ty::Graph.byte_width();
    }

    #[test]
    fn numeric_join() {
        assert_eq!(Ty::Int.join_numeric(&Ty::Double), Some(Ty::Double));
        assert_eq!(Ty::Long.join_numeric(&Ty::Int), Some(Ty::Long));
        assert_eq!(Ty::Bool.join_numeric(&Ty::Int), None);
    }

    #[test]
    fn accepts_widening() {
        assert!(Ty::Double.accepts(&Ty::Int));
        assert!(Ty::Int.accepts(&Ty::Double)); // shared runtime repr
        assert!(!Ty::Bool.accepts(&Ty::Int));
        assert!(Ty::Node.accepts(&Ty::Node));
    }

    #[test]
    fn display() {
        assert_eq!(
            Ty::NodeProp(Box::new(Ty::Int)).to_string(),
            "Node_Prop<Int>"
        );
        assert_eq!(
            Ty::EdgeProp(Box::new(Ty::Double)).to_string(),
            "Edge_Prop<Double>"
        );
    }

    #[test]
    fn prop_inner_access() {
        assert_eq!(*Ty::NodeProp(Box::new(Ty::Bool)).prop_inner(), Ty::Bool);
    }
}
