//! Abstract syntax tree for the Green-Marl subset.
//!
//! The same AST is used before and after the canonicalizing transformations
//! of §4.1 — those passes rewrite Green-Marl into Green-Marl, exactly as the
//! paper describes. Types are annotated in place by the semantic checker
//! ([`crate::sema`]).

use crate::diag::Span;
use crate::types::Ty;

/// A parsed compilation unit: one or more procedures.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// The procedures, in source order.
    pub procedures: Vec<Procedure>,
}

impl Program {
    /// Finds a procedure by name.
    pub fn procedure(&self, name: &str) -> Option<&Procedure> {
        self.procedures.iter().find(|p| p.name == name)
    }
}

/// A Green-Marl procedure.
#[derive(Clone, Debug, PartialEq)]
pub struct Procedure {
    /// Procedure name.
    pub name: String,
    /// Formal parameters in order.
    pub params: Vec<Param>,
    /// Return type, if any.
    pub ret: Option<Ty>,
    /// Body block.
    pub body: Block,
    /// Source span of the header.
    pub span: Span,
}

/// A formal parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: Ty,
    /// Source span.
    pub span: Span,
}

/// A `{ ... }` statement sequence.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// An empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// A block holding exactly the given statements.
    pub fn of(stmts: Vec<Stmt>) -> Self {
        Block { stmts }
    }
}

/// A statement with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    /// The statement variant.
    pub kind: StmtKind,
    /// Source span ([`Span::synthetic`] for compiler-introduced nodes).
    pub span: Span,
}

impl Stmt {
    /// Wraps a kind with a synthetic span (for compiler-generated code).
    pub fn synth(kind: StmtKind) -> Self {
        Stmt {
            kind,
            span: Span::synthetic(),
        }
    }
}

/// Statement variants.
#[derive(Clone, Debug, PartialEq)]
pub enum StmtKind {
    /// Declaration of a scalar, node/edge variable, or local property.
    VarDecl {
        /// Declared type.
        ty: Ty,
        /// Variable name.
        name: String,
        /// Optional initializer (not allowed for property declarations).
        init: Option<Expr>,
    },
    /// Assignment or reduction-assignment.
    Assign {
        /// Left-hand side.
        target: Target,
        /// Operator.
        op: AssignOp,
        /// Right-hand side.
        value: Expr,
    },
    /// `If (cond) ... [Else ...]`.
    If {
        /// Condition.
        cond: Expr,
        /// Taken when true.
        then_branch: Block,
        /// Taken when false.
        else_branch: Option<Block>,
    },
    /// `While (cond) { ... }` or `Do { ... } While (cond);`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Whether the condition is tested after the body (do-while).
        do_while: bool,
    },
    /// Parallel iteration (`Foreach`) or sequential (`For`).
    Foreach(Box<ForeachStmt>),
    /// BFS-order traversal with optional reverse pass.
    InBfs(Box<BfsStmt>),
    /// `Return expr;`.
    Return(Option<Expr>),
    /// A nested scope block.
    Block(Block),
}

/// A `Foreach`/`For` loop.
#[derive(Clone, Debug, PartialEq)]
pub struct ForeachStmt {
    /// Iterator variable name.
    pub iter: String,
    /// What is iterated.
    pub source: IterSource,
    /// Optional filter condition evaluated per element.
    pub filter: Option<Expr>,
    /// Loop body.
    pub body: Block,
    /// `Foreach` (parallel) vs `For` (sequential).
    pub parallel: bool,
}

/// An `InBFS` traversal with optional `InReverse` pass.
#[derive(Clone, Debug, PartialEq)]
pub struct BfsStmt {
    /// Iterator variable bound to the visited vertex.
    pub iter: String,
    /// The graph variable being traversed.
    pub graph: String,
    /// Root expression (a `Node`).
    pub root: Expr,
    /// Per-vertex body executed in BFS level order.
    pub body: Block,
    /// Optional body executed in reverse BFS order.
    pub reverse_body: Option<Block>,
}

/// Iteration sources.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IterSource {
    /// All vertices of a graph variable: `G.Nodes`.
    Nodes {
        /// The graph variable.
        graph: String,
    },
    /// Out-neighbors of a node variable: `n.Nbrs` / `n.OutNbrs`.
    OutNbrs {
        /// The node variable.
        of: String,
    },
    /// In-neighbors: `n.InNbrs`.
    InNbrs {
        /// The node variable.
        of: String,
    },
    /// BFS parents (only inside `InBFS`): `n.UpNbrs`.
    UpNbrs {
        /// The node variable.
        of: String,
    },
    /// BFS children (only inside `InBFS`/`InReverse`): `n.DownNbrs`.
    DownNbrs {
        /// The node variable.
        of: String,
    },
}

impl IterSource {
    /// The variable the source hangs off (graph or node).
    pub fn base(&self) -> &str {
        match self {
            IterSource::Nodes { graph } => graph,
            IterSource::OutNbrs { of }
            | IterSource::InNbrs { of }
            | IterSource::UpNbrs { of }
            | IterSource::DownNbrs { of } => of,
        }
    }

    /// Whether this iterates a neighborhood (rather than all vertices).
    pub fn is_neighborhood(&self) -> bool {
        !matches!(self, IterSource::Nodes { .. })
    }
}

/// Assignment targets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Target {
    /// A scalar variable.
    Scalar(String),
    /// `obj.prop` — a property of a node/edge variable, or a bulk
    /// assignment when `obj` is the graph variable.
    Prop {
        /// The node/edge/graph variable.
        obj: String,
        /// The property name.
        prop: String,
    },
}

impl Target {
    /// The variable at the base of the target.
    pub fn base(&self) -> &str {
        match self {
            Target::Scalar(name) => name,
            Target::Prop { obj, .. } => obj,
        }
    }
}

/// Assignment operators, including Green-Marl's reduction assignments and
/// the deferred assignment `<=` (whose writes become visible at the end of
/// the enclosing parallel region).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`.
    Assign,
    /// `<=` deferred assignment.
    Defer,
    /// `+=` sum reduction.
    Add,
    /// `-=`.
    Sub,
    /// `*=` product reduction.
    Mul,
    /// `min=` reduction.
    Min,
    /// `max=` reduction.
    Max,
    /// `&&=` reduction.
    And,
    /// `||=` reduction.
    Or,
}

impl AssignOp {
    /// Whether this is a commutative reduction (safe to evaluate in any
    /// order across parallel iterations).
    pub fn is_reduction(&self) -> bool {
        !matches!(self, AssignOp::Assign | AssignOp::Defer)
    }
}

/// An expression with span and (post-sema) type annotation.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// The expression variant.
    pub kind: ExprKind,
    /// Source span.
    pub span: Span,
    /// Filled in by the semantic checker.
    pub ty: Option<Ty>,
}

impl Expr {
    /// Wraps a kind with a synthetic span and no type yet.
    pub fn synth(kind: ExprKind) -> Self {
        Expr {
            kind,
            span: Span::synthetic(),
            ty: None,
        }
    }

    /// Wraps a kind with a synthetic span and a known type.
    pub fn typed(kind: ExprKind, ty: Ty) -> Self {
        Expr {
            kind,
            span: Span::synthetic(),
            ty: Some(ty),
        }
    }

    /// Convenience: a variable reference.
    pub fn var(name: &str) -> Self {
        Expr::synth(ExprKind::Var(name.to_owned()))
    }

    /// Convenience: a property access `obj.prop`.
    pub fn prop(obj: &str, prop: &str) -> Self {
        Expr::synth(ExprKind::Prop {
            obj: obj.to_owned(),
            prop: prop.to_owned(),
        })
    }

    /// Convenience: an integer literal.
    pub fn int(v: i64) -> Self {
        Expr::synth(ExprKind::IntLit(v))
    }

    /// Convenience: a boolean literal.
    pub fn bool(v: bool) -> Self {
        Expr::synth(ExprKind::BoolLit(v))
    }

    /// Convenience: a binary operation.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Self {
        Expr::synth(ExprKind::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    /// The annotated type.
    ///
    /// # Panics
    ///
    /// Panics if the expression has not been through the type checker.
    pub fn ty(&self) -> &Ty {
        self.ty.as_ref().expect("expression was not type-checked")
    }
}

/// Expression variants.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Boolean literal.
    BoolLit(bool),
    /// `INF` (type-directed: integer max or floating infinity).
    Inf {
        /// `-INF` when true.
        negative: bool,
    },
    /// `NIL` node reference.
    Nil,
    /// Variable reference.
    Var(String),
    /// Property access `obj.prop`.
    Prop {
        /// The node/edge variable (or graph for bulk reads in initializers).
        obj: String,
        /// The property name.
        prop: String,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `cond ? a : b`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_val: Box<Expr>,
        /// Value when false.
        else_val: Box<Expr>,
    },
    /// Aggregate over an iteration: `Sum(it: src)(filter?){body}` etc.
    Agg(Box<AggExpr>),
    /// Built-in method call: `G.NumNodes()`, `G.PickRandom()`,
    /// `n.Degree()`, `n.InDegree()`, `t.ToEdge()`.
    Call {
        /// Receiver variable.
        obj: String,
        /// Method name.
        method: String,
        /// Arguments (currently always empty in the supported built-ins).
        args: Vec<Expr>,
    },
}

/// An aggregate expression.
#[derive(Clone, Debug, PartialEq)]
pub struct AggExpr {
    /// Which aggregate.
    pub kind: AggKind,
    /// Iterator variable.
    pub iter: String,
    /// Iteration source.
    pub source: IterSource,
    /// Optional filter.
    pub filter: Option<Expr>,
    /// The aggregated expression (`None` for `Count`; the condition for
    /// `Exist`/`All` may be given as body or filter).
    pub body: Option<Expr>,
}

/// Aggregate kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// Sum of the body over matching elements.
    Sum,
    /// Product of the body.
    Product,
    /// Number of matching elements.
    Count,
    /// Maximum of the body.
    Max,
    /// Minimum of the body.
    Min,
    /// Average of the body.
    Avg,
    /// Whether any element matches.
    Exist,
    /// Whether all elements match.
    All,
}

impl AggKind {
    /// Source-syntax name.
    pub fn name(&self) -> &'static str {
        match self {
            AggKind::Sum => "Sum",
            AggKind::Product => "Product",
            AggKind::Count => "Count",
            AggKind::Max => "Max",
            AggKind::Min => "Min",
            AggKind::Avg => "Avg",
            AggKind::Exist => "Exist",
            AggKind::All => "All",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
    /// Absolute value (`|expr|` syntax).
    Abs,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl BinOp {
    /// Whether the operator yields `Bool`.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether the operator is logical (`&&`/`||`).
    pub fn is_logical(&self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_source_base_and_kind() {
        let s = IterSource::Nodes { graph: "G".into() };
        assert_eq!(s.base(), "G");
        assert!(!s.is_neighborhood());
        let n = IterSource::InNbrs { of: "n".into() };
        assert_eq!(n.base(), "n");
        assert!(n.is_neighborhood());
    }

    #[test]
    fn assign_op_reduction_classification() {
        assert!(AssignOp::Add.is_reduction());
        assert!(AssignOp::Min.is_reduction());
        assert!(!AssignOp::Assign.is_reduction());
        assert!(!AssignOp::Defer.is_reduction());
    }

    #[test]
    fn expr_builders() {
        let e = Expr::binary(BinOp::Add, Expr::int(1), Expr::var("x"));
        match e.kind {
            ExprKind::Binary { op: BinOp::Add, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        let p = Expr::prop("n", "age");
        assert!(matches!(p.kind, ExprKind::Prop { .. }));
    }

    #[test]
    #[should_panic(expected = "not type-checked")]
    fn untyped_expr_ty_panics() {
        Expr::int(1).ty();
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
    }

    #[test]
    fn target_base() {
        assert_eq!(Target::Scalar("x".into()).base(), "x");
        assert_eq!(
            Target::Prop {
                obj: "n".into(),
                prop: "p".into()
            }
            .base(),
            "n"
        );
    }
}
