//! Tokenizer for the Green-Marl subset.

use crate::diag::{Diag, Span};
use std::fmt;

/// Token kinds. Keywords are case-sensitive, matching the Green-Marl papers
/// (`Procedure`, `Foreach`, `InBFS`, ...).
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier (also carries would-be keywords like `min` used as names).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),

    // Keywords.
    Procedure,
    If,
    Else,
    While,
    Do,
    Foreach,
    For,
    InBfs,
    InReverse,
    From,
    Return,
    True,
    False,
    Inf,
    Nil,

    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Dot,
    Question,
    At,
    Pipe,

    // Operators.
    Assign,     // =
    PlusAssign, // +=
    MinusAssign,
    StarAssign,
    AndAssign, // &&=
    OrAssign,  // ||=
    PlusPlus,  // ++
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le, // also the deferred-assignment operator, disambiguated by the parser
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,

    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s: &str = match self {
            Tok::Ident(name) => return write!(f, "identifier `{name}`"),
            Tok::Int(v) => return write!(f, "integer `{v}`"),
            Tok::Float(v) => return write!(f, "float `{v}`"),
            Tok::Procedure => "Procedure",
            Tok::If => "If",
            Tok::Else => "Else",
            Tok::While => "While",
            Tok::Do => "Do",
            Tok::Foreach => "Foreach",
            Tok::For => "For",
            Tok::InBfs => "InBFS",
            Tok::InReverse => "InReverse",
            Tok::From => "From",
            Tok::Return => "Return",
            Tok::True => "True",
            Tok::False => "False",
            Tok::Inf => "INF",
            Tok::Nil => "NIL",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::Comma => ",",
            Tok::Semi => ";",
            Tok::Colon => ":",
            Tok::Dot => ".",
            Tok::Question => "?",
            Tok::At => "@",
            Tok::Pipe => "|",
            Tok::Assign => "=",
            Tok::PlusAssign => "+=",
            Tok::MinusAssign => "-=",
            Tok::StarAssign => "*=",
            Tok::AndAssign => "&&=",
            Tok::OrAssign => "||=",
            Tok::PlusPlus => "++",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::EqEq => "==",
            Tok::NotEq => "!=",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::AndAnd => "&&",
            Tok::OrOr => "||",
            Tok::Not => "!",
            Tok::Eof => "end of input",
        };
        f.write_str(s)
    }
}

/// A token with its source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Location in the source text.
    pub span: Span,
}

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns a [`Diag`] at the first unrecognized character or malformed
/// numeric literal / unterminated block comment.
pub fn lex(src: &str) -> Result<Vec<Token>, Diag> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    macro_rules! push {
        ($tok:expr, $start:expr, $end:expr) => {
            tokens.push(Token {
                tok: $tok,
                span: Span::new($start as u32, $end as u32),
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(Diag::new(
                            Span::new(start as u32, src.len() as u32),
                            "unterminated block comment",
                        ));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &src[start..i];
                let span = Span::new(start as u32, i as u32);
                if is_float {
                    let v: f64 = text.parse().map_err(|_| {
                        Diag::new(span, format!("malformed float literal {text:?}"))
                    })?;
                    push!(Tok::Float(v), start, i);
                } else {
                    let v: i64 = text.parse().map_err(|_| {
                        Diag::new(span, format!("integer literal {text:?} out of range"))
                    })?;
                    push!(Tok::Int(v), start, i);
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "Procedure" => Tok::Procedure,
                    "If" => Tok::If,
                    "Else" => Tok::Else,
                    "While" => Tok::While,
                    "Do" => Tok::Do,
                    "Foreach" => Tok::Foreach,
                    "For" => Tok::For,
                    "InBFS" => Tok::InBfs,
                    "InReverse" => Tok::InReverse,
                    "From" => Tok::From,
                    "Return" => Tok::Return,
                    "True" => Tok::True,
                    "False" => Tok::False,
                    "INF" => Tok::Inf,
                    "NIL" => Tok::Nil,
                    _ => Tok::Ident(word.to_owned()),
                };
                push!(tok, start, i);
            }
            _ => {
                // Multi-char operators first, longest match.
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let three = if i + 2 < bytes.len() {
                    &src[i..i + 3]
                } else {
                    ""
                };
                let (tok, len) = match three {
                    "&&=" => (Tok::AndAssign, 3),
                    "||=" => (Tok::OrAssign, 3),
                    _ => match two {
                        "+=" => (Tok::PlusAssign, 2),
                        "-=" => (Tok::MinusAssign, 2),
                        "*=" => (Tok::StarAssign, 2),
                        "++" => (Tok::PlusPlus, 2),
                        "==" => (Tok::EqEq, 2),
                        "!=" => (Tok::NotEq, 2),
                        "<=" => (Tok::Le, 2),
                        ">=" => (Tok::Ge, 2),
                        "&&" => (Tok::AndAnd, 2),
                        "||" => (Tok::OrOr, 2),
                        _ => match c {
                            b'(' => (Tok::LParen, 1),
                            b')' => (Tok::RParen, 1),
                            b'{' => (Tok::LBrace, 1),
                            b'}' => (Tok::RBrace, 1),
                            b'[' => (Tok::LBracket, 1),
                            b']' => (Tok::RBracket, 1),
                            b',' => (Tok::Comma, 1),
                            b';' => (Tok::Semi, 1),
                            b':' => (Tok::Colon, 1),
                            b'.' => (Tok::Dot, 1),
                            b'?' => (Tok::Question, 1),
                            b'@' => (Tok::At, 1),
                            b'|' => (Tok::Pipe, 1),
                            b'=' => (Tok::Assign, 1),
                            b'+' => (Tok::Plus, 1),
                            b'-' => (Tok::Minus, 1),
                            b'*' => (Tok::Star, 1),
                            b'/' => (Tok::Slash, 1),
                            b'%' => (Tok::Percent, 1),
                            b'<' => (Tok::Lt, 1),
                            b'>' => (Tok::Gt, 1),
                            b'!' => (Tok::Not, 1),
                            other => {
                                return Err(Diag::new(
                                    Span::new(i as u32, i as u32 + 1),
                                    format!("unrecognized character {:?}", other as char),
                                ))
                            }
                        },
                    },
                };
                push!(tok, i, i + len);
                i += len;
            }
        }
    }
    push!(Tok::Eof, i, i);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("Procedure foo InBFS InReverse From"),
            vec![
                Tok::Procedure,
                Tok::Ident("foo".into()),
                Tok::InBfs,
                Tok::InReverse,
                Tok::From,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 3.5 1e3 7.25e-2"),
            vec![
                Tok::Int(42),
                Tok::Float(3.5),
                Tok::Float(1000.0),
                Tok::Float(0.0725),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn integer_followed_by_dot_method() {
        // `G.Nodes` after an int must not absorb the dot: `0..` case.
        assert_eq!(
            kinds("1.x"),
            vec![Tok::Int(1), Tok::Dot, Tok::Ident("x".into()), Tok::Eof]
        );
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            kinds("a+=1; b&&=c; d<=e; f<g; h++;"),
            vec![
                Tok::Ident("a".into()),
                Tok::PlusAssign,
                Tok::Int(1),
                Tok::Semi,
                Tok::Ident("b".into()),
                Tok::AndAssign,
                Tok::Ident("c".into()),
                Tok::Semi,
                Tok::Ident("d".into()),
                Tok::Le,
                Tok::Ident("e".into()),
                Tok::Semi,
                Tok::Ident("f".into()),
                Tok::Lt,
                Tok::Ident("g".into()),
                Tok::Semi,
                Tok::Ident("h".into()),
                Tok::PlusPlus,
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n/* block\n still */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn unknown_character_errors() {
        let err = lex("a $ b").unwrap_err();
        assert!(err.message.contains("unrecognized"));
        assert_eq!(err.span.start, 2);
    }

    #[test]
    fn spans_are_correct() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }

    #[test]
    fn inf_and_nil() {
        assert_eq!(kinds("INF NIL"), vec![Tok::Inf, Tok::Nil, Tok::Eof]);
    }

    #[test]
    fn min_max_are_plain_identifiers() {
        // `min=` / `max=` reduction assignments are an ident + `=` pair;
        // the parser recombines them.
        assert_eq!(
            kinds("x min= y"),
            vec![
                Tok::Ident("x".into()),
                Tok::Ident("min".into()),
                Tok::Assign,
                Tok::Ident("y".into()),
                Tok::Eof
            ]
        );
    }
}
