//! The Green-Marl → Pregel compiler: the primary contribution of
//! *"Simplifying Scalable Graph Processing with a Domain-Specific Language"*
//! (CGO 2014).
//!
//! The pipeline mirrors Fig. 1 of the paper:
//!
//! 1. **Frontend** — [`parser`] and [`sema`] turn Green-Marl source into a
//!    typed AST ([`ast`]).
//! 2. **Canonicalizing transformations** (§4.1) — [`transform`] rewrites
//!    non-Pregel-canonical programs (message pulling, nested-loop scalars,
//!    sequential random access, BFS traversals) into Pregel-canonical
//!    Green-Marl.
//! 3. **Canonical-form check** (§3.2) — [`canonical`].
//! 4. **Translation** (§3.1) — [`translate`] builds a [`pir::PregelProgram`]
//!    state machine: master/vertex states, inferred message payloads and
//!    tags, global broadcasts/reductions.
//! 5. **Optimization** (§4.2) — [`optimize`] merges consecutive states and
//!    applies intra-loop state merging. In debug/test builds, [`verify`]
//!    re-checks PIR well-formedness after translation and after every
//!    optimization pass (see [`CompileOptions::verify`]).
//! 6. **Backends** — [`javagen`] emits GPS-style Java source;
//!    the `gm-interp` crate executes the state machine directly.
//!
//! A shared-memory [`seqinterp`] gives Green-Marl its reference semantics
//! and serves as the differential-testing oracle.

pub mod ast;
pub mod astutil;
pub mod canonical;
pub mod compiler;
pub mod diag;
pub mod javagen;
pub mod lexer;
pub mod normalize;
pub mod optimize;
pub mod parser;
pub mod pir;
pub mod pretty;
pub mod pullability;
pub mod report;
pub mod rustgen;
pub mod sema;
pub mod seqinterp;
pub mod transform;
pub mod translate;
pub mod types;
pub mod value;
pub mod verify;

pub use compiler::{compile, compile_with, CompileOptions, Compiled};
pub use diag::{Diag, Diagnostics, Span};
pub use pullability::Pullability;
pub use report::{PassTiming, TransformReport};
pub use types::Ty;
pub use value::Value;
