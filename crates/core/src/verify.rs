//! PIR well-formedness verification.
//!
//! The paper's headline claim is that compiler-generated Pregel programs
//! are *exactly* equivalent to hand-written ones; a silent miscompile in
//! [`crate::translate`] or [`crate::optimize`] would break that at the
//! core. This module checks the structural invariants every well-formed
//! [`PregelProgram`] must satisfy and reports violations as ordinary
//! [`Diagnostics`] instead of panics or silently-wrong execution:
//!
//! * **Control flow** — every transition target is in range (no dangling
//!   branch after `compact`), and every state is reachable from the entry
//!   state (strict mode; mid-optimization states awaiting `compact` may
//!   relax this).
//! * **Messages** — every send uses a declared tag with the right payload
//!   arity and field types; every sent tag has a receive handler in at
//!   least one next vertex state (speculative sends dropped on a loop-exit
//!   leg are allowed — that is the documented intra-loop-merge semantics —
//!   but a tag *no* successor consumes is a miscompile); every receive
//!   handler has a sender in some previous vertex state (no orphan tags);
//!   payload field references resolve against the tag's layout and never
//!   leak outside receive handlers.
//! * **Halt discipline** — a state whose kernel sends messages must not
//!   unconditionally halt: those messages could never be delivered.
//! * **Aggregators** — an aggregate fold reads the value vertices reduced
//!   in a *prior* superstep, so `FoldAgg` may only appear in a state's
//!   `post` block and only for a global that state's kernel actually
//!   reduces; within one kernel a global is reduced with a single
//!   operator.
//! * **Globals** — master code, transition conditions, and broadcast-read
//!   lists reference only declared globals.
//!
//! [`verify`] runs after translation and after every optimization pass in
//! debug/test builds (see [`crate::CompileOptions::verify`]) and is exposed
//! to users as `gmc verify <file>`.

use crate::ast::{Expr, ExprKind};
use crate::diag::{Diagnostics, Span};
use crate::pir::*;
use std::collections::HashSet;

/// Verification strictness knobs.
#[derive(Clone, Copy, Debug)]
pub struct VerifyOptions {
    /// Permit unreachable states (used between optimization passes, where
    /// a merged-away state lingers until `compact` runs).
    pub allow_unreachable: bool,
}

impl VerifyOptions {
    /// Full strictness: what a finished compile must satisfy.
    pub fn strict() -> Self {
        VerifyOptions {
            allow_unreachable: false,
        }
    }

    /// Mid-pipeline strictness: unreachable states are tolerated.
    pub fn mid_optimization() -> Self {
        VerifyOptions {
            allow_unreachable: true,
        }
    }
}

/// Checks all well-formedness invariants, strictly.
///
/// # Errors
///
/// One diagnostic per violated invariant; messages carry a stable
/// `pir-verify: <check-name>:` prefix so callers (and tests) can match on
/// the specific failure.
pub fn verify(program: &PregelProgram) -> Result<(), Diagnostics> {
    verify_with(program, &VerifyOptions::strict())
}

/// [`verify`] with explicit strictness options.
///
/// # Errors
///
/// One diagnostic per violated invariant.
pub fn verify_with(program: &PregelProgram, opts: &VerifyOptions) -> Result<(), Diagnostics> {
    let mut v = Verifier {
        program,
        diags: Diagnostics::new(),
    };
    v.check_shape();
    if v.diags.has_errors() {
        // Transition targets or tag tables are broken; the graph walks
        // below would index out of bounds.
        return Err(v.diags);
    }
    if !opts.allow_unreachable {
        v.check_reachability();
    }
    v.check_messages();
    v.check_halt_discipline();
    v.check_aggregators();
    v.check_globals();
    if v.diags.has_errors() {
        Err(v.diags)
    } else {
        Ok(())
    }
}

/// [`verify_with`] for use inside the compilation pipeline: on failure a
/// leading diagnostic names the pass that produced the ill-formed program,
/// so the report reads as the internal compiler error it is.
///
/// # Errors
///
/// The stage-naming diagnostic followed by the individual violations.
pub fn verify_stage(
    program: &PregelProgram,
    stage: &str,
    opts: &VerifyOptions,
) -> Result<(), Diagnostics> {
    verify_with(program, opts).map_err(|inner| {
        let mut out = Diagnostics::new();
        out.error(
            Span::synthetic(),
            format!(
                "internal compiler error: PIR verification failed after `{stage}` \
                 (please report this; `gmc compile --no-verify` skips the check)"
            ),
        );
        out.errors.extend(inner.errors);
        out
    })
}

/// Renders the one-line summary `gmc verify` prints on success.
pub fn summary(program: &PregelProgram) -> String {
    let branches = program
        .states
        .iter()
        .filter(|s| matches!(s.transition, Transition::Branch { .. }))
        .count();
    format!(
        "verified: {} states ({} vertex kernels, {} branches), {} message types, {} globals{}",
        program.states.len(),
        program.num_vertex_kernels(),
        branches,
        program.num_message_types(),
        program.globals.len(),
        if program.uses_in_nbrs {
            ", in-neighbor preamble"
        } else {
            ""
        }
    )
}

/// One send site: the tag plus its payload expressions (`None` for the
/// payload-free preamble send).
struct SendSite<'a> {
    tag: u8,
    payload: Option<&'a [Expr]>,
}

struct Verifier<'a> {
    program: &'a PregelProgram,
    diags: Diagnostics,
}

impl Verifier<'_> {
    fn error(&mut self, check: &str, msg: String) {
        self.diags
            .error(Span::synthetic(), format!("pir-verify: {check}: {msg}"));
    }

    // ---- shape: transition targets and tag tables ----

    fn check_shape(&mut self) {
        let n = self.program.states.len();
        if n == 0 {
            self.error("empty-program", "program has no states".to_owned());
            return;
        }
        for (id, s) in self.program.states.iter().enumerate() {
            let mut target = |t: StateId, slot: &str| {
                if t >= n {
                    self.diags.error(
                        Span::synthetic(),
                        format!(
                            "pir-verify: dangling-branch-target: state {id} {slot} targets \
                             state {t} but the program has {n} states"
                        ),
                    );
                }
            };
            match &s.transition {
                Transition::Goto(t) => target(*t, "goto"),
                Transition::Branch {
                    then_to, else_to, ..
                } => {
                    target(*then_to, "then-branch");
                    target(*else_to, "else-branch");
                }
                Transition::Halt => {}
            }
        }
        let tags = self.program.messages.len();
        for (i, m) in self.program.messages.iter().enumerate() {
            if m.tag as usize != i {
                self.error(
                    "tag-table-corrupt",
                    format!("message layout at index {i} declares tag {}", m.tag),
                );
            }
        }
        if self.program.combinable.len() != tags {
            self.error(
                "combinable-table-mismatch",
                format!(
                    "combinable table has {} entries for {} message types",
                    self.program.combinable.len(),
                    tags
                ),
            );
        }
    }

    // ---- reachability ----

    fn check_reachability(&mut self) {
        let n = self.program.states.len();
        let mut reachable = vec![false; n];
        let mut stack = vec![0usize];
        while let Some(s) = stack.pop() {
            if reachable[s] {
                continue;
            }
            reachable[s] = true;
            match &self.program.states[s].transition {
                Transition::Goto(t) => stack.push(*t),
                Transition::Branch {
                    then_to, else_to, ..
                } => {
                    stack.push(*then_to);
                    stack.push(*else_to);
                }
                Transition::Halt => {}
            }
        }
        for (id, r) in reachable.iter().enumerate() {
            if !r {
                self.error(
                    "unreachable-state",
                    format!("state {id} is not reachable from the entry state"),
                );
            }
        }
    }

    // ---- messages ----

    /// The vertex states that execute the superstep after `from`: follow
    /// transitions through master-only junction states (the master runs
    /// them inside one `master.compute` call) until a vertex state or a
    /// halt is reached.
    fn next_vertex_states(&self, from: StateId) -> Vec<StateId> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut stack: Vec<StateId> = Vec::new();
        let push_targets = |t: &Transition, stack: &mut Vec<StateId>| match t {
            Transition::Goto(t) => stack.push(*t),
            Transition::Branch {
                then_to, else_to, ..
            } => {
                stack.push(*then_to);
                stack.push(*else_to);
            }
            Transition::Halt => {}
        };
        push_targets(&self.program.states[from].transition, &mut stack);
        while let Some(s) = stack.pop() {
            if !seen.insert(s) {
                continue;
            }
            if self.program.states[s].vertex.is_some() {
                out.push(s);
            } else {
                push_targets(&self.program.states[s].transition, &mut stack);
            }
        }
        out.sort_unstable();
        out
    }

    fn sends_of(&self, state: StateId) -> Vec<SendSite<'_>> {
        let mut out = Vec::new();
        if let Some(k) = &self.program.states[state].vertex {
            collect_sends(&k.body, &mut out);
        }
        out
    }

    fn check_messages(&mut self) {
        let num_tags = self.program.messages.len();
        let n = self.program.states.len();

        // Per-state send checks: tags in range, payload arity/types, and
        // consumption by some next vertex state.
        for id in 0..n {
            let nexts = self.next_vertex_states(id);
            // Collect errors first; `self` is immutably borrowed by the
            // send sites.
            let mut errors: Vec<(String, String)> = Vec::new();
            for site in self.sends_of(id) {
                let tag = site.tag;
                let preamble = tag == IN_NBRS_TAG && site.payload.is_none();
                if preamble {
                    if !self.program.uses_in_nbrs {
                        errors.push((
                            "unknown-message-tag".to_owned(),
                            format!(
                                "state {id} sends the in-neighbor preamble tag but the \
                                 program does not use the preamble"
                            ),
                        ));
                        continue;
                    }
                } else if tag as usize >= num_tags {
                    errors.push((
                        "unknown-message-tag".to_owned(),
                        format!(
                            "state {id} sends tag {tag} but only {num_tags} message \
                             types are declared"
                        ),
                    ));
                    continue;
                }
                if let Some(payload) = site.payload {
                    let layout = &self.program.messages[tag as usize];
                    if payload.len() != layout.fields.len() {
                        errors.push((
                            "payload-arity-mismatch".to_owned(),
                            format!(
                                "state {id} sends tag {tag} with {} payload values but \
                                 the layout declares {} fields",
                                payload.len(),
                                layout.fields.len()
                            ),
                        ));
                    } else {
                        for (i, (expr, (fname, fty))) in
                            payload.iter().zip(&layout.fields).enumerate()
                        {
                            if let Some(ety) = &expr.ty {
                                if ety != fty {
                                    errors.push((
                                        "payload-type-mismatch".to_owned(),
                                        format!(
                                            "state {id} sends tag {tag} field {i} \
                                             (`{fname}`: {fty:?}) with a {ety:?}-typed \
                                             expression"
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                }
                // The message must be consumable: at least one next vertex
                // state handles the tag. (Speculative sends dropped on the
                // other leg of a loop-exit branch are fine.)
                let consumed = nexts.iter().any(|&s| {
                    self.program.states[s]
                        .vertex
                        .as_ref()
                        .is_some_and(|k| k.recvs.iter().any(|r| r.tag == tag))
                });
                if !consumed {
                    errors.push((
                        "unconsumed-message".to_owned(),
                        format!(
                            "state {id} sends tag {tag} but no successor vertex state \
                             has a receive handler for it"
                        ),
                    ));
                }
            }
            for (check, msg) in errors {
                self.error(&check, msg);
            }
        }

        // Per-handler checks: tags in range, a sender exists in some
        // previous vertex state, payload references resolve.
        let mut preds: Vec<Vec<StateId>> = vec![Vec::new(); n];
        for p in 0..n {
            if self.program.states[p].vertex.is_none() {
                continue;
            }
            for s in self.next_vertex_states(p) {
                preds[s].push(p);
            }
        }
        for (id, state_preds) in preds.iter().enumerate() {
            let Some(k) = &self.program.states[id].vertex else {
                continue;
            };
            let mut errors: Vec<(String, String)> = Vec::new();
            let mut seen_tags: HashSet<u8> = HashSet::new();
            for r in &k.recvs {
                let tag = r.tag;
                if !seen_tags.insert(tag) {
                    errors.push((
                        "duplicate-receive-handler".to_owned(),
                        format!("state {id} has two receive handlers for tag {tag}"),
                    ));
                }
                let preamble = tag == IN_NBRS_TAG && self.program.uses_in_nbrs;
                if !preamble && tag as usize >= num_tags {
                    errors.push((
                        "unknown-message-tag".to_owned(),
                        format!(
                            "state {id} handles tag {tag} but only {num_tags} message \
                             types are declared"
                        ),
                    ));
                    continue;
                }
                let sent_by_pred = state_preds
                    .iter()
                    .any(|&p| self.sends_of(p).iter().any(|site| site.tag == tag));
                if !sent_by_pred {
                    errors.push((
                        "orphan-message-tag".to_owned(),
                        format!(
                            "state {id} handles tag {tag} but no predecessor vertex \
                             state sends it"
                        ),
                    ));
                }
                // Payload slot agreement: every `_pl_<name>` reference in
                // the handler resolves against this tag's layout.
                if !preamble {
                    let layout = &self.program.messages[tag as usize];
                    let mut check_expr = |e: &Expr, where_: &str| {
                        for field in payload_refs(e) {
                            if !layout.fields.iter().any(|(n, _)| *n == field) {
                                errors.push((
                                    "unknown-payload-field".to_owned(),
                                    format!(
                                        "state {id} tag {tag} {where_} references payload \
                                         field `{field}` absent from the layout"
                                    ),
                                ));
                            }
                        }
                    };
                    if let Some(g) = &r.guard {
                        check_expr(g, "guard");
                    }
                    for step in &r.steps {
                        if let Some(g) = &step.guard {
                            check_expr(g, "step guard");
                        }
                        match &step.action {
                            RecvAction::WriteOwn { value, .. }
                            | RecvAction::ReduceGlobal { value, .. } => check_expr(value, "action"),
                            RecvAction::StoreInNbr => {}
                        }
                    }
                }
            }
            // Payload references outside receive handlers are meaningless:
            // the kernel body runs without a message in scope.
            let mut body_refs: Vec<String> = Vec::new();
            walk_vinstr_exprs(&k.body, &mut |e| body_refs.extend(payload_refs(e)));
            if let Some(f) = &k.filter {
                body_refs.extend(payload_refs(f));
            }
            for field in body_refs {
                errors.push((
                    "payload-ref-outside-receive".to_owned(),
                    format!(
                        "state {id} kernel body references payload field `{field}` \
                         outside a receive handler"
                    ),
                ));
            }
            for (check, msg) in errors {
                self.error(&check, msg);
            }
        }
    }

    // ---- halt discipline ----

    fn check_halt_discipline(&mut self) {
        for (id, s) in self.program.states.iter().enumerate() {
            if !matches!(s.transition, Transition::Halt) {
                continue;
            }
            let sends = s
                .vertex
                .as_ref()
                .map(|k| {
                    let mut out = Vec::new();
                    collect_sends(&k.body, &mut out);
                    out
                })
                .unwrap_or_default();
            if let Some(site) = sends.first() {
                let tag = site.tag;
                self.error(
                    "send-after-halt",
                    format!(
                        "state {id} sends tag {tag} but unconditionally halts; \
                         the messages can never be delivered"
                    ),
                );
            }
        }
    }

    // ---- aggregators ----

    /// Globals reduced by the kernel (body or receive steps), with the op.
    fn kernel_reductions(kernel: &VertexKernel) -> Vec<(String, crate::ast::AssignOp)> {
        let mut out = Vec::new();
        fn scan(instrs: &[VInstr], out: &mut Vec<(String, crate::ast::AssignOp)>) {
            for i in instrs {
                match i {
                    VInstr::ReduceGlobal { name, op, .. } => out.push((name.clone(), *op)),
                    VInstr::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        scan(then_branch, out);
                        scan(else_branch, out);
                    }
                    _ => {}
                }
            }
        }
        scan(&kernel.body, &mut out);
        for r in &kernel.recvs {
            for s in &r.steps {
                if let RecvAction::ReduceGlobal { name, op, .. } = &s.action {
                    out.push((name.clone(), *op));
                }
            }
        }
        out
    }

    fn check_aggregators(&mut self) {
        for (id, s) in self.program.states.iter().enumerate() {
            // A fold in the arrival-master block would read the aggregate
            // *before* this state's vertex phase has written it.
            for m in &s.master {
                if let Some(key) = find_fold(m) {
                    self.error(
                        "premature-aggregator-read",
                        format!(
                            "state {id} folds aggregate `{key}` in its master block, \
                             before any vertex has reduced it this superstep"
                        ),
                    );
                }
            }
            let reductions: Vec<(String, crate::ast::AssignOp)> = s
                .vertex
                .as_ref()
                .map(Self::kernel_reductions)
                .unwrap_or_default();
            // One operator per aggregate within a kernel: the aggregation
            // map merges with a single op.
            let mut seen: Vec<(String, crate::ast::AssignOp)> = Vec::new();
            for (name, op) in &reductions {
                match seen.iter().find(|(n, _)| n == name) {
                    Some((_, prev)) if prev != op => self.error(
                        "conflicting-reduction",
                        format!(
                            "state {id} reduces global `{name}` with both {prev:?} \
                             and {op:?}"
                        ),
                    ),
                    Some(_) => {}
                    None => seen.push((name.clone(), *op)),
                }
            }
            // A post-block fold reads the aggregate the kernel wrote; a
            // fold for a key no vertex can have written reads stale (or
            // absent) data.
            for m in &s.post {
                if let Some(key) = find_fold(m) {
                    if !reductions.iter().any(|(n, _)| n == key) {
                        self.error(
                            "premature-aggregator-read",
                            format!(
                                "state {id} folds aggregate `{key}` in its post block \
                                 but its kernel never reduces `{key}`"
                            ),
                        );
                    }
                }
            }
        }
    }

    // ---- globals ----

    fn check_globals(&mut self) {
        let declared: HashSet<&str> = self
            .program
            .globals
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        let graph = self.program.graph_param.as_str();
        for (id, s) in self.program.states.iter().enumerate() {
            let mut exprs: Vec<(&Expr, &'static str)> = Vec::new();
            let mut targets: Vec<(&str, &'static str)> = Vec::new();
            for m in s.master.iter().chain(s.post.iter()) {
                minstr_refs(m, &mut exprs, &mut targets);
            }
            if let Transition::Branch { cond, .. } = &s.transition {
                exprs.push((cond, "transition condition"));
            }
            for (name, where_) in targets {
                if !declared.contains(name) {
                    self.error(
                        "unknown-global",
                        format!(
                            "state {id} {where_} targets `{name}` which is not a \
                             declared global"
                        ),
                    );
                }
            }
            for (e, where_) in exprs {
                let mut vars = Vec::new();
                master_vars(e, &mut vars);
                for v in vars {
                    if !declared.contains(v.as_str()) && v != graph {
                        self.error(
                            "unknown-global",
                            format!(
                                "state {id} {where_} references `{v}` which is not a \
                                 declared global"
                            ),
                        );
                    }
                }
            }
            if let Some(k) = &self.program.states[id].vertex {
                for g in &k.reads_globals {
                    if !declared.contains(g.as_str()) {
                        self.error(
                            "unknown-global",
                            format!(
                                "state {id} broadcast-read list names `{g}` which is \
                                 not a declared global"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Collects every expression (with a description of where it sits) and
/// every written-global target inside a master instruction.
fn minstr_refs<'m>(
    m: &'m MInstr,
    exprs: &mut Vec<(&'m Expr, &'static str)>,
    targets: &mut Vec<(&'m str, &'static str)>,
) {
    match m {
        MInstr::Assign { name, value, .. } => {
            targets.push((name, "master assignment"));
            exprs.push((value, "master expression"));
        }
        MInstr::FoldAgg { name, .. } => targets.push((name, "aggregate fold")),
        MInstr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            exprs.push((cond, "master condition"));
            for i in then_branch.iter().chain(else_branch.iter()) {
                minstr_refs(i, exprs, targets);
            }
        }
        MInstr::SetReturn(Some(e)) => exprs.push((e, "return expression")),
        MInstr::SetReturn(None) => {}
    }
}

/// The `agg_key` of the first aggregate fold inside the instruction
/// (searching through master `If` branches), if any.
fn find_fold(m: &MInstr) -> Option<&str> {
    match m {
        MInstr::FoldAgg { agg_key, .. } => Some(agg_key),
        MInstr::If {
            then_branch,
            else_branch,
            ..
        } => then_branch
            .iter()
            .chain(else_branch.iter())
            .find_map(find_fold),
        _ => None,
    }
}

/// Variable reads in a master-context expression.
fn master_vars(e: &Expr, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::Var(n) => out.push(n.clone()),
        ExprKind::Unary { expr, .. } => master_vars(expr, out),
        ExprKind::Binary { lhs, rhs, .. } => {
            master_vars(lhs, out);
            master_vars(rhs, out);
        }
        ExprKind::Ternary {
            cond,
            then_val,
            else_val,
        } => {
            master_vars(cond, out);
            master_vars(then_val, out);
            master_vars(else_val, out);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                master_vars(a, out);
            }
        }
        _ => {}
    }
}

/// Payload field names (`_pl_<name>` → `name`) referenced by an expression.
fn payload_refs(e: &Expr) -> Vec<String> {
    fn rec(e: &Expr, out: &mut Vec<String>) {
        match &e.kind {
            ExprKind::Var(n) => {
                if let Some(field) = n.strip_prefix(PAYLOAD_PREFIX) {
                    out.push(field.to_owned());
                }
            }
            ExprKind::Unary { expr, .. } => rec(expr, out),
            ExprKind::Binary { lhs, rhs, .. } => {
                rec(lhs, out);
                rec(rhs, out);
            }
            ExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                rec(cond, out);
                rec(then_val, out);
                rec(else_val, out);
            }
            ExprKind::Call { args, .. } => {
                for a in args {
                    rec(a, out);
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    rec(e, &mut out);
    out
}

/// Collects every send site in a kernel body, including nested ones.
fn collect_sends<'a>(instrs: &'a [VInstr], out: &mut Vec<SendSite<'a>>) {
    for i in instrs {
        match i {
            VInstr::SendToNbrs { tag, payload } | VInstr::SendToInNbrs { tag, payload } => {
                out.push(SendSite {
                    tag: *tag,
                    payload: Some(payload),
                });
            }
            VInstr::SendTo { tag, payload, .. } => out.push(SendSite {
                tag: *tag,
                payload: Some(payload),
            }),
            VInstr::SendIdToNbrs => out.push(SendSite {
                tag: IN_NBRS_TAG,
                payload: None,
            }),
            VInstr::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_sends(then_branch, out);
                collect_sends(else_branch, out);
            }
            _ => {}
        }
    }
}

/// Applies `f` to every expression in a kernel body (not receive handlers).
fn walk_vinstr_exprs(instrs: &[VInstr], f: &mut impl FnMut(&Expr)) {
    for i in instrs {
        match i {
            VInstr::Local { value, .. }
            | VInstr::WriteOwn { value, .. }
            | VInstr::ReduceGlobal { value, .. } => f(value),
            VInstr::SendToNbrs { payload, .. } | VInstr::SendToInNbrs { payload, .. } => {
                for p in payload {
                    f(p);
                }
            }
            VInstr::SendTo { dst, payload, .. } => {
                f(dst);
                for p in payload {
                    f(p);
                }
            }
            VInstr::SendIdToNbrs => {}
            VInstr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                f(cond);
                walk_vinstr_exprs(then_branch, f);
                walk_vinstr_exprs(else_branch, f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AssignOp;
    use crate::types::Ty;

    /// A minimal well-formed two-state program: state 0 sends tag 0 to
    /// neighbors, state 1 receives it and reduces into global `s`, folding
    /// the aggregate in its post block.
    fn well_formed() -> PregelProgram {
        let payload_ref = Expr::typed(ExprKind::Var(format!("{PAYLOAD_PREFIX}v")), Ty::Int);
        PregelProgram {
            name: "wf".into(),
            graph_param: "G".into(),
            scalar_params: vec![],
            node_props: vec![("x".into(), Ty::Int)],
            edge_props: vec![],
            globals: vec![("s".into(), Ty::Int)],
            messages: vec![MessageLayout {
                tag: 0,
                fields: vec![("v".into(), Ty::Int)],
            }],
            uses_in_nbrs: false,
            combinable: vec![None],
            ret: None,
            pullable: vec![],
            states: vec![
                State {
                    master: vec![MInstr::Assign {
                        name: "s".into(),
                        op: AssignOp::Assign,
                        value: Expr::typed(ExprKind::IntLit(0), Ty::Int),
                    }],
                    vertex: Some(VertexKernel {
                        recvs: vec![],
                        filter: None,
                        body: vec![VInstr::SendToNbrs {
                            tag: 0,
                            payload: vec![Expr::typed(
                                ExprKind::Prop {
                                    obj: SELF.into(),
                                    prop: "x".into(),
                                },
                                Ty::Int,
                            )],
                        }],
                        reads_globals: vec![],
                    }),
                    post: vec![],
                    transition: Transition::Goto(1),
                },
                State {
                    master: vec![],
                    vertex: Some(VertexKernel {
                        recvs: vec![RecvHandler {
                            tag: 0,
                            guard: None,
                            steps: vec![RecvStep {
                                guard: None,
                                action: RecvAction::ReduceGlobal {
                                    name: "s".into(),
                                    op: AssignOp::Add,
                                    value: payload_ref,
                                },
                            }],
                        }],
                        filter: None,
                        body: vec![],
                        reads_globals: vec![],
                    }),
                    post: vec![MInstr::FoldAgg {
                        name: "s".into(),
                        op: AssignOp::Add,
                        agg_key: "s".into(),
                    }],
                    transition: Transition::Halt,
                },
            ],
        }
    }

    fn expect_reject(p: &PregelProgram, check: &str) {
        let err = verify(p).expect_err("verifier must reject the mutant");
        assert!(
            err.to_string().contains(&format!("pir-verify: {check}:")),
            "expected `{check}` diagnostic, got:\n{err}"
        );
    }

    #[test]
    fn well_formed_program_passes() {
        verify(&well_formed()).expect("well-formed program verifies");
        assert!(summary(&well_formed()).contains("2 states"));
    }

    // -- the six hand-seeded mutants from the issue's mutation check --

    #[test]
    fn mutant_dangling_branch_target_rejected() {
        let mut p = well_formed();
        p.states[0].transition = Transition::Branch {
            cond: Expr::typed(ExprKind::BoolLit(true), Ty::Bool),
            then_to: 1,
            else_to: 9, // out of range
        };
        expect_reject(&p, "dangling-branch-target");
    }

    #[test]
    fn mutant_orphan_message_tag_rejected() {
        let mut p = well_formed();
        // Remove the send; the handler's tag is now orphaned.
        p.states[0].vertex.as_mut().unwrap().body.clear();
        expect_reject(&p, "orphan-message-tag");
    }

    #[test]
    fn mutant_payload_type_mismatch_rejected() {
        let mut p = well_formed();
        // The layout says Int but the sender ships a Double expression.
        if let VInstr::SendToNbrs { payload, .. } =
            &mut p.states[0].vertex.as_mut().unwrap().body[0]
        {
            payload[0] = Expr::typed(ExprKind::FloatLit(0.5), Ty::Double);
        }
        expect_reject(&p, "payload-type-mismatch");
    }

    #[test]
    fn mutant_unreachable_state_rejected() {
        let mut p = well_formed();
        p.states.push(State {
            master: vec![],
            vertex: None,
            post: vec![],
            transition: Transition::Halt,
        });
        expect_reject(&p, "unreachable-state");
        // The mid-optimization mode tolerates it (compact runs later).
        verify_with(&p, &VerifyOptions::mid_optimization())
            .expect("relaxed mode allows unreachable states");
    }

    #[test]
    fn mutant_send_after_halt_rejected() {
        let mut p = well_formed();
        p.states[0].transition = Transition::Halt;
        expect_reject(&p, "send-after-halt");
    }

    #[test]
    fn mutant_premature_aggregator_read_rejected() {
        // Fold moved from post into the arrival-master block: reads the
        // aggregate before the vertex phase writes it.
        let mut p = well_formed();
        let fold = p.states[1].post.remove(0);
        p.states[1].master.push(fold);
        expect_reject(&p, "premature-aggregator-read");

        // Fold in post for a key the kernel never reduces.
        let mut p = well_formed();
        p.states[0].post.push(MInstr::FoldAgg {
            name: "s".into(),
            op: AssignOp::Add,
            agg_key: "s".into(),
        });
        expect_reject(&p, "premature-aggregator-read");
    }

    // -- further mutants beyond the required six --

    #[test]
    fn mutant_payload_arity_mismatch_rejected() {
        let mut p = well_formed();
        if let VInstr::SendToNbrs { payload, .. } =
            &mut p.states[0].vertex.as_mut().unwrap().body[0]
        {
            payload.clear();
        }
        expect_reject(&p, "payload-arity-mismatch");
    }

    #[test]
    fn mutant_unknown_message_tag_rejected() {
        let mut p = well_formed();
        if let VInstr::SendToNbrs { tag, .. } = &mut p.states[0].vertex.as_mut().unwrap().body[0] {
            *tag = 7;
        }
        expect_reject(&p, "unknown-message-tag");
    }

    #[test]
    fn mutant_unconsumed_message_rejected() {
        let mut p = well_formed();
        // The receiver forgets its handler: the sent tag is never consumed.
        p.states[1].vertex.as_mut().unwrap().recvs.clear();
        p.states[1].post.clear();
        expect_reject(&p, "unconsumed-message");
    }

    #[test]
    fn mutant_unknown_payload_field_rejected() {
        let mut p = well_formed();
        if let RecvAction::ReduceGlobal { value, .. } =
            &mut p.states[1].vertex.as_mut().unwrap().recvs[0].steps[0].action
        {
            *value = Expr::typed(ExprKind::Var(format!("{PAYLOAD_PREFIX}ghost")), Ty::Int);
        }
        expect_reject(&p, "unknown-payload-field");
    }

    #[test]
    fn mutant_payload_ref_outside_receive_rejected() {
        let mut p = well_formed();
        p.states[0]
            .vertex
            .as_mut()
            .unwrap()
            .body
            .push(VInstr::WriteOwn {
                prop: "x".into(),
                op: AssignOp::Assign,
                value: Expr::typed(ExprKind::Var(format!("{PAYLOAD_PREFIX}v")), Ty::Int),
            });
        expect_reject(&p, "payload-ref-outside-receive");
    }

    #[test]
    fn mutant_unknown_global_rejected() {
        let mut p = well_formed();
        p.states[0].master.push(MInstr::Assign {
            name: "ghost".into(),
            op: AssignOp::Assign,
            value: Expr::typed(ExprKind::IntLit(1), Ty::Int),
        });
        expect_reject(&p, "unknown-global");
    }

    #[test]
    fn mutant_conflicting_reduction_rejected() {
        let mut p = well_formed();
        let k = p.states[1].vertex.as_mut().unwrap();
        k.body.push(VInstr::ReduceGlobal {
            name: "s".into(),
            op: AssignOp::Max,
            value: Expr::typed(ExprKind::IntLit(1), Ty::Int),
        });
        expect_reject(&p, "conflicting-reduction");
    }

    #[test]
    fn all_algorithm_sources_verify() {
        // The five paper algorithms plus avg_teen compile to verified PIR
        // under every optimization setting.
        let srcs = [
            include_str!("../../algorithms/gm/avg_teen.gm"),
            include_str!("../../algorithms/gm/pagerank.gm"),
            include_str!("../../algorithms/gm/conductance.gm"),
            include_str!("../../algorithms/gm/sssp.gm"),
            include_str!("../../algorithms/gm/bipartite_matching.gm"),
            include_str!("../../algorithms/gm/bc_approx.gm"),
        ];
        for src in srcs {
            for opts in [
                crate::CompileOptions::default(),
                crate::CompileOptions::unoptimized(),
                crate::CompileOptions::with_combiners(),
            ] {
                let compiled = crate::compile(src, &opts).expect("compiles");
                verify(&compiled.program).unwrap_or_else(|e| {
                    panic!(
                        "verifier rejects compiled algorithm:\n{e}\n{}",
                        compiled.program
                    )
                });
            }
        }
    }
}
