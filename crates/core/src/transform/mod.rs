//! The canonicalizing transformations of §4.1.
//!
//! Each pass rewrites Green-Marl into Green-Marl, moving the program toward
//! the Pregel-canonical form of §3.2:
//!
//! 1. [`bfs::lower_bfs`] — `InBFS`/`InReverse` → level-synchronous `While`
//!    loops over a compiler-introduced `_lev` property.
//! 2. [`agg::desugar_aggregates`] — aggregate expressions (`Sum`, `Count`,
//!    `Exist`, ...) → explicit accumulation loops.
//! 3. [`randacc::lower_random_access`] — random vertex-property writes in
//!    sequential phases → guarded parallel loops.
//! 4. [`dissect::dissect_loops`] — outer-scoped scalars modified in inner
//!    loops → temporary vertex properties; outer loops split so that pull
//!    loops stand alone.
//! 5. [`flip::flip_edges`] — message-pulling nested loops → message-pushing
//!    form by swapping iterators and flipping edge direction.
//!
//! The driver [`canonicalize`] runs them in order, re-running semantic
//! analysis between passes so every new node carries a type.

pub mod agg;
pub mod bfs;
pub mod dissect;
pub mod flip;

pub mod randacc;

use crate::ast::Procedure;
use crate::astutil::count_nodes;
use crate::diag::Diagnostics;
use crate::report::{Step, TransformReport};
use crate::sema::{self, ProcInfo};
use std::time::Instant;

/// Runs the full §4.1 pipeline over `proc`, recording applied steps and
/// per-pass wall-clock + AST node-count deltas.
///
/// On success the procedure is in Pregel-canonical form (up to the checks
/// in [`crate::canonical`]) and fully re-typed; the returned [`ProcInfo`]
/// reflects the final symbol table.
///
/// # Errors
///
/// Returns semantic diagnostics if a pass produces an ill-typed program —
/// which would be a compiler bug — or if the input was ill-typed.
pub fn canonicalize(
    proc: &mut Procedure,
    report: &mut TransformReport,
) -> Result<ProcInfo, Diagnostics> {
    let mut nodes = count_nodes(proc);

    let started = Instant::now();
    let mut info = sema::check_procedure(proc)?;
    report.record_timing("canonicalize/sema", started.elapsed(), nodes, nodes);

    // Each pass's timing includes the re-typing it forced.
    let started = Instant::now();
    if bfs::lower_bfs(proc, &info) {
        report.record(Step::BfsTraversal);
        info = sema::check_procedure(proc)?;
    }
    nodes = finish_pass(report, "canonicalize/bfs", started, nodes, proc);

    let started = Instant::now();
    if agg::desugar_aggregates(proc, &info) {
        // Aggregate desugaring is bookkeeping for other steps; the paper
        // folds it under loop dissection when it creates nested loops.
        info = sema::check_procedure(proc)?;
    }
    nodes = finish_pass(report, "canonicalize/agg", started, nodes, proc);

    let started = Instant::now();
    if randacc::lower_random_access(proc, &info) {
        report.record(Step::RandomAccessSeq);
        info = sema::check_procedure(proc)?;
    }
    nodes = finish_pass(report, "canonicalize/randacc", started, nodes, proc);

    let started = Instant::now();
    if dissect::dissect_loops(proc, &info) {
        report.record(Step::DissectingLoops);
        info = sema::check_procedure(proc)?;
    }
    nodes = finish_pass(report, "canonicalize/dissect", started, nodes, proc);

    let started = Instant::now();
    if flip::flip_edges(proc, &info) {
        report.record(Step::FlippingEdge);
        info = sema::check_procedure(proc)?;
    }
    finish_pass(report, "canonicalize/flip", started, nodes, proc);

    Ok(info)
}

/// Records one pass's timing and returns the post-pass node count.
fn finish_pass(
    report: &mut TransformReport,
    pass: &'static str,
    started: Instant,
    nodes_before: usize,
    proc: &Procedure,
) -> usize {
    let nodes_after = count_nodes(proc);
    report.record_timing(pass, started.elapsed(), nodes_before, nodes_after);
    nodes_after
}
