//! Flipping edges: converting message pulling into message pushing (§4.1).
//!
//! A nested loop in which the inner (neighborhood) loop only updates
//! outer-loop scoped locations is a *pull*: the outer vertex reads its
//! neighbors' data. Pregel can only push, so the compiler swaps the two
//! iterators and flips the edge direction of the inner iteration:
//!
//! ```text
//! Foreach (n: G.Nodes)            Foreach (t: G.Nodes)
//!     Foreach (t: n.InNbrs)   →       Foreach (n: t.Nbrs)
//!         n.foo max= t.bar;               n.foo max= t.bar;
//! ```
//!
//! Filters are redistributed: a filter that mentions only the new outer
//! iterator hoists to the new outer loop; everything else conjoins onto the
//! new inner loop.

use crate::ast::*;
use crate::astutil::{reads_in_expr, writes_in_block, Place};
use crate::sema::ProcInfo;

/// Flips every pull-style nested loop in `proc`. Returns whether any loop
/// was flipped.
pub fn flip_edges(proc: &mut Procedure, info: &ProcInfo) -> bool {
    let mut changed = false;
    process_block(&mut proc.body, info, &mut changed);
    changed
}

fn process_block(block: &mut Block, info: &ProcInfo, changed: &mut bool) {
    for stmt in &mut block.stmts {
        match &mut stmt.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                process_block(then_branch, info, changed);
                if let Some(eb) = else_branch {
                    process_block(eb, info, changed);
                }
            }
            StmtKind::While { body, .. } => process_block(body, info, changed),
            StmtKind::Block(b) => process_block(b, info, changed),
            StmtKind::Foreach(f) => {
                if let Some(flipped) = try_flip(f, info) {
                    **f = flipped;
                    *changed = true;
                } else {
                    process_block(&mut f.body, info, changed);
                }
            }
            _ => {}
        }
    }
}

/// Attempts to flip one outer loop; returns the replacement on success.
fn try_flip(outer: &ForeachStmt, _info: &ProcInfo) -> Option<ForeachStmt> {
    // Shape: parallel Foreach over Nodes whose body is exactly one
    // neighborhood Foreach of the outer iterator.
    if !outer.parallel || !matches!(outer.source, IterSource::Nodes { .. }) {
        return None;
    }
    if outer.body.stmts.len() != 1 {
        return None;
    }
    let inner = match &outer.body.stmts[0].kind {
        StmtKind::Foreach(inner)
            if inner.source.is_neighborhood() && inner.source.base() == outer.iter =>
        {
            inner
        }
        _ => return None,
    };

    // Pull test: every property write in the inner body targets the outer
    // iterator. (Scalar writes are locals or globals and ride along.)
    let writes = writes_in_block(&inner.body);
    let prop_writes: Vec<&Place> = writes
        .iter()
        .map(|(p, _)| p)
        .filter(|p| matches!(p, Place::Prop { .. }))
        .collect();
    if prop_writes.is_empty() {
        return None; // nothing to flip (e.g. pure global accumulation stays)
    }
    if !prop_writes
        .iter()
        .all(|p| matches!(p, Place::Prop { obj, .. } if *obj == outer.iter))
    {
        return None; // push (or mixed — the canonical check reports mixed)
    }

    // Flip direction.
    let flipped_source = match &inner.source {
        IterSource::OutNbrs { .. } => IterSource::InNbrs {
            of: inner.iter.clone(),
        },
        IterSource::InNbrs { .. } => IterSource::OutNbrs {
            of: inner.iter.clone(),
        },
        _ => return None, // Up/DownNbrs are lowered before this pass
    };

    // Redistribute filters. The old inner filter may hoist to the new outer
    // loop if it only mentions the new outer iterator (old inner iterator);
    // the old outer filter always mentions the old outer iterator and moves
    // inside.
    let mut new_outer_filter: Option<Expr> = None;
    let mut new_inner_filter: Option<Expr> = None;
    let mut push_inner = |e: Expr| {
        new_inner_filter = Some(match new_inner_filter.take() {
            Some(existing) => Expr::binary(BinOp::And, e, existing),
            None => e,
        });
    };
    if let Some(ft) = &inner.filter {
        if mentions_var(ft, &outer.iter) {
            push_inner(ft.clone());
        } else {
            new_outer_filter = Some(ft.clone());
        }
    }
    if let Some(fn_) = &outer.filter {
        push_inner(fn_.clone());
    }

    Some(ForeachStmt {
        iter: inner.iter.clone(),
        source: outer.source.clone(),
        filter: new_outer_filter,
        body: Block::of(vec![Stmt::synth(StmtKind::Foreach(Box::new(
            ForeachStmt {
                iter: outer.iter.clone(),
                source: flipped_source,
                filter: new_inner_filter,
                body: inner.body.clone(),
                parallel: true,
            },
        )))]),
        parallel: true,
    })
}

fn mentions_var(e: &Expr, var: &str) -> bool {
    let mut places = Vec::new();
    reads_in_expr(e, &mut places);
    places.iter().any(|p| match p {
        Place::Scalar(n) => n == var,
        Place::Prop { obj, .. } => obj == var,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::pretty::program_to_string;
    use crate::seqinterp::{run_procedure, ArgValue};
    use crate::value::Value as V;
    use std::collections::HashMap;

    fn flipped(src: &str) -> (Program, String) {
        let mut p = parse(src).unwrap();
        let infos = crate::sema::check(&mut p).unwrap();
        let changed = flip_edges(&mut p.procedures[0], &infos[0]);
        assert!(changed, "expected flip to fire");
        crate::sema::check(&mut p).unwrap();
        let s = program_to_string(&p);
        (p, s)
    }

    const MAX_SRC: &str = "Procedure f(G: Graph, foo: N_P<Int>, bar: N_P<Int>) {
        Foreach (n: G.Nodes) {
            Foreach (t: n.InNbrs) {
                n.foo max= t.bar;
            }
        }
    }";

    #[test]
    fn pull_over_in_neighbors_becomes_push_over_out() {
        let (_, s) = flipped(MAX_SRC);
        assert!(s.contains("Foreach (t: G.Nodes)"), "{s}");
        assert!(s.contains("Foreach (n: t.Nbrs)"), "{s}");
        assert!(s.contains("n.foo max= t.bar;"), "{s}");
        assert!(!s.contains("InNbrs"), "{s}");
    }

    #[test]
    fn flip_preserves_semantics() {
        let g = gm_graph::gen::rmat(40, 160, 3);
        let bars: Vec<V> = (0..40).map(|i| V::Int((i * 7) % 23)).collect();
        let args = HashMap::from([("bar".to_owned(), ArgValue::NodeProp(bars))]);

        let mut orig = parse(MAX_SRC).unwrap();
        let infos = crate::sema::check(&mut orig).unwrap();
        let r1 = run_procedure(&g, &orig.procedures[0], &infos[0], &args, 0).unwrap();

        let (mut fl, _) = flipped(MAX_SRC);
        let infos2 = crate::sema::check(&mut fl).unwrap();
        let r2 = run_procedure(&g, &fl.procedures[0], &infos2[0], &args, 0).unwrap();
        assert_eq!(r1.node_props["foo"], r2.node_props["foo"]);
    }

    #[test]
    fn filters_are_redistributed() {
        let src = "Procedure f(G: Graph, a: N_P<Int>, b: N_P<Int>) {
            Foreach (n: G.Nodes)(n.a > 0) {
                Foreach (t: n.InNbrs)(t.b > 1) {
                    n.a += t.b;
                }
            }
        }";
        let (_, s) = flipped(src);
        // t-only filter hoists to the new outer loop; n filter moves in.
        assert!(s.contains("Foreach (t: G.Nodes) ((t.b > 1))"), "{s}");
        assert!(s.contains("Foreach (n: t.Nbrs) ((n.a > 0))"), "{s}");
    }

    #[test]
    fn inner_filter_mentioning_outer_moves_inside() {
        let src = "Procedure f(G: Graph, a: N_P<Int>, b: N_P<Int>) {
            Foreach (n: G.Nodes) {
                Foreach (t: n.InNbrs)(t.b > n.a) {
                    n.a += t.b;
                }
            }
        }";
        let (_, s) = flipped(src);
        assert!(s.contains("Foreach (t: G.Nodes) {"), "{s}");
        assert!(s.contains("(t.b > n.a)"), "{s}");
    }

    #[test]
    fn push_loops_are_untouched() {
        let src = "Procedure f(G: Graph, x: N_P<Int>) {
            Foreach (n: G.Nodes) {
                Foreach (t: n.Nbrs) {
                    t.x += 1;
                }
            }
        }";
        let mut p = parse(src).unwrap();
        let infos = crate::sema::check(&mut p).unwrap();
        assert!(!flip_edges(&mut p.procedures[0], &infos[0]));
    }

    #[test]
    fn pull_over_out_neighbors_becomes_push_over_in() {
        // The Conductance shape: counting over out-neighborhood by reading
        // the inner vertex — flips into pushes along reverse edges.
        let src = "Procedure f(G: Graph, m: N_P<Bool>, c: N_P<Int>) {
            Foreach (u: G.Nodes) {
                Foreach (j: u.Nbrs)(j.m) {
                    u.c += 1;
                }
            }
        }";
        let (_, s) = flipped(src);
        assert!(s.contains("Foreach (j: G.Nodes) (j.m)"), "{s}");
        assert!(s.contains("Foreach (u: j.InNbrs)"), "{s}");
    }
}
