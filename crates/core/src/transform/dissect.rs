//! Dissecting nested loops (§4.1).
//!
//! Two rewrites prepare pull-style nested loops for edge flipping:
//!
//! 1. **Scalar → temporary property.** An outer-loop scoped scalar that is
//!    modified inside an inner neighborhood loop becomes a per-vertex
//!    temporary property of the outer iterator (the paper's `_C` → `_tmp`
//!    example).
//! 2. **Loop splitting.** If an inner loop writes properties of the outer
//!    iterator but the outer loop contains other statements, the outer loop
//!    is split so the pull loop stands alone, ready for
//!    [`crate::transform::flip`].

use crate::ast::*;
use crate::astutil::{subst_var_block, writes_in_block, NameGen, Place};
use crate::sema::ProcInfo;
use crate::types::Ty;
use crate::value::Value;

/// Applies both rewrites everywhere in `proc`. Returns whether anything
/// changed.
pub fn dissect_loops(proc: &mut Procedure, info: &ProcInfo) -> bool {
    let mut names = NameGen::for_procedure(proc);
    let mut changed = false;
    process_block(&mut proc.body, info, &mut names, &mut changed);
    changed
}

fn process_block(block: &mut Block, info: &ProcInfo, names: &mut NameGen, changed: &mut bool) {
    let stmts = std::mem::take(&mut block.stmts);
    for mut stmt in stmts {
        match &mut stmt.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                process_block(then_branch, info, names, changed);
                if let Some(eb) = else_branch {
                    process_block(eb, info, names, changed);
                }
            }
            StmtKind::While { body, .. } => process_block(body, info, names, changed),
            StmtKind::Block(b) => process_block(b, info, names, changed),
            _ => {}
        }

        let is_vertex_loop = matches!(
            &stmt.kind,
            StmtKind::Foreach(f)
                if f.parallel && matches!(f.source, IterSource::Nodes { .. })
        );
        if is_vertex_loop {
            let f = match stmt.kind {
                StmtKind::Foreach(f) => *f,
                _ => unreachable!("checked above"),
            };
            dissect_outer_loop(f, info, names, &mut block.stmts, changed);
        } else {
            block.stmts.push(stmt);
        }
    }
}

/// Rewrites one outer vertex loop, appending the result (possibly several
/// loops plus property declarations) to `out`.
fn dissect_outer_loop(
    mut f: ForeachStmt,
    _info: &ProcInfo,
    names: &mut NameGen,
    out: &mut Vec<Stmt>,
    changed: &mut bool,
) {
    // ---- rewrite 1: outer-scoped scalars written in inner loops ----
    let inner_written_scalars: Vec<(usize, String, Ty)> = f
        .body
        .stmts
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match &s.kind {
            StmtKind::VarDecl { ty, name, .. } if ty.is_value() => {
                Some((i, name.clone(), ty.clone()))
            }
            _ => None,
        })
        .filter(|(_, name, _)| {
            // Written inside any inner Foreach of the body?
            f.body.stmts.iter().any(|s| match &s.kind {
                StmtKind::Foreach(inner) => writes_in_block(&inner.body)
                    .iter()
                    .any(|(p, _)| matches!(p, Place::Scalar(n) if n == name)),
                _ => false,
            })
        })
        .collect();

    for (_, scalar, ty) in &inner_written_scalars {
        *changed = true;
        let prop = names.fresh("_tp");
        // Node_Prop<T> _tp;  (before the loop)
        out.push(Stmt::synth(StmtKind::VarDecl {
            ty: Ty::NodeProp(Box::new(ty.clone())),
            name: prop.clone(),
            init: None,
        }));
        // Replace the declaration with an initializing assignment.
        for s in &mut f.body.stmts {
            if let StmtKind::VarDecl { name, init, .. } = &mut s.kind {
                if name == scalar {
                    let value = init.take().unwrap_or_else(|| default_expr(ty));
                    *s = Stmt::synth(StmtKind::Assign {
                        target: Target::Prop {
                            obj: f.iter.clone(),
                            prop: prop.clone(),
                        },
                        op: AssignOp::Assign,
                        value,
                    });
                }
            }
        }
        // Rewrite remaining references `scalar` → `iter._tp`. A plain
        // variable substitution cannot produce a property access, so this
        // uses a dedicated rewrite.
        replace_scalar_with_prop(&mut f.body, scalar, &f.iter, &prop);
    }

    // ---- rewrite 2: split so pull loops stand alone ----
    let needs_split =
        f.body.stmts.len() > 1 && f.body.stmts.iter().any(|s| is_pull_loop(s, &f.iter));
    if !needs_split {
        out.push(Stmt::synth(StmtKind::Foreach(Box::new(f))));
        return;
    }
    *changed = true;
    let mut run: Vec<Stmt> = Vec::new();
    let flush = |run: &mut Vec<Stmt>, out: &mut Vec<Stmt>, f: &ForeachStmt| {
        if !run.is_empty() {
            out.push(Stmt::synth(StmtKind::Foreach(Box::new(ForeachStmt {
                iter: f.iter.clone(),
                source: f.source.clone(),
                filter: f.filter.clone(),
                body: Block::of(std::mem::take(run)),
                parallel: true,
            }))));
        }
    };
    let stmts = std::mem::take(&mut f.body.stmts);
    for s in stmts {
        if is_pull_loop(&s, &f.iter) {
            flush(&mut run, out, &f);
            out.push(Stmt::synth(StmtKind::Foreach(Box::new(ForeachStmt {
                iter: f.iter.clone(),
                source: f.source.clone(),
                filter: f.filter.clone(),
                body: Block::of(vec![s]),
                parallel: true,
            }))));
        } else {
            run.push(s);
        }
    }
    flush(&mut run, out, &f);
}

/// An inner neighborhood loop that writes properties of the outer iterator
/// (i.e. would require message pulling if translated in place).
fn is_pull_loop(s: &Stmt, outer_iter: &str) -> bool {
    match &s.kind {
        StmtKind::Foreach(inner) if inner.source.is_neighborhood() => writes_in_block(&inner.body)
            .iter()
            .any(|(p, _)| matches!(p, Place::Prop { obj, .. } if obj == outer_iter)),
        _ => false,
    }
}

fn default_expr(ty: &Ty) -> Expr {
    match Value::default_for(ty) {
        Value::Int(v) => Expr::typed(ExprKind::IntLit(v), ty.clone()),
        Value::Double(v) => Expr::typed(ExprKind::FloatLit(v), ty.clone()),
        Value::Bool(v) => Expr::typed(ExprKind::BoolLit(v), ty.clone()),
        Value::Node(_) => Expr::typed(ExprKind::Nil, Ty::Node),
        Value::Edge(_) => Expr::typed(ExprKind::IntLit(0), Ty::Edge),
    }
}

/// Replaces reads/writes of scalar `name` with `obj._prop` in a block.
fn replace_scalar_with_prop(block: &mut Block, name: &str, obj: &str, prop: &str) {
    // First rewrite assignment targets, then expression reads.
    rewrite_targets(block, name, obj, prop);
    // Expression positions: a scalar read becomes a Prop read. The generic
    // substitution in astutil renames variables only, so walk manually.
    rewrite_exprs_in_block(block, &mut |e: &mut Expr| {
        if matches!(&e.kind, ExprKind::Var(v) if v == name) {
            e.kind = ExprKind::Prop {
                obj: obj.to_owned(),
                prop: prop.to_owned(),
            };
        }
    });
    let _ = subst_var_block; // keep the import meaningful for future passes
}

fn rewrite_targets(block: &mut Block, name: &str, obj: &str, prop: &str) {
    for s in &mut block.stmts {
        match &mut s.kind {
            StmtKind::Assign { target, .. } => {
                if matches!(target, Target::Scalar(n) if n == name) {
                    *target = Target::Prop {
                        obj: obj.to_owned(),
                        prop: prop.to_owned(),
                    };
                }
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                rewrite_targets(then_branch, name, obj, prop);
                if let Some(eb) = else_branch {
                    rewrite_targets(eb, name, obj, prop);
                }
            }
            StmtKind::While { body, .. } => rewrite_targets(body, name, obj, prop),
            StmtKind::Foreach(f) => rewrite_targets(&mut f.body, name, obj, prop),
            StmtKind::Block(b) => rewrite_targets(b, name, obj, prop),
            _ => {}
        }
    }
}

/// Applies `f` to every expression in the block, recursively (post-order on
/// sub-expressions is not needed for variable replacement).
fn rewrite_exprs_in_block(block: &mut Block, f: &mut impl FnMut(&mut Expr)) {
    for s in &mut block.stmts {
        rewrite_exprs_in_stmt(s, f);
    }
}

fn rewrite_exprs_in_stmt(s: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    match &mut s.kind {
        StmtKind::VarDecl { init, .. } => {
            if let Some(e) = init {
                rewrite_expr(e, f);
            }
        }
        StmtKind::Assign { value, .. } => rewrite_expr(value, f),
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            rewrite_expr(cond, f);
            rewrite_exprs_in_block(then_branch, f);
            if let Some(eb) = else_branch {
                rewrite_exprs_in_block(eb, f);
            }
        }
        StmtKind::While { cond, body, .. } => {
            rewrite_expr(cond, f);
            rewrite_exprs_in_block(body, f);
        }
        StmtKind::Foreach(fe) => {
            if let Some(filt) = &mut fe.filter {
                rewrite_expr(filt, f);
            }
            rewrite_exprs_in_block(&mut fe.body, f);
        }
        StmtKind::InBfs(b) => {
            rewrite_expr(&mut b.root, f);
            rewrite_exprs_in_block(&mut b.body, f);
            if let Some(rb) = &mut b.reverse_body {
                rewrite_exprs_in_block(rb, f);
            }
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                rewrite_expr(e, f);
            }
        }
        StmtKind::Block(b) => rewrite_exprs_in_block(b, f),
    }
}

fn rewrite_expr(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    f(e);
    match &mut e.kind {
        ExprKind::Unary { expr, .. } => rewrite_expr(expr, f),
        ExprKind::Binary { lhs, rhs, .. } => {
            rewrite_expr(lhs, f);
            rewrite_expr(rhs, f);
        }
        ExprKind::Ternary {
            cond,
            then_val,
            else_val,
        } => {
            rewrite_expr(cond, f);
            rewrite_expr(then_val, f);
            rewrite_expr(else_val, f);
        }
        ExprKind::Agg(a) => {
            if let Some(filt) = &mut a.filter {
                rewrite_expr(filt, f);
            }
            if let Some(b) = &mut a.body {
                rewrite_expr(b, f);
            }
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                rewrite_expr(a, f);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::pretty::program_to_string;
    use crate::seqinterp::{run_procedure, ArgValue};
    use crate::value::Value as V;
    use std::collections::HashMap;

    fn dissected(src: &str) -> (Program, String) {
        let mut p = parse(src).unwrap();
        let infos = crate::sema::check(&mut p).unwrap();
        let changed = dissect_loops(&mut p.procedures[0], &infos[0]);
        assert!(changed, "expected the pass to fire");
        crate::sema::check(&mut p).unwrap();
        let s = program_to_string(&p);
        (p, s)
    }

    const TEEN_SRC: &str = "Procedure f(G: Graph, age: N_P<Int>, cnt: N_P<Int>) {
        Foreach (n: G.Nodes) {
            Int c = 0;
            Foreach (t: n.InNbrs)(t.age >= 13 && t.age < 20) {
                c += 1;
            }
            n.cnt = c;
        }
    }";

    #[test]
    fn scalar_becomes_property_and_loop_splits() {
        let (_, s) = dissected(TEEN_SRC);
        // Temp property declared before the loops.
        assert!(s.contains("Node_Prop<Int> _tp1;"), "{s}");
        // Three outer loops after splitting.
        assert_eq!(s.matches("Foreach (").count(), 4, "{s}"); // 3 outer + 1 inner
        assert!(s.contains("._tp1 = 0"), "{s}");
        assert!(s.contains("._tp1 += 1"), "{s}");
        assert!(s.contains(".cnt = "), "{s}");
    }

    #[test]
    fn dissection_preserves_semantics() {
        let g = {
            let mut b = gm_graph::GraphBuilder::new(4);
            b.extend([(1, 0), (2, 0), (3, 0), (2, 3)]);
            b.build()
        };
        let ages = vec![V::Int(30), V::Int(15), V::Int(40), V::Int(13)];
        let args = HashMap::from([("age".to_owned(), ArgValue::NodeProp(ages))]);

        let mut orig = parse(TEEN_SRC).unwrap();
        let infos = crate::sema::check(&mut orig).unwrap();
        let r1 = run_procedure(&g, &orig.procedures[0], &infos[0], &args, 0).unwrap();

        let (mut dis, _) = dissected(TEEN_SRC);
        let infos2 = crate::sema::check(&mut dis).unwrap();
        let r2 = run_procedure(&g, &dis.procedures[0], &infos2[0], &args, 0).unwrap();
        assert_eq!(r1.node_props["cnt"], r2.node_props["cnt"]);
        assert_eq!(r2.node_props["cnt"][0], V::Int(2)); // teens 1 and 3 point at 0
    }

    #[test]
    fn push_loops_are_not_split() {
        let src = "Procedure f(G: Graph, x: N_P<Int>) {
            Foreach (n: G.Nodes) {
                Foreach (t: n.Nbrs) {
                    t.x += 1;
                }
            }
        }";
        let mut p = parse(src).unwrap();
        let infos = crate::sema::check(&mut p).unwrap();
        assert!(!dissect_loops(&mut p.procedures[0], &infos[0]));
    }

    #[test]
    fn outer_filter_is_copied_to_splits() {
        let src = "Procedure f(G: Graph, a: N_P<Int>, b: N_P<Int>) {
            Foreach (n: G.Nodes)(n.a > 0) {
                n.b = 0;
                Foreach (t: n.InNbrs) {
                    n.b += t.a;
                }
                n.b += 1;
            }
        }";
        let (_, s) = dissected(src);
        assert_eq!(s.matches(".a > 0").count(), 3, "{s}");
    }

    #[test]
    fn uninitialized_scalar_gets_default() {
        let src = "Procedure f(G: Graph, x: N_P<Int>) {
            Foreach (n: G.Nodes) {
                Int c;
                Foreach (t: n.InNbrs) {
                    c += 1;
                }
                n.x = c;
            }
        }";
        let (_, s) = dissected(src);
        assert!(s.contains("._tp1 = 0;"), "{s}");
    }
}
