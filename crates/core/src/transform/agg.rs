//! Aggregate-expression desugaring.
//!
//! Rewrites `Sum`/`Product`/`Count`/`Max`/`Min`/`Avg`/`Exist`/`All`
//! expressions into explicit accumulation loops, which the later passes
//! (dissection, edge flipping) then shape into Pregel-canonical form. A
//! `While` condition containing an aggregate is re-evaluated at the end of
//! every iteration through a fresh condition variable.

use crate::ast::*;
use crate::astutil::{contains_agg, NameGen};
use crate::sema::ProcInfo;
use crate::types::Ty;

/// Desugars every aggregate in `proc`. Returns whether anything changed.
///
/// Relies on the type annotations of the most recent sema run; nested
/// aggregates are handled by running to a fixpoint.
pub fn desugar_aggregates(proc: &mut Procedure, _info: &ProcInfo) -> bool {
    let mut names = NameGen::for_procedure(proc);
    let mut changed_any = false;
    loop {
        let mut changed = false;
        process_block(&mut proc.body, &mut names, &mut changed);
        if !changed {
            break;
        }
        changed_any = true;
        // New nodes (accumulator loops) may contain aggregates moved from
        // inner positions; re-typing happens in the driver after fixpoint.
    }
    changed_any
}

fn process_block(block: &mut Block, names: &mut NameGen, changed: &mut bool) {
    let stmts = std::mem::take(&mut block.stmts);
    for mut stmt in stmts {
        // Recurse into nested structures first.
        match &mut stmt.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                process_block(then_branch, names, changed);
                if let Some(eb) = else_branch {
                    process_block(eb, names, changed);
                }
            }
            StmtKind::While { body, .. } => process_block(body, names, changed),
            StmtKind::Foreach(f) => process_block(&mut f.body, names, changed),
            StmtKind::InBfs(b) => {
                process_block(&mut b.body, names, changed);
                if let Some(rb) = &mut b.reverse_body {
                    process_block(rb, names, changed);
                }
            }
            StmtKind::Block(b) => process_block(b, names, changed),
            _ => {}
        }

        // While with aggregates in the condition: evaluate before the loop
        // and re-evaluate at the end of each iteration.
        let while_with_agg = matches!(
            &stmt.kind,
            StmtKind::While { cond, do_while: false, .. } if contains_agg(cond)
        );
        if while_with_agg {
            let (cond, mut body) = match stmt.kind {
                StmtKind::While { cond, body, .. } => (cond, body),
                _ => unreachable!("checked above"),
            };
            *changed = true;
            let wvar = names.fresh("_w");
            block.stmts.push(Stmt::synth(StmtKind::VarDecl {
                ty: Ty::Bool,
                name: wvar.clone(),
                init: Some(Expr::bool(false)),
            }));
            // Pre-loop evaluation.
            let mut pre_cond = cond.clone();
            hoist_expr(&mut pre_cond, names, &mut block.stmts, changed);
            block.stmts.push(Stmt::synth(StmtKind::Assign {
                target: Target::Scalar(wvar.clone()),
                op: AssignOp::Assign,
                value: pre_cond,
            }));
            // End-of-body re-evaluation.
            let mut post_cond = cond;
            let mut tail = Vec::new();
            hoist_expr(&mut post_cond, names, &mut tail, changed);
            tail.push(Stmt::synth(StmtKind::Assign {
                target: Target::Scalar(wvar.clone()),
                op: AssignOp::Assign,
                value: post_cond,
            }));
            body.stmts.extend(tail);
            block.stmts.push(Stmt::synth(StmtKind::While {
                cond: Expr::typed(ExprKind::Var(wvar), Ty::Bool),
                body,
                do_while: false,
            }));
            continue;
        }

        // Ordinary statements: hoist aggregates out of their expressions.
        match &mut stmt.kind {
            StmtKind::VarDecl { init: Some(e), .. }
            | StmtKind::Assign { value: e, .. }
            | StmtKind::Return(Some(e)) => {
                hoist_expr(e, names, &mut block.stmts, changed);
            }
            StmtKind::If { cond, .. } => {
                hoist_expr(cond, names, &mut block.stmts, changed);
            }
            StmtKind::While {
                cond,
                do_while: true,
                ..
            } => {
                // Do-While conditions with aggregates are rejected later by
                // the canonical check; hoisting would change semantics.
                let _ = cond;
            }
            _ => {}
        }
        block.stmts.push(stmt);
    }
}

/// Replaces aggregate sub-expressions of `e` with accumulator variables,
/// appending the accumulation statements to `out`.
fn hoist_expr(e: &mut Expr, names: &mut NameGen, out: &mut Vec<Stmt>, changed: &mut bool) {
    match &mut e.kind {
        ExprKind::Agg(_) => {
            let agg = match std::mem::replace(&mut e.kind, ExprKind::Nil) {
                ExprKind::Agg(a) => *a,
                _ => unreachable!("checked above"),
            };
            *changed = true;
            let replacement = lower_agg(agg, e.ty.clone(), names, out);
            *e = replacement;
        }
        ExprKind::Unary { expr, .. } => hoist_expr(expr, names, out, changed),
        ExprKind::Binary { lhs, rhs, .. } => {
            hoist_expr(lhs, names, out, changed);
            hoist_expr(rhs, names, out, changed);
        }
        ExprKind::Ternary {
            cond,
            then_val,
            else_val,
        } => {
            hoist_expr(cond, names, out, changed);
            hoist_expr(then_val, names, out, changed);
            hoist_expr(else_val, names, out, changed);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                hoist_expr(a, names, out, changed);
            }
        }
        _ => {}
    }
}

/// Emits `T _ag = identity; Foreach (it: src)(filter) { _ag op= body; }`
/// and returns the expression standing in for the aggregate.
fn lower_agg(
    agg: AggExpr,
    result_ty: Option<Ty>,
    names: &mut NameGen,
    out: &mut Vec<Stmt>,
) -> Expr {
    let result_ty = result_ty.unwrap_or(Ty::Int);
    match agg.kind {
        AggKind::Sum | AggKind::Product | AggKind::Max | AggKind::Min => {
            let acc = names.fresh("_ag");
            let body = agg.body.expect("value aggregate has a body");
            let acc_ty = body.ty.clone().unwrap_or(result_ty.clone());
            let (identity, op): (Expr, AssignOp) = match agg.kind {
                AggKind::Sum => (zero_of(&acc_ty), AssignOp::Add),
                AggKind::Product => (one_of(&acc_ty), AssignOp::Mul),
                AggKind::Max => (
                    Expr::typed(ExprKind::Inf { negative: true }, acc_ty.clone()),
                    AssignOp::Max,
                ),
                AggKind::Min => (
                    Expr::typed(ExprKind::Inf { negative: false }, acc_ty.clone()),
                    AssignOp::Min,
                ),
                _ => unreachable!("matched above"),
            };
            out.push(Stmt::synth(StmtKind::VarDecl {
                ty: acc_ty.clone(),
                name: acc.clone(),
                init: Some(identity),
            }));
            out.push(accumulate_loop(
                &agg.iter, agg.source, agg.filter, &acc, op, body,
            ));
            Expr::typed(ExprKind::Var(acc), acc_ty)
        }
        AggKind::Count => {
            let acc = names.fresh("_ag");
            out.push(Stmt::synth(StmtKind::VarDecl {
                ty: Ty::Int,
                name: acc.clone(),
                init: Some(Expr::typed(ExprKind::IntLit(0), Ty::Int)),
            }));
            out.push(accumulate_loop(
                &agg.iter,
                agg.source,
                agg.filter,
                &acc,
                AssignOp::Add,
                Expr::typed(ExprKind::IntLit(1), Ty::Int),
            ));
            Expr::typed(ExprKind::Var(acc), Ty::Int)
        }
        AggKind::Exist | AggKind::All => {
            let acc = names.fresh("_ag");
            let is_exist = agg.kind == AggKind::Exist;
            out.push(Stmt::synth(StmtKind::VarDecl {
                ty: Ty::Bool,
                name: acc.clone(),
                init: Some(Expr::typed(ExprKind::BoolLit(!is_exist), Ty::Bool)),
            }));
            let cond = agg
                .body
                .unwrap_or_else(|| Expr::typed(ExprKind::BoolLit(true), Ty::Bool));
            let op = if is_exist {
                AssignOp::Or
            } else {
                AssignOp::And
            };
            out.push(accumulate_loop(
                &agg.iter, agg.source, agg.filter, &acc, op, cond,
            ));
            Expr::typed(ExprKind::Var(acc), Ty::Bool)
        }
        AggKind::Avg => {
            let sum = names.fresh("_ag");
            let cnt = names.fresh("_ag");
            let body = agg.body.expect("Avg has a body");
            out.push(Stmt::synth(StmtKind::VarDecl {
                ty: Ty::Double,
                name: sum.clone(),
                init: Some(Expr::typed(ExprKind::FloatLit(0.0), Ty::Double)),
            }));
            out.push(Stmt::synth(StmtKind::VarDecl {
                ty: Ty::Int,
                name: cnt.clone(),
                init: Some(Expr::typed(ExprKind::IntLit(0), Ty::Int)),
            }));
            let loop_body = vec![
                Stmt::synth(StmtKind::Assign {
                    target: Target::Scalar(sum.clone()),
                    op: AssignOp::Add,
                    value: body,
                }),
                Stmt::synth(StmtKind::Assign {
                    target: Target::Scalar(cnt.clone()),
                    op: AssignOp::Add,
                    value: Expr::typed(ExprKind::IntLit(1), Ty::Int),
                }),
            ];
            out.push(Stmt::synth(StmtKind::Foreach(Box::new(ForeachStmt {
                iter: agg.iter,
                source: agg.source,
                filter: agg.filter,
                body: Block::of(loop_body),
                parallel: true,
            }))));
            // (_cnt == 0) ? 0.0 : _sum / _cnt
            Expr::typed(
                ExprKind::Ternary {
                    cond: Box::new(Expr::typed(
                        ExprKind::Binary {
                            op: BinOp::Eq,
                            lhs: Box::new(Expr::typed(ExprKind::Var(cnt.clone()), Ty::Int)),
                            rhs: Box::new(Expr::typed(ExprKind::IntLit(0), Ty::Int)),
                        },
                        Ty::Bool,
                    )),
                    then_val: Box::new(Expr::typed(ExprKind::FloatLit(0.0), Ty::Double)),
                    else_val: Box::new(Expr::typed(
                        ExprKind::Binary {
                            op: BinOp::Div,
                            lhs: Box::new(Expr::typed(ExprKind::Var(sum), Ty::Double)),
                            rhs: Box::new(Expr::typed(ExprKind::Var(cnt), Ty::Int)),
                        },
                        Ty::Double,
                    )),
                },
                Ty::Double,
            )
        }
    }
}

fn accumulate_loop(
    iter: &str,
    source: IterSource,
    filter: Option<Expr>,
    acc: &str,
    op: AssignOp,
    body: Expr,
) -> Stmt {
    Stmt::synth(StmtKind::Foreach(Box::new(ForeachStmt {
        iter: iter.to_owned(),
        source,
        filter,
        body: Block::of(vec![Stmt::synth(StmtKind::Assign {
            target: Target::Scalar(acc.to_owned()),
            op,
            value: body,
        })]),
        parallel: true,
    })))
}

fn zero_of(ty: &Ty) -> Expr {
    if ty.is_float() {
        Expr::typed(ExprKind::FloatLit(0.0), ty.clone())
    } else {
        Expr::typed(ExprKind::IntLit(0), ty.clone())
    }
}

fn one_of(ty: &Ty) -> Expr {
    if ty.is_float() {
        Expr::typed(ExprKind::FloatLit(1.0), ty.clone())
    } else {
        Expr::typed(ExprKind::IntLit(1), ty.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::pretty::program_to_string;
    use crate::seqinterp::{run_procedure, ArgValue};
    use crate::value::Value;
    use std::collections::HashMap;

    /// Desugars and checks that the output still typechecks and contains no
    /// aggregate; returns (program, printed form).
    fn desugared(src: &str) -> (Program, String) {
        let mut p = parse(src).unwrap();
        let infos = crate::sema::check(&mut p).unwrap();
        let changed = desugar_aggregates(&mut p.procedures[0], &infos[0]);
        assert!(changed);
        crate::sema::check(&mut p).unwrap();
        let s = program_to_string(&p);
        assert!(
            !s.contains("Sum(") && !s.contains("Count(") && !s.contains("Exist("),
            "{s}"
        );
        (p, s)
    }

    fn run_both(src: &str, g: &gm_graph::Graph, args: &HashMap<String, ArgValue>) {
        let mut orig = parse(src).unwrap();
        let infos = crate::sema::check(&mut orig).unwrap();
        let r1 = run_procedure(g, &orig.procedures[0], &infos[0], args, 0).unwrap();

        let (mut low, _) = desugared(src);
        let infos2 = crate::sema::check(&mut low).unwrap();
        let r2 = run_procedure(g, &low.procedures[0], &infos2[0], args, 0).unwrap();
        assert_eq!(r1.ret, r2.ret);
    }

    #[test]
    fn sequential_sum_with_filter() {
        let src = "Procedure f(G: Graph) : Int {
            Int d = Sum(u: G.Nodes)[u.Degree() > 0]{u.Degree()};
            Return d;
        }";
        let (_, s) = desugared(src);
        assert!(s.contains("_ag1"), "{s}");
        run_both(src, &gm_graph::gen::star(4), &HashMap::new());
    }

    #[test]
    fn nested_aggregates_fully_lower() {
        let src = "Procedure f(G: Graph, m: N_P<Bool>) : Int {
            Int cross = Sum(u: G.Nodes)[u.m]{Count(j: u.Nbrs)(!j.m)};
            Return cross;
        }";
        let (_, s) = desugared(src);
        // Two accumulators, the inner one inside the outer loop.
        assert!(s.matches("Foreach").count() >= 2, "{s}");
        let mut props = vec![Value::Bool(false); 5];
        props[0] = Value::Bool(true);
        run_both(
            src,
            &gm_graph::gen::star(4),
            &HashMap::from([("m".to_owned(), ArgValue::NodeProp(props))]),
        );
    }

    #[test]
    fn exist_in_while_condition_reevaluates() {
        let src = "Procedure f(G: Graph, v: N_P<Bool>) : Int {
            Int rounds = 0;
            Foreach (n: G.Nodes)(n.InDegree() == 0) {
                n.v = True;
            }
            While (Exist(n: G.Nodes)(!n.v)) {
                Foreach (n: G.Nodes)(n.v) {
                    Foreach (t: n.Nbrs) {
                        t.v = True;
                    }
                }
                rounds += 1;
            }
            Return rounds;
        }";
        let (_, s) = desugared(src);
        // Condition variable assigned twice: before the loop and at the end
        // of the body.
        assert!(s.contains("_w"), "{s}");
        run_both(src, &gm_graph::gen::path(5), &HashMap::new());
    }

    #[test]
    fn avg_lowering() {
        let src = "Procedure f(G: Graph) : Double {
            Double a = Avg(u: G.Nodes){u.Degree()};
            Return a;
        }";
        run_both(src, &gm_graph::gen::star(4), &HashMap::new());
        // star(4): degrees 4,0,0,0,0 → avg 0.8
        let (mut low, _) = desugared(src);
        let infos = crate::sema::check(&mut low).unwrap();
        let r = run_procedure(
            &gm_graph::gen::star(4),
            &low.procedures[0],
            &infos[0],
            &HashMap::new(),
            0,
        )
        .unwrap();
        assert_eq!(r.ret, Some(Value::Double(0.8)));
    }

    #[test]
    fn min_max_identities() {
        let src = "Procedure f(G: Graph) : Int {
            Int mx = Max(u: G.Nodes){u.Degree()};
            Int mn = Min(u: G.Nodes){u.Degree()};
            Return mx - mn;
        }";
        run_both(src, &gm_graph::gen::star(3), &HashMap::new());
    }

    #[test]
    fn neighborhood_aggregate_inside_parallel_loop() {
        let src = "Procedure f(G: Graph, x: N_P<Int>, s: N_P<Int>) : Int {
            Foreach (n: G.Nodes) {
                n.x = 2;
            }
            Foreach (n: G.Nodes) {
                n.s = Sum(w: n.InNbrs){w.x};
            }
            Return Sum(n: G.Nodes){n.s};
        }";
        run_both(src, &gm_graph::gen::cycle(5), &HashMap::new());
    }
}
