//! Random access in sequential phase (§4.1).
//!
//! Pregel has no way to touch a single vertex's state from the master, so a
//! sequential-phase write through a `Node` variable,
//!
//! ```text
//! s.dist = 0;            // s: Node
//! ```
//!
//! becomes a guarded parallel loop,
//!
//! ```text
//! Foreach (_r: G.Nodes)(_r == s) { _r.dist = 0; }
//! ```
//!
//! Random *reads* in sequential phases are not supported, as in the paper
//! (§3.2: "Random reading of a vertex property is not allowed").

use crate::ast::*;
use crate::astutil::NameGen;
use crate::sema::ProcInfo;

/// Lowers sequential-phase random writes. Returns whether any were found.
pub fn lower_random_access(proc: &mut Procedure, info: &ProcInfo) -> bool {
    let graph = info.graph.clone();
    let mut names = NameGen::for_procedure(proc);
    let mut changed = false;
    process_block(&mut proc.body, &graph, &mut names, &mut changed);
    changed
}

/// Walks sequential-context blocks only: parallel `Foreach` bodies are
/// vertex phases where random writes are translated directly (§3.1 Random
/// Writing), so they are left untouched.
fn process_block(block: &mut Block, graph: &str, names: &mut NameGen, changed: &mut bool) {
    let stmts = std::mem::take(&mut block.stmts);
    for mut stmt in stmts {
        match &mut stmt.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                process_block(then_branch, graph, names, changed);
                if let Some(eb) = else_branch {
                    process_block(eb, graph, names, changed);
                }
            }
            StmtKind::While { body, .. } => process_block(body, graph, names, changed),
            StmtKind::Block(b) => process_block(b, graph, names, changed),
            _ => {}
        }

        let is_random_write = matches!(
            &stmt.kind,
            StmtKind::Assign {
                target: Target::Prop { obj, .. },
                ..
            } if obj != graph
        );
        if is_random_write {
            let (obj, prop, op, value) = match stmt.kind {
                StmtKind::Assign {
                    target: Target::Prop { obj, prop },
                    op,
                    value,
                } => (obj, prop, op, value),
                _ => unreachable!("checked above"),
            };
            *changed = true;
            let iter = names.fresh("_r");
            block
                .stmts
                .push(Stmt::synth(StmtKind::Foreach(Box::new(ForeachStmt {
                    iter: iter.clone(),
                    source: IterSource::Nodes {
                        graph: graph.to_owned(),
                    },
                    filter: Some(Expr::binary(BinOp::Eq, Expr::var(&iter), Expr::var(&obj))),
                    body: Block::of(vec![Stmt::synth(StmtKind::Assign {
                        target: Target::Prop { obj: iter, prop },
                        op,
                        value,
                    })]),
                    parallel: true,
                }))));
        } else {
            block.stmts.push(stmt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::pretty::program_to_string;
    use crate::seqinterp::{run_procedure, ArgValue};
    use crate::value::Value;
    use std::collections::HashMap;

    fn lowered(src: &str) -> (Program, String) {
        let mut p = parse(src).unwrap();
        let infos = crate::sema::check(&mut p).unwrap();
        let changed = lower_random_access(&mut p.procedures[0], &infos[0]);
        assert!(changed);
        crate::sema::check(&mut p).unwrap();
        let s = program_to_string(&p);
        (p, s)
    }

    #[test]
    fn sequential_write_becomes_guarded_loop() {
        let (_, s) = lowered(
            "Procedure f(G: Graph, s: Node, dist: N_P<Int>) {
                s.dist = 0;
            }",
        );
        assert!(s.contains("Foreach (_r1: G.Nodes) ((_r1 == s))"), "{s}");
        assert!(s.contains("_r1.dist = 0;"), "{s}");
    }

    #[test]
    fn write_inside_parallel_loop_untouched() {
        let src = "Procedure f(G: Graph, m: N_P<Node>, x: N_P<Int>) {
            Foreach (n: G.Nodes)(n.m != NIL) {
                Node b = n.m;
                b.x = 1;
            }
        }";
        let mut p = parse(src).unwrap();
        let infos = crate::sema::check(&mut p).unwrap();
        assert!(!lower_random_access(&mut p.procedures[0], &infos[0]));
    }

    #[test]
    fn write_inside_if_at_sequential_level() {
        let (_, s) = lowered(
            "Procedure f(G: Graph, s: Node, dist: N_P<Int>, k: Int) {
                If (k > 0) {
                    s.dist = k;
                }
            }",
        );
        assert!(s.contains("_r1 == s"), "{s}");
    }

    #[test]
    fn semantics_preserved() {
        let g = gm_graph::gen::path(4);
        let src = "Procedure f(G: Graph, s: Node, dist: N_P<Int>) {
            s.dist = 9;
        }";
        let (mut p, _) = lowered(src);
        let infos = crate::sema::check(&mut p).unwrap();
        let out = run_procedure(
            &g,
            &p.procedures[0],
            &infos[0],
            &HashMap::from([("s".to_owned(), ArgValue::Scalar(Value::Node(2)))]),
            0,
        )
        .unwrap();
        assert_eq!(out.node_props["dist"][2], Value::Int(9));
        assert_eq!(out.node_props["dist"][0], Value::Int(0));
    }
}
