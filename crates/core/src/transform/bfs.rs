//! BFS-order graph traversal lowering (§4.1).
//!
//! `InBFS (v: G.Nodes From s) { fwd } InReverse { rev }` becomes
//! level-synchronous frontier expansion:
//!
//! ```text
//! Node_Prop<Int> _lev;               // hop distance from the root
//! Bool _fin = False;
//! Int _cur = -1;
//! Foreach (i: G.Nodes) { i._lev = INF; }
//! Node _rt = s;
//! _rt._lev = 0;                      // lowered further by randacc
//! While (!_fin) {
//!     _fin = True;
//!     _cur += 1;
//!     Foreach (v: G.Nodes)(v._lev == _cur) {
//!         ...fwd...                  // UpNbrs → InNbrs  with level filter
//!         Foreach (t: v.Nbrs)(t._lev == INF) {
//!             t._lev = _cur + 1;     // frontier expansion
//!             _fin &&= False;
//!         }
//!     }
//! }
//! While (_cur >= 0) {                // reverse pass
//!     Foreach (v: G.Nodes)(v._lev == _cur) {
//!         ...rev...                  // DownNbrs → Nbrs with level filter
//!     }
//!     _cur -= 1;
//! }
//! ```

use crate::ast::*;
use crate::astutil::NameGen;
use crate::sema::ProcInfo;
use crate::types::Ty;

/// Lowers every `InBFS` statement in `proc`. Returns whether any was found.
pub fn lower_bfs(proc: &mut Procedure, info: &ProcInfo) -> bool {
    let graph = info.graph.clone();
    let mut names = NameGen::for_procedure(proc);
    let mut changed = false;
    lower_block(&mut proc.body, &graph, &mut names, &mut changed);
    changed
}

fn lower_block(block: &mut Block, graph: &str, names: &mut NameGen, changed: &mut bool) {
    let stmts = std::mem::take(&mut block.stmts);
    for mut stmt in stmts {
        match &mut stmt.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                lower_block(then_branch, graph, names, changed);
                if let Some(eb) = else_branch {
                    lower_block(eb, graph, names, changed);
                }
            }
            StmtKind::While { body, .. } => lower_block(body, graph, names, changed),
            StmtKind::Foreach(f) => lower_block(&mut f.body, graph, names, changed),
            StmtKind::Block(b) => lower_block(b, graph, names, changed),
            _ => {}
        }
        if let StmtKind::InBfs(_) = &stmt.kind {
            let bfs = match stmt.kind {
                StmtKind::InBfs(b) => *b,
                _ => unreachable!("checked above"),
            };
            *changed = true;
            block.stmts.extend(expand_bfs(bfs, graph, names));
        } else {
            block.stmts.push(stmt);
        }
    }
}

fn expand_bfs(mut bfs: BfsStmt, graph: &str, names: &mut NameGen) -> Vec<Stmt> {
    let lev = names.fresh("_lev");
    let fin = names.fresh("_fin");
    let cur = names.fresh("_cur");
    let init_iter = names.fresh("_bi");
    let expand_iter = names.fresh("_bt");
    let root_var = names.fresh("_rt");

    let mut out = vec![
        // Node_Prop<Int> _lev;
        Stmt::synth(StmtKind::VarDecl {
            ty: Ty::NodeProp(Box::new(Ty::Int)),
            name: lev.clone(),
            init: None,
        }),
        // Bool _fin = False;
        Stmt::synth(StmtKind::VarDecl {
            ty: Ty::Bool,
            name: fin.clone(),
            init: Some(Expr::bool(false)),
        }),
        // Int _cur = -1;
        Stmt::synth(StmtKind::VarDecl {
            ty: Ty::Int,
            name: cur.clone(),
            init: Some(Expr::int(-1)),
        }),
        // Foreach (_bi: G.Nodes) { _bi._lev = INF; }
        Stmt::synth(StmtKind::Foreach(Box::new(ForeachStmt {
            iter: init_iter.clone(),
            source: IterSource::Nodes {
                graph: graph.to_owned(),
            },
            filter: None,
            body: Block::of(vec![Stmt::synth(StmtKind::Assign {
                target: Target::Prop {
                    obj: init_iter,
                    prop: lev.clone(),
                },
                op: AssignOp::Assign,
                value: Expr::synth(ExprKind::Inf { negative: false }),
            })]),
            parallel: true,
        }))),
        // Node _rt = <root>;  _rt._lev = 0;
        Stmt::synth(StmtKind::VarDecl {
            ty: Ty::Node,
            name: root_var.clone(),
            init: Some(bfs.root.clone()),
        }),
        Stmt::synth(StmtKind::Assign {
            target: Target::Prop {
                obj: root_var,
                prop: lev.clone(),
            },
            op: AssignOp::Assign,
            value: Expr::int(0),
        }),
    ];

    // Rewrite Up/DownNbrs in the user bodies.
    rewrite_updown_block(&mut bfs.body, &lev, &cur);
    if let Some(rb) = &mut bfs.reverse_body {
        rewrite_updown_block(rb, &lev, &cur);
    }

    // Frontier expansion, fused at the end of the forward body.
    let expansion = Stmt::synth(StmtKind::Foreach(Box::new(ForeachStmt {
        iter: expand_iter.clone(),
        source: IterSource::OutNbrs {
            of: bfs.iter.clone(),
        },
        filter: Some(Expr::binary(
            BinOp::Eq,
            Expr::prop(&expand_iter, &lev),
            Expr::synth(ExprKind::Inf { negative: false }),
        )),
        body: Block::of(vec![
            Stmt::synth(StmtKind::Assign {
                target: Target::Prop {
                    obj: expand_iter.clone(),
                    prop: lev.clone(),
                },
                op: AssignOp::Assign,
                value: Expr::binary(BinOp::Add, Expr::var(&cur), Expr::int(1)),
            }),
            Stmt::synth(StmtKind::Assign {
                target: Target::Scalar(fin.clone()),
                op: AssignOp::And,
                value: Expr::bool(false),
            }),
        ]),
        parallel: true,
    })));

    let mut fwd_body = bfs.body;
    fwd_body.stmts.push(expansion);

    // While (!_fin) { _fin = True; _cur += 1; Foreach (v)(v._lev == _cur) {...} }
    out.push(Stmt::synth(StmtKind::While {
        cond: Expr::synth(ExprKind::Unary {
            op: UnOp::Not,
            expr: Box::new(Expr::var(&fin)),
        }),
        body: Block::of(vec![
            Stmt::synth(StmtKind::Assign {
                target: Target::Scalar(fin.clone()),
                op: AssignOp::Assign,
                value: Expr::bool(true),
            }),
            Stmt::synth(StmtKind::Assign {
                target: Target::Scalar(cur.clone()),
                op: AssignOp::Add,
                value: Expr::int(1),
            }),
            Stmt::synth(StmtKind::Foreach(Box::new(ForeachStmt {
                iter: bfs.iter.clone(),
                source: IterSource::Nodes {
                    graph: graph.to_owned(),
                },
                filter: Some(Expr::binary(
                    BinOp::Eq,
                    Expr::prop(&bfs.iter, &lev),
                    Expr::var(&cur),
                )),
                body: fwd_body,
                parallel: true,
            }))),
        ]),
        do_while: false,
    }));

    // Reverse pass.
    if let Some(rev_body) = bfs.reverse_body {
        out.push(Stmt::synth(StmtKind::While {
            cond: Expr::binary(BinOp::Ge, Expr::var(&cur), Expr::int(0)),
            body: Block::of(vec![
                Stmt::synth(StmtKind::Foreach(Box::new(ForeachStmt {
                    iter: bfs.iter.clone(),
                    source: IterSource::Nodes {
                        graph: graph.to_owned(),
                    },
                    filter: Some(Expr::binary(
                        BinOp::Eq,
                        Expr::prop(&bfs.iter, &lev),
                        Expr::var(&cur),
                    )),
                    body: rev_body,
                    parallel: true,
                }))),
                Stmt::synth(StmtKind::Assign {
                    target: Target::Scalar(cur.clone()),
                    op: AssignOp::Sub,
                    value: Expr::int(1),
                }),
            ]),
            do_while: false,
        }));
    }

    out
}

/// Rewrites `UpNbrs`/`DownNbrs` sources into `InNbrs`/`Nbrs` with level
/// filters, in `Foreach` statements and aggregate expressions.
fn rewrite_updown_block(block: &mut Block, lev: &str, cur: &str) {
    for stmt in &mut block.stmts {
        rewrite_updown_stmt(stmt, lev, cur);
    }
}

fn rewrite_updown_stmt(stmt: &mut Stmt, lev: &str, cur: &str) {
    match &mut stmt.kind {
        StmtKind::VarDecl { init, .. } => {
            if let Some(e) = init {
                rewrite_updown_expr(e, lev, cur);
            }
        }
        StmtKind::Assign { value, .. } => rewrite_updown_expr(value, lev, cur),
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            rewrite_updown_expr(cond, lev, cur);
            rewrite_updown_block(then_branch, lev, cur);
            if let Some(eb) = else_branch {
                rewrite_updown_block(eb, lev, cur);
            }
        }
        StmtKind::While { cond, body, .. } => {
            rewrite_updown_expr(cond, lev, cur);
            rewrite_updown_block(body, lev, cur);
        }
        StmtKind::Foreach(f) => {
            if let Some((new_source, level_filter)) = rewrite_source(&f.source, &f.iter, lev, cur) {
                f.source = new_source;
                f.filter = Some(match f.filter.take() {
                    Some(existing) => Expr::binary(BinOp::And, level_filter, existing),
                    None => level_filter,
                });
            }
            if let Some(filt) = &mut f.filter {
                rewrite_updown_expr(filt, lev, cur);
            }
            rewrite_updown_block(&mut f.body, lev, cur);
        }
        StmtKind::InBfs(b) => {
            rewrite_updown_block(&mut b.body, lev, cur);
            if let Some(rb) = &mut b.reverse_body {
                rewrite_updown_block(rb, lev, cur);
            }
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                rewrite_updown_expr(e, lev, cur);
            }
        }
        StmtKind::Block(b) => rewrite_updown_block(b, lev, cur),
    }
}

fn rewrite_updown_expr(e: &mut Expr, lev: &str, cur: &str) {
    match &mut e.kind {
        ExprKind::Unary { expr, .. } => rewrite_updown_expr(expr, lev, cur),
        ExprKind::Binary { lhs, rhs, .. } => {
            rewrite_updown_expr(lhs, lev, cur);
            rewrite_updown_expr(rhs, lev, cur);
        }
        ExprKind::Ternary {
            cond,
            then_val,
            else_val,
        } => {
            rewrite_updown_expr(cond, lev, cur);
            rewrite_updown_expr(then_val, lev, cur);
            rewrite_updown_expr(else_val, lev, cur);
        }
        ExprKind::Agg(a) => {
            if let Some((new_source, level_filter)) = rewrite_source(&a.source, &a.iter, lev, cur) {
                a.source = new_source;
                a.filter = Some(match a.filter.take() {
                    Some(existing) => Expr::binary(BinOp::And, level_filter, existing),
                    None => level_filter,
                });
            }
            if let Some(f) = &mut a.filter {
                rewrite_updown_expr(f, lev, cur);
            }
            if let Some(b) = &mut a.body {
                rewrite_updown_expr(b, lev, cur);
            }
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                rewrite_updown_expr(a, lev, cur);
            }
        }
        _ => {}
    }
}

/// `UpNbrs` → in-neighbors at level `_cur - 1`; `DownNbrs` → out-neighbors
/// at level `_cur + 1`. Returns the replacement source and the level filter
/// on the iteration variable.
fn rewrite_source(
    source: &IterSource,
    iter_var: &str,
    lev: &str,
    cur: &str,
) -> Option<(IterSource, Expr)> {
    match source {
        IterSource::UpNbrs { of } => Some((
            IterSource::InNbrs { of: of.clone() },
            Expr::binary(
                BinOp::Eq,
                Expr::prop(iter_var, lev),
                Expr::binary(BinOp::Sub, Expr::var(cur), Expr::int(1)),
            ),
        )),
        IterSource::DownNbrs { of } => Some((
            IterSource::OutNbrs { of: of.clone() },
            Expr::binary(
                BinOp::Eq,
                Expr::prop(iter_var, lev),
                Expr::binary(BinOp::Add, Expr::var(cur), Expr::int(1)),
            ),
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::pretty::program_to_string;
    use crate::seqinterp::{run_procedure, ArgValue};
    use crate::value::Value;
    use std::collections::HashMap;

    fn lower_src(src: &str) -> (Program, String) {
        let mut p = parse(src).unwrap();
        let infos = crate::sema::check(&mut p).unwrap();
        let changed = lower_bfs(&mut p.procedures[0], &infos[0]);
        assert!(changed);
        // The lowered program must re-check.
        crate::sema::check(&mut p).unwrap();
        let s = program_to_string(&p);
        (p, s)
    }

    const SIGMA_SRC: &str =
        "Procedure f(G: Graph, root: Node, sigma: N_P<Double>, acc: N_P<Double>) {
        Foreach (i: G.Nodes) {
            i.sigma = 0.0;
        }
        root.sigma = 1.0;
        InBFS (v: G.Nodes From root) {
            v.sigma += Sum(w: v.UpNbrs){w.sigma};
        }
        InReverse {
            v.acc = Sum(w: v.DownNbrs){w.acc} + 1.0;
        }
    }";

    #[test]
    fn lowered_shape() {
        let (_, s) = lower_src(SIGMA_SRC);
        assert!(s.contains("_lev1"), "{s}");
        assert!(s.contains("While ((!_fin2))"), "{s}");
        assert!(s.contains("InNbrs"), "{s}");
        assert!(!s.contains("UpNbrs"), "{s}");
        assert!(!s.contains("DownNbrs"), "{s}");
        assert!(!s.contains("InBFS"), "{s}");
        // Reverse loop counts _cur down.
        assert!(s.contains("_cur3 -= 1"), "{s}");
    }

    /// The lowered program computes the same result as the original on the
    /// sequential interpreter.
    #[test]
    fn lowering_preserves_semantics() {
        let mut b = gm_graph::GraphBuilder::new(5);
        // Diamond with a tail: 0→1,0→2,1→3,2→3,3→4.
        b.extend([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let g = b.build();
        let args = HashMap::from([("root".to_owned(), ArgValue::Scalar(Value::Node(0)))]);

        let mut orig = parse(SIGMA_SRC).unwrap();
        let infos = crate::sema::check(&mut orig).unwrap();
        let r1 = run_procedure(&g, &orig.procedures[0], &infos[0], &args, 0).unwrap();

        let (lowered, _) = lower_src(SIGMA_SRC);
        let mut lowered = lowered;
        let infos2 = crate::sema::check(&mut lowered).unwrap();
        let r2 = run_procedure(&g, &lowered.procedures[0], &infos2[0], &args, 0).unwrap();

        assert_eq!(r1.node_props["sigma"], r2.node_props["sigma"]);
        assert_eq!(r1.node_props["acc"], r2.node_props["acc"]);
        assert_eq!(
            r2.node_props["sigma"],
            vec![
                Value::Double(1.0),
                Value::Double(1.0),
                Value::Double(1.0),
                Value::Double(2.0),
                Value::Double(2.0)
            ]
        );
    }

    #[test]
    fn unreached_vertices_do_not_run_user_code() {
        let mut b = gm_graph::GraphBuilder::new(3);
        b.add_edge(0, 1); // vertex 2 unreachable
        let g = b.build();
        let src = "Procedure f(G: Graph, root: Node, mark: N_P<Int>) {
            InBFS (v: G.Nodes From root) {
                v.mark = 1;
            }
        }";
        let mut p = parse(src).unwrap();
        let infos = crate::sema::check(&mut p).unwrap();
        lower_bfs(&mut p.procedures[0], &infos[0]);
        let infos = crate::sema::check(&mut p).unwrap();
        let out = run_procedure(
            &g,
            &p.procedures[0],
            &infos[0],
            &HashMap::from([("root".to_owned(), ArgValue::Scalar(Value::Node(0)))]),
            0,
        )
        .unwrap();
        assert_eq!(
            out.node_props["mark"],
            vec![Value::Int(1), Value::Int(1), Value::Int(0)]
        );
    }

    #[test]
    fn forward_only_bfs_has_no_reverse_loop() {
        let src = "Procedure f(G: Graph, root: Node, d: N_P<Int>) {
            InBFS (v: G.Nodes From root) {
                v.d = 1;
            }
        }";
        let mut p = parse(src).unwrap();
        let infos = crate::sema::check(&mut p).unwrap();
        lower_bfs(&mut p.procedures[0], &infos[0]);
        let s = program_to_string(&p);
        assert!(!s.contains(">= 0"), "{s}");
    }
}
