//! The Pregel-canonical form check (§3.2).
//!
//! After the §4.1 transformations a program must satisfy:
//!
//! * **Finite state management** — non-recursive, one graph, arbitrary
//!   `If`/`While` over scalars at the sequential level.
//! * **Parallel vertex and neighborhood iteration** — parallel `Foreach`
//!   nests at most two deep; the outer loop covers `G.Nodes`, the inner one
//!   a neighborhood of the outer iterator; no `Return` inside loops.
//! * **Message pushing** — inner loops never modify the outer iterator's
//!   values.
//! * **Random writing** — writes to arbitrary vertices only inside
//!   vertex-parallel phases; no random reads anywhere.
//! * **Edge properties** — accessed only through `ToEdge()` on an
//!   out-neighbor iterator.
//!
//! Violations are reported with the paper's vocabulary so a user
//! understands which rule the program broke.

use crate::ast::*;
use crate::diag::Diagnostics;
use crate::sema::{ProcInfo, SymKind};
use crate::types::Ty;

/// Checks that `proc` (post-transformation) is Pregel-canonical.
///
/// # Errors
///
/// Returns one diagnostic per violation.
pub fn check_canonical(proc: &Procedure, info: &ProcInfo) -> Result<(), Diagnostics> {
    let mut cx = Check {
        info,
        diags: Diagnostics::new(),
    };
    cx.seq_block(&proc.body);
    if cx.diags.has_errors() {
        Err(cx.diags)
    } else {
        Ok(())
    }
}

struct Check<'a> {
    info: &'a ProcInfo,
    diags: Diagnostics,
}

impl Check<'_> {
    fn is_node_var(&self, name: &str) -> bool {
        self.info.symbol(name).is_some_and(|s| s.ty == Ty::Node)
    }

    // ---- sequential context ----

    fn seq_block(&mut self, block: &Block) {
        for stmt in &block.stmts {
            self.seq_stmt(stmt);
        }
    }

    fn seq_stmt(&mut self, stmt: &Stmt) {
        let span = stmt.span;
        match &stmt.kind {
            StmtKind::VarDecl { init, .. } => {
                if let Some(e) = init {
                    self.seq_expr(e);
                }
            }
            StmtKind::Assign { target, value, .. } => {
                if let Target::Prop { .. } = target {
                    self.diags.error(
                        span,
                        "random vertex access in a sequential phase (should have been \
                         lowered by the Random Access transformation)",
                    );
                }
                self.seq_expr(value);
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.seq_expr(cond);
                self.seq_block(then_branch);
                if let Some(eb) = else_branch {
                    self.seq_block(eb);
                }
            }
            StmtKind::While {
                cond,
                body,
                do_while,
            } => {
                if *do_while {
                    self.diags
                        .error(span, "Do-While loops are not Pregel-canonical");
                }
                self.seq_expr(cond);
                self.seq_block(body);
            }
            StmtKind::Foreach(f) => {
                if !f.parallel {
                    self.diags.error(
                        span,
                        "sequential For over vertices cannot be mapped to Pregel",
                    );
                    return;
                }
                if !matches!(f.source, IterSource::Nodes { .. }) {
                    self.diags
                        .error(span, "a vertex-parallel phase must iterate over G.Nodes");
                    return;
                }
                if let Some(filter) = &f.filter {
                    self.vertex_expr(filter, &f.iter, None);
                }
                self.vertex_block(&f.body, &f.iter);
            }
            StmtKind::InBfs(_) => {
                self.diags
                    .error(span, "InBFS remains after lowering (unsupported nesting)");
            }
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    self.seq_expr(e);
                }
            }
            StmtKind::Block(b) => self.seq_block(b),
        }
    }

    fn seq_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Prop { .. } => {
                self.diags.error(
                    e.span,
                    "random reading of a vertex property is not allowed (\u{a7}3.2)",
                );
            }
            ExprKind::Agg(_) => {
                self.diags.error(
                    e.span,
                    "aggregate remains after lowering (unsupported position)",
                );
            }
            ExprKind::Call { obj, method, .. } => {
                let graph_methods = ["NumNodes", "NumEdges", "PickRandom"];
                if !graph_methods.contains(&method.as_str()) {
                    self.diags.error(
                        e.span,
                        format!("`{obj}.{method}()` is not available in a sequential phase"),
                    );
                }
            }
            ExprKind::Unary { expr, .. } => self.seq_expr(expr),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.seq_expr(lhs);
                self.seq_expr(rhs);
            }
            ExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                self.seq_expr(cond);
                self.seq_expr(then_val);
                self.seq_expr(else_val);
            }
            _ => {}
        }
    }

    // ---- vertex-parallel context (outer loop body) ----

    fn vertex_block(&mut self, block: &Block, outer: &str) {
        for stmt in &block.stmts {
            self.vertex_stmt(stmt, outer);
        }
    }

    fn vertex_stmt(&mut self, stmt: &Stmt, outer: &str) {
        let span = stmt.span;
        match &stmt.kind {
            StmtKind::VarDecl { ty, init, .. } => {
                if matches!(ty, Ty::NodeProp(_) | Ty::EdgeProp(_)) {
                    self.diags
                        .error(span, "property declarations must be sequential");
                }
                if let Some(e) = init {
                    self.vertex_expr(e, outer, None);
                }
            }
            StmtKind::Assign { target, op, value } => {
                self.vertex_expr(value, outer, None);
                match target {
                    Target::Scalar(name) => {
                        let is_local = false; // locals resolved below
                        let _ = is_local;
                        // Scalar writes: vertex locals are fine; globals
                        // need a commutative reduction.
                        if self.is_global_scalar(name, outer) && !op.is_reduction() {
                            self.diags.error(
                                span,
                                format!(
                                    "plain assignment to global `{name}` from a \
                                     vertex-parallel phase; use a reduction"
                                ),
                            );
                        }
                    }
                    Target::Prop { obj, .. } => {
                        // Own-vertex write or random write — both fine here.
                        if !self.is_node_var(obj) && obj != outer {
                            self.diags.error(
                                span,
                                format!("`{obj}` is not a vertex in a property write"),
                            );
                        }
                    }
                }
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.vertex_expr(cond, outer, None);
                self.vertex_block(then_branch, outer);
                if let Some(eb) = else_branch {
                    self.vertex_block(eb, outer);
                }
            }
            StmtKind::While { .. } => {
                self.diags
                    .error(span, "While loops inside a vertex-parallel phase");
            }
            StmtKind::Foreach(f) => {
                if !f.source.is_neighborhood() || f.source.base() != outer {
                    self.diags.error(
                        span,
                        "an inner loop must iterate a neighborhood of the outer iterator",
                    );
                    return;
                }
                if let Some(filter) = &f.filter {
                    self.vertex_expr(filter, outer, Some(&f.iter));
                }
                self.inner_block(&f.body, outer, &f.iter, &f.source);
            }
            StmtKind::InBfs(_) => {
                self.diags
                    .error(span, "InBFS inside a vertex-parallel phase");
            }
            StmtKind::Return(_) => {
                self.diags
                    .error(span, "Return is not allowed inside parallel loops");
            }
            StmtKind::Block(b) => self.vertex_block(b, outer),
        }
    }

    fn is_global_scalar(&self, name: &str, _outer: &str) -> bool {
        matches!(
            self.info.symbol(name),
            Some(s) if matches!(s.kind, SymKind::Param | SymKind::Local)
                && s.ty.is_value()
        )
        // Vertex locals are also SymKind::Local; the translation pass
        // distinguishes by declaration position. For checking purposes a
        // plain assignment to any scalar is accepted when the scalar is
        // declared inside the loop; the translator re-verifies. Here we are
        // conservative only about reductions on known-global names — the
        // precise check happens in translate, which knows declaration
        // positions.
    }

    // ---- inner (neighborhood) loop context ----

    fn inner_block(&mut self, block: &Block, outer: &str, inner: &str, source: &IterSource) {
        for stmt in &block.stmts {
            let span = stmt.span;
            match &stmt.kind {
                StmtKind::VarDecl { ty, init, .. } => {
                    if matches!(ty, Ty::NodeProp(_) | Ty::EdgeProp(_)) {
                        self.diags
                            .error(span, "property declarations must be sequential");
                    }
                    if let Some(e) = init {
                        self.vertex_expr(e, outer, Some(inner));
                    }
                }
                StmtKind::Assign { target, op, value } => {
                    self.vertex_expr(value, outer, Some(inner));
                    match target {
                        Target::Prop { obj, .. } if obj == outer => {
                            self.diags.error(
                                span,
                                "the inner loop modifies the outer vertex's value — \
                                 this requires message pulling (\u{a7}3.2); the \
                                 Flipping Edges rule could not be applied",
                            );
                        }
                        Target::Prop { obj, .. } if obj == inner => {}
                        Target::Prop { obj, .. } => {
                            self.diags.error(
                                span,
                                format!(
                                    "random write to `{obj}` from an inner loop is not \
                                     supported"
                                ),
                            );
                        }
                        Target::Scalar(name) => {
                            if !op.is_reduction() {
                                // Local temporaries of the inner body are ok;
                                // conservatively accept Edge/Node locals.
                                let is_value_local = self
                                    .info
                                    .symbol(name)
                                    .is_some_and(|s| matches!(s.ty, Ty::Edge | Ty::Node));
                                if !is_value_local {
                                    self.diags.error(
                                        span,
                                        format!(
                                            "plain assignment to `{name}` inside an inner \
                                             loop; use a reduction"
                                        ),
                                    );
                                }
                            }
                        }
                    }
                }
                StmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    self.vertex_expr(cond, outer, Some(inner));
                    self.inner_block(then_branch, outer, inner, source);
                    if let Some(eb) = else_branch {
                        self.inner_block(eb, outer, inner, source);
                    }
                }
                StmtKind::Foreach(_) => {
                    self.diags.error(
                        span,
                        "parallel Foreach can be doubly nested at most (\u{a7}3.2)",
                    );
                }
                StmtKind::While { .. } | StmtKind::InBfs(_) | StmtKind::Return(_) => {
                    self.diags
                        .error(span, "only straight-line code inside inner loops");
                }
                StmtKind::Block(b) => self.inner_block(b, outer, inner, source),
            }
            // Edge properties only through the source vertex.
            if let StmtKind::VarDecl {
                ty: Ty::Edge,
                init: Some(init),
                ..
            } = &stmt.kind
            {
                if matches!(&init.kind, ExprKind::Call { method, .. } if method == "ToEdge")
                    && !matches!(source, IterSource::OutNbrs { .. })
                {
                    self.diags.error(
                        span,
                        "edge properties are accessible only from the source vertex \
                         (out-neighbor iteration)",
                    );
                }
            }
        }
    }

    /// Expressions in vertex context: aggregates must be gone; calls are
    /// degree-like only; property reads are checked by the translator.
    fn vertex_expr(&mut self, e: &Expr, outer: &str, inner: Option<&str>) {
        match &e.kind {
            ExprKind::Agg(_) => {
                self.diags.error(e.span, "aggregate remains after lowering");
            }
            ExprKind::Prop { obj, .. } => {
                let known = obj == outer
                    || inner == Some(obj.as_str())
                    || self
                        .info
                        .symbol(obj)
                        .is_some_and(|s| matches!(s.ty, Ty::Edge | Ty::Node));
                if !known {
                    self.diags
                        .error(e.span, format!("cannot read property through `{obj}`"));
                }
                // Reads through arbitrary (non-iterator) node variables are
                // random reads; allowed only when reading *own* data via a
                // local alias is impossible to distinguish syntactically, so
                // the translator performs the precise payload analysis and
                // rejects what it cannot ship.
            }
            ExprKind::Call { obj, method, .. } => {
                let vertex_methods = ["Degree", "OutDegree", "NumNbrs", "InDegree", "ToEdge"];
                let graph_methods = ["NumNodes", "NumEdges"];
                if !vertex_methods.contains(&method.as_str())
                    && !graph_methods.contains(&method.as_str())
                {
                    self.diags.error(
                        e.span,
                        format!("`{obj}.{method}()` is not available in a vertex phase"),
                    );
                }
                if method == "PickRandom" {
                    self.diags.error(
                        e.span,
                        "PickRandom is a sequential-phase (master) operation",
                    );
                }
            }
            ExprKind::Unary { expr, .. } => self.vertex_expr(expr, outer, inner),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.vertex_expr(lhs, outer, inner);
                self.vertex_expr(rhs, outer, inner);
            }
            ExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                self.vertex_expr(cond, outer, inner);
                self.vertex_expr(then_val, outer, inner);
                self.vertex_expr(else_val, outer, inner);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn canonical_result(src: &str) -> Result<(), Diagnostics> {
        let mut p = parse(src).unwrap();
        let infos = crate::sema::check(&mut p).unwrap();
        check_canonical(&p.procedures[0], &infos[0])
    }

    #[test]
    fn push_program_is_canonical() {
        canonical_result(
            "Procedure f(G: Graph, foo: N_P<Int>, bar: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    Foreach (t: n.Nbrs) {
                        t.foo += n.bar;
                    }
                }
            }",
        )
        .unwrap();
    }

    #[test]
    fn pull_program_is_rejected() {
        let err = canonical_result(
            "Procedure f(G: Graph, foo: N_P<Int>, bar: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    Foreach (t: n.InNbrs) {
                        n.foo += t.bar;
                    }
                }
            }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("message pulling"), "{err}");
    }

    #[test]
    fn sequential_random_read_rejected() {
        let err = canonical_result(
            "Procedure f(G: Graph, s: Node, x: N_P<Int>) : Int {
                Int v = s.x;
                Return v;
            }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("random reading"), "{err}");
    }

    #[test]
    fn sequential_random_write_rejected_if_not_lowered() {
        let err = canonical_result(
            "Procedure f(G: Graph, s: Node, x: N_P<Int>) {
                s.x = 1;
            }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("sequential phase"), "{err}");
    }

    #[test]
    fn triple_nesting_rejected() {
        let err = canonical_result(
            "Procedure f(G: Graph, x: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    Foreach (t: n.Nbrs) {
                        Foreach (u: t.Nbrs) {
                            u.x += 1;
                        }
                    }
                }
            }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("doubly nested"), "{err}");
    }

    #[test]
    fn return_inside_loop_rejected() {
        let err = canonical_result(
            "Procedure f(G: Graph) : Int {
                Foreach (n: G.Nodes) {
                    Return 1;
                }
                Return 0;
            }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("Return"), "{err}");
    }

    #[test]
    fn random_write_in_vertex_phase_accepted() {
        canonical_result(
            "Procedure f(G: Graph, m: N_P<Node>, x: N_P<Int>) {
                Foreach (n: G.Nodes)(n.m != NIL) {
                    Node b = n.m;
                    b.x = 1;
                }
            }",
        )
        .unwrap();
    }

    #[test]
    fn edge_prop_through_in_neighbors_rejected() {
        let err = canonical_result(
            "Procedure f(G: Graph, len: E_P<Int>, d: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    Foreach (t: n.InNbrs) {
                        Edge e = t.ToEdge();
                        t.d min= e.len;
                    }
                }
            }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("source vertex"), "{err}");
    }

    #[test]
    fn receiver_side_filter_accepted() {
        canonical_result(
            "Procedure f(G: Graph, suitor: N_P<Node>) {
                Foreach (b: G.Nodes)(b.suitor == NIL) {
                    Foreach (g: b.Nbrs)(g.suitor == NIL) {
                        g.suitor = b;
                    }
                }
            }",
        )
        .unwrap();
    }

    #[test]
    fn global_reduction_from_vertex_phase_accepted() {
        canonical_result(
            "Procedure f(G: Graph, cnt: N_P<Int>, K: Int) : Int {
                Int s = 0;
                Foreach (n: G.Nodes)(n.cnt > K) {
                    s += n.cnt;
                }
                Return s;
            }",
        )
        .unwrap();
    }
}
