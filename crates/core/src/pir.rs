//! The Pregel intermediate representation: an executable state machine.
//!
//! This is the artifact the §3.1 translation produces (the paper's
//! generated GPS Java program, in structured form). Two backends consume
//! it: the `gm-interp` crate executes it on the `gm-pregel` runtime, and
//! [`crate::javagen`] prints it as GPS-style Java source.
//!
//! Execution contract (mirrors GPS):
//!
//! * One [`State`] with a vertex kernel is executed per superstep. States
//!   without a vertex kernel are *master-only junctions*: the master runs
//!   through them (including transitions) within a single `master.compute`
//!   call, so they cost no timestep.
//! * A state's [`State::master`] code runs master-side at the beginning of
//!   the superstep in which the state executes.
//! * A state's [`State::post`] code runs master-side at the beginning of
//!   the *next* superstep, before the transition is evaluated — this is
//!   where vertex-to-master reductions are folded into master variables
//!   (the paper's `S = S + Global.get("S")`).
//! * Messages sent by a state's kernel are consumed by the
//!   [`VertexKernel::recvs`] handlers of the next vertex state executed.
//!
//! Expressions reuse [`crate::ast::Expr`] with a naming convention:
//! property reads through [`SELF`] refer to the executing vertex, and
//! variables starting with [`PAYLOAD_PREFIX`] refer to message fields.

use crate::ast::{AssignOp, Expr};
use crate::types::Ty;
use std::fmt;

/// The distinguished vertex-variable name meaning "the executing vertex".
pub const SELF: &str = "_self";

/// The distinguished edge-variable name meaning "the edge being sent over"
/// (valid inside `SendToNbrs` payload expressions).
pub const EDGE: &str = "_edge";

/// Prefix for message-payload field references inside receive handlers.
pub const PAYLOAD_PREFIX: &str = "_pl_";

/// Message tag reserved for the incoming-neighbors construction preamble.
pub const IN_NBRS_TAG: u8 = u8::MAX;

/// Per-message wire envelope: the destination vertex id, as GPS serializes
/// it ahead of the payload. Manual baselines use the same constant so the
/// network-I/O comparison is apples-to-apples.
pub const ENVELOPE_BYTES: u64 = 4;

/// Identifier of a state.
pub type StateId = usize;

/// A compiled Pregel program.
#[derive(Clone, Debug)]
pub struct PregelProgram {
    /// Procedure name.
    pub name: String,
    /// The graph parameter's (unique) name.
    pub graph_param: String,
    /// Non-graph scalar parameters, in order (name, type).
    pub scalar_params: Vec<(String, Ty)>,
    /// Node-property parameters and locals (name, element type).
    pub node_props: Vec<(String, Ty)>,
    /// Edge-property parameters (name, element type).
    pub edge_props: Vec<(String, Ty)>,
    /// Master-side variables: scalar params plus sequential locals.
    pub globals: Vec<(String, Ty)>,
    /// Message layouts, indexed by tag.
    pub messages: Vec<MessageLayout>,
    /// Whether the two-superstep in-neighbor-array preamble is required.
    pub uses_in_nbrs: bool,
    /// Per-tag combiner operator, when the receive handler is a single
    /// unguarded commutative reduction of a single payload field (Pregel's
    /// combiner optimization; populated only when the compiler option is
    /// on).
    pub combinable: Vec<Option<AssignOp>>,
    /// Declared return type.
    pub ret: Option<Ty>,
    /// Per-state pullability verdicts, index-aligned with
    /// [`PregelProgram::states`] (see [`crate::pullability`]). Empty until
    /// the compiler's annotate pass runs; runtimes treat an empty vector
    /// as "analysis not available" and may run it themselves.
    pub pullable: Vec<crate::pullability::Pullability>,
    /// The state machine. `states[0]` is the entry.
    pub states: Vec<State>,
}

impl PregelProgram {
    /// Number of states with a vertex kernel — the paper's "vertex-centric
    /// kernels" count (§5.1 reports nine for Betweenness Centrality).
    pub fn num_vertex_kernels(&self) -> usize {
        self.states.iter().filter(|s| s.vertex.is_some()).count()
    }

    /// Number of distinct message types (§5.1 reports four for BC).
    pub fn num_message_types(&self) -> usize {
        self.messages.len()
    }

    /// Serialized byte size of one message with the given tag: the
    /// destination-id envelope, the payload widths, plus one tag byte when
    /// the program has several message types.
    pub fn message_bytes(&self, tag: u8) -> u64 {
        let payload: u64 = self.messages[tag as usize]
            .fields
            .iter()
            .map(|(_, ty)| ty.byte_width())
            .sum();
        let tag_byte = if self.needs_tag_byte() { 1 } else { 0 };
        ENVELOPE_BYTES + payload + tag_byte
    }

    /// Whether messages carry an explicit tag byte (aka the paper's
    /// Multiple Communication pattern fired).
    pub fn needs_tag_byte(&self) -> bool {
        self.messages.len() + usize::from(self.uses_in_nbrs) > 1
    }

    /// Byte size of the in-neighbor-construction preamble message (the
    /// envelope, one vertex id, plus the tag byte when tagging is on).
    pub fn in_nbrs_message_bytes(&self) -> u64 {
        ENVELOPE_BYTES + Ty::Node.byte_width() + u64::from(self.needs_tag_byte())
    }

    /// Whether `state` may execute gather-side under a pull schedule
    /// (also true for master-only or sendless states, whose gather phase
    /// is empty). `false` when the pullability pass has not run.
    pub fn state_pullable(&self, state: StateId) -> bool {
        self.pullable.get(state).is_some_and(|p| p.is_pullable())
    }

    /// Whether a pull schedule makes sense at all: at least one state's
    /// sends can run gather-side. Requesting pull on a program where this
    /// is false is a configuration error, not a silent fallback.
    pub fn pull_supported(&self) -> bool {
        self.pullable
            .iter()
            .any(|p| matches!(p, crate::pullability::Pullability::Pullable { .. }))
    }

    /// A coarse size measure over the state machine: one per state plus
    /// every master/post instruction, vertex-kernel instruction and
    /// receive step — the PIR node count the per-pass compile timings
    /// report for `translate` and `optimize`.
    pub fn num_instrs(&self) -> usize {
        self.states
            .iter()
            .map(|s| {
                1 + s.master.len()
                    + s.post.len()
                    + s.vertex.as_ref().map_or(0, |k| {
                        k.body.len() + k.recvs.iter().map(|r| r.steps.len()).sum::<usize>()
                    })
            })
            .sum()
    }
}

/// The payload layout of one message type.
#[derive(Clone, Debug, PartialEq)]
pub struct MessageLayout {
    /// Tag value (index into [`PregelProgram::messages`]).
    pub tag: u8,
    /// Field names (referenced as `_pl_<name>` in recv expressions) and
    /// their declared Green-Marl types.
    pub fields: Vec<(String, Ty)>,
}

/// One state of the machine.
#[derive(Clone, Debug)]
pub struct State {
    /// Master code run on arrival (same superstep as the vertex phase).
    pub master: Vec<MInstr>,
    /// Vertex kernel, if this state has a vertex-parallel phase.
    pub vertex: Option<VertexKernel>,
    /// Master code run at the start of the *next* superstep (aggregation
    /// folds), before the transition is evaluated.
    pub post: Vec<MInstr>,
    /// Where to go next.
    pub transition: Transition,
}

/// Control-flow decision after a state.
#[derive(Clone, Debug)]
pub enum Transition {
    /// Unconditional successor.
    Goto(StateId),
    /// Conditional successor; `cond` is evaluated master-side.
    Branch {
        /// Condition over master globals.
        cond: Expr,
        /// Successor when true.
        then_to: StateId,
        /// Successor when false.
        else_to: StateId,
    },
    /// Stop the computation.
    Halt,
}

/// Master-side instructions (operate on globals).
#[derive(Clone, Debug)]
pub enum MInstr {
    /// `name op= value` over master variables.
    Assign {
        /// Target global.
        name: String,
        /// Operator.
        op: AssignOp,
        /// Master-context expression.
        value: Expr,
    },
    /// Folds the vertex aggregate under `agg_key` into global `name`
    /// with `op` (no-op if no vertex wrote the aggregate).
    FoldAgg {
        /// Target global.
        name: String,
        /// Combining operator.
        op: AssignOp,
        /// Aggregation key (the global's name).
        agg_key: String,
    },
    /// Conditional master code.
    If {
        /// Condition over master globals.
        cond: Expr,
        /// True branch.
        then_branch: Vec<MInstr>,
        /// False branch.
        else_branch: Vec<MInstr>,
    },
    /// Sets the procedure's return value and halts after this master block.
    SetReturn(Option<Expr>),
}

/// The vertex-parallel part of a state.
#[derive(Clone, Debug, Default)]
pub struct VertexKernel {
    /// Message handlers for messages sent by the previous vertex state.
    /// They run on every vertex that received messages, unconditionally.
    pub recvs: Vec<RecvHandler>,
    /// Gate for [`VertexKernel::body`]: the outer loop's filter, evaluated
    /// per vertex over its own properties and broadcast globals.
    pub filter: Option<Expr>,
    /// Per-vertex code (local computation and sends).
    pub body: Vec<VInstr>,
    /// Broadcast globals read by this kernel (filter, body, or recvs).
    pub reads_globals: Vec<String>,
}

/// A message handler for one tag.
#[derive(Clone, Debug)]
pub struct RecvHandler {
    /// Message tag handled.
    pub tag: u8,
    /// Receiver-side guard (own props, broadcast globals, payload fields);
    /// evaluated against the vertex state as of the start of the message
    /// batch (snapshot semantics for plain assignments — see DESIGN.md).
    pub guard: Option<Expr>,
    /// Steps executed per message passing the guard.
    pub steps: Vec<RecvStep>,
}

/// One guarded receive action (guards come from `If`s inside inner loops).
#[derive(Clone, Debug)]
pub struct RecvStep {
    /// Additional per-step guard.
    pub guard: Option<Expr>,
    /// The action.
    pub action: RecvAction,
}

/// Actions a receive handler may perform.
#[derive(Clone, Debug)]
pub enum RecvAction {
    /// `self.prop op= value`.
    WriteOwn {
        /// Target property.
        prop: String,
        /// Operator.
        op: AssignOp,
        /// Expression over own props, payload fields, broadcast globals.
        value: Expr,
    },
    /// Reduce into a master global.
    ReduceGlobal {
        /// Target global.
        name: String,
        /// Reduction operator (must be commutative).
        op: AssignOp,
        /// Expression as in [`RecvAction::WriteOwn`].
        value: Expr,
    },
    /// Store the payload's sender id into the in-neighbor array
    /// (preamble state only).
    StoreInNbr,
}

/// Per-vertex instructions in a kernel body.
#[derive(Clone, Debug)]
pub enum VInstr {
    /// Declare/assign a per-vertex local temporary.
    Local {
        /// Local name.
        name: String,
        /// Operator (usually `=`).
        op: AssignOp,
        /// Vertex-context expression.
        value: Expr,
        /// Declared type.
        ty: Ty,
    },
    /// Write the executing vertex's own property.
    WriteOwn {
        /// Target property.
        prop: String,
        /// Operator (`Defer` writes apply at the end of the kernel).
        op: AssignOp,
        /// Vertex-context expression.
        value: Expr,
    },
    /// Reduce into a master global.
    ReduceGlobal {
        /// Target global.
        name: String,
        /// Reduction operator.
        op: AssignOp,
        /// Vertex-context expression.
        value: Expr,
    },
    /// Send a message to every out-neighbor. Payload expressions may
    /// reference the connecting edge through the [`EDGE`] variable.
    SendToNbrs {
        /// Message tag.
        tag: u8,
        /// Per-field payload expressions, in layout order.
        payload: Vec<Expr>,
    },
    /// Send a message to every in-neighbor (requires the preamble).
    SendToInNbrs {
        /// Message tag.
        tag: u8,
        /// Payload expressions (no edge access on reverse edges).
        payload: Vec<Expr>,
    },
    /// Send a message to one vertex by id (the Random Writing pattern).
    SendTo {
        /// Node-valued destination expression.
        dst: Expr,
        /// Message tag.
        tag: u8,
        /// Payload expressions.
        payload: Vec<Expr>,
    },
    /// Send this vertex's id to all out-neighbors (preamble state).
    SendIdToNbrs,
    /// Conditional vertex code.
    If {
        /// Vertex-context condition.
        cond: Expr,
        /// True branch.
        then_branch: Vec<VInstr>,
        /// False branch.
        else_branch: Vec<VInstr>,
    },
}

impl fmt::Display for PregelProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pregel program `{}`: {} states ({} vertex kernels), {} message types{}",
            self.name,
            self.states.len(),
            self.num_vertex_kernels(),
            self.num_message_types(),
            if self.uses_in_nbrs {
                ", in-neighbor preamble"
            } else {
                ""
            }
        )?;
        for (i, s) in self.states.iter().enumerate() {
            let kind = if s.vertex.is_some() {
                "vertex"
            } else {
                "master"
            };
            let trans = match &s.transition {
                Transition::Goto(t) => format!("goto {t}"),
                Transition::Branch {
                    then_to, else_to, ..
                } => format!("branch {then_to}/{else_to}"),
                Transition::Halt => "halt".to_owned(),
            };
            writeln!(f, "  state {i} [{kind}] -> {trans}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_program() -> PregelProgram {
        PregelProgram {
            name: "p".into(),
            graph_param: "G".into(),
            scalar_params: vec![],
            node_props: vec![("x".into(), Ty::Int)],
            edge_props: vec![],
            globals: vec![],
            messages: vec![
                MessageLayout {
                    tag: 0,
                    fields: vec![("a".into(), Ty::Int), ("b".into(), Ty::Double)],
                },
                MessageLayout {
                    tag: 1,
                    fields: vec![("c".into(), Ty::Bool)],
                },
            ],
            uses_in_nbrs: false,
            combinable: vec![None, None],
            ret: None,
            pullable: vec![],
            states: vec![State {
                master: vec![],
                vertex: Some(VertexKernel::default()),
                post: vec![],
                transition: Transition::Halt,
            }],
        }
    }

    #[test]
    fn message_bytes_include_tag_when_multiple_types() {
        let p = tiny_program();
        assert!(p.needs_tag_byte());
        assert_eq!(p.message_bytes(0), ENVELOPE_BYTES + 4 + 8 + 1);
        assert_eq!(p.message_bytes(1), ENVELOPE_BYTES + 1 + 1);
    }

    #[test]
    fn single_message_type_has_no_tag_byte() {
        let mut p = tiny_program();
        p.messages.pop();
        assert!(!p.needs_tag_byte());
        assert_eq!(p.message_bytes(0), ENVELOPE_BYTES + 12);
    }

    #[test]
    fn in_nbrs_preamble_counts_as_a_type() {
        let mut p = tiny_program();
        p.messages.pop();
        p.uses_in_nbrs = true;
        assert!(p.needs_tag_byte());
        assert_eq!(p.in_nbrs_message_bytes(), ENVELOPE_BYTES + 4 + 1);
    }

    #[test]
    fn kernel_counts() {
        let p = tiny_program();
        assert_eq!(p.num_vertex_kernels(), 1);
        assert_eq!(p.num_message_types(), 2);
        let display = p.to_string();
        assert!(
            display.contains("1 vertex kernels") || display.contains("(1 vertex"),
            "{display}"
        );
    }
}
