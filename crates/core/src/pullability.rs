//! Pullability analysis: which vertex states can run gather-side.
//!
//! Push execution evaluates each active vertex's send instruction and
//! routes one message per out-edge; pull execution inverts the loop — the
//! *receiver* walks its in-edges and folds the senders' messages in place,
//! with no per-message allocation or routing. That inversion is only
//! sound when the runtime can obtain, for every (sender, edge) pair, the
//! exact message push would have produced. This pass classifies each
//! state of a [`PregelProgram`] accordingly; the runtime consults the
//! verdicts (via [`PregelProgram::pullable`]) when a pull or auto
//! schedule is requested.
//!
//! Two pull flavors exist, and the verdict records which applies:
//!
//! * **Captured** (`edge_dependent: false`): the payload does not mention
//!   the connecting edge, so every out-neighbor receives the same value.
//!   The runtime runs the kernel normally with sends suppressed, captures
//!   the evaluated message once at the send site, and gather clones it
//!   per in-edge. Because capture happens at the original send point, any
//!   guards, vertex-local temporaries, or later property writes are
//!   irrelevant — the captured value is bit-identical to what push would
//!   have sent, by construction.
//! * **Recomputed** (`edge_dependent: true`): the payload reads the
//!   [`EDGE`] variable, so each out-edge carries a different value and a
//!   single capture cannot represent it. Gather instead re-evaluates the
//!   payload against the sender's post-kernel state. That is only exact
//!   when every input to the payload still holds its send-point value
//!   after the kernel finishes: no kernel write (immediate or deferred)
//!   may target a property the payload reads, the payload may not read
//!   vertex-local temporaries (gone after the kernel), and it may not
//!   call non-pure builtins. Broadcast globals and edge properties are
//!   read-only during the vertex phase and therefore always safe.
//!
//! Anything else — computed-destination sends (`SendTo`, the paper's
//! random-writing pattern), reverse-edge sends (`SendToInNbrs`), several
//! send sites in one kernel, or an unstable edge-dependent payload — is
//! classified [`Pullability::PushOnly`] with a human-readable reason, and
//! the runtime falls back to push for that state.

use crate::ast::{Expr, ExprKind};
use crate::pir::{PregelProgram, State, VInstr, EDGE, SELF};

/// Per-state verdict of the analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pullability {
    /// No vertex kernel, or a kernel that sends nothing: a pull superstep
    /// degenerates to an empty gather and is trivially exact.
    NoSends,
    /// The state's single send site can run gather-side.
    Pullable {
        /// `true` when the payload reads the connecting edge and gather
        /// must re-evaluate it per in-edge (the *recomputed* flavor);
        /// `false` when one captured value serves every out-neighbor.
        edge_dependent: bool,
    },
    /// The state must run push-side; `reason` says why.
    PushOnly {
        /// Human-readable explanation (surfaces in errors and reports).
        reason: String,
    },
}

impl Pullability {
    /// Whether a pull schedule may execute this state gather-side.
    pub fn is_pullable(&self) -> bool {
        !matches!(self, Pullability::PushOnly { .. })
    }
}

/// Classifies every state of `program`. The result is index-aligned with
/// `program.states`.
pub fn analyze(program: &PregelProgram) -> Vec<Pullability> {
    program.states.iter().map(analyze_state).collect()
}

/// Runs [`analyze`] and stamps the verdicts onto the program.
pub fn annotate(program: &mut PregelProgram) {
    program.pullable = analyze(program);
}

fn analyze_state(state: &State) -> Pullability {
    let Some(kernel) = &state.vertex else {
        return Pullability::NoSends;
    };

    let mut sends = Vec::new();
    collect_sends(&kernel.body, &mut sends);
    let send = match sends.as_slice() {
        [] => return Pullability::NoSends,
        [one] => *one,
        many => {
            return Pullability::PushOnly {
                reason: format!("{} send sites in one kernel", many.len()),
            }
        }
    };

    match send {
        VInstr::SendIdToNbrs => Pullability::Pullable {
            edge_dependent: false,
        },
        VInstr::SendToInNbrs { .. } => Pullability::PushOnly {
            reason: "sends along in-edges (reverse direction)".into(),
        },
        VInstr::SendTo { .. } => Pullability::PushOnly {
            reason: "sends to a computed destination (random writing)".into(),
        },
        VInstr::SendToNbrs { payload, .. } => {
            if !payload.iter().any(mentions_edge) {
                // Captured flavor: exact regardless of the rest of the
                // kernel, because the value is taken at the send site.
                return Pullability::Pullable {
                    edge_dependent: false,
                };
            }
            match check_recompute_stability(&kernel.body, payload) {
                Ok(()) => Pullability::Pullable {
                    edge_dependent: true,
                },
                Err(reason) => Pullability::PushOnly { reason },
            }
        }
        // collect_sends only yields send instructions.
        _ => unreachable!("non-send collected as send site"),
    }
}

fn collect_sends<'a>(body: &'a [VInstr], out: &mut Vec<&'a VInstr>) {
    for instr in body {
        match instr {
            VInstr::SendToNbrs { .. }
            | VInstr::SendToInNbrs { .. }
            | VInstr::SendTo { .. }
            | VInstr::SendIdToNbrs => out.push(instr),
            VInstr::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_sends(then_branch, out);
                collect_sends(else_branch, out);
            }
            VInstr::Local { .. } | VInstr::WriteOwn { .. } | VInstr::ReduceGlobal { .. } => {}
        }
    }
}

/// Checks that an edge-dependent payload evaluates to the same values
/// against the sender's post-kernel state as it did at the send point.
fn check_recompute_stability(body: &[VInstr], payload: &[Expr]) -> Result<(), String> {
    // Everything the payload reads.
    let mut self_props = Vec::new();
    let mut vars = Vec::new();
    let mut bad_call = None;
    for field in payload {
        scan_expr(field, &mut |e| match &e.kind {
            ExprKind::Prop { obj, prop } if obj == SELF => {
                self_props.push(prop.clone());
            }
            ExprKind::Var(name) if name != SELF && name != EDGE => {
                vars.push(name.clone());
            }
            ExprKind::Call { obj, method, .. } => {
                let pure_topology = (obj == SELF
                    && matches!(method.as_str(), "Degree" | "InDegree" | "OutDegree"))
                    || matches!(method.as_str(), "NumNodes" | "NumEdges");
                if !pure_topology && bad_call.is_none() {
                    bad_call = Some(format!("{obj}.{method}()"));
                }
            }
            ExprKind::Agg(_) if bad_call.is_none() => {
                bad_call = Some("nested aggregate".into());
            }
            _ => {}
        });
    }
    if let Some(call) = bad_call {
        return Err(format!("edge-dependent payload calls {call}"));
    }

    // Vertex-local temporaries do not survive the kernel; re-evaluation
    // cannot see them. (Anything that is not a declared local here is a
    // broadcast global, which is read-only during the vertex phase.)
    let mut locals = Vec::new();
    collect_locals(body, &mut locals);
    if let Some(v) = vars.iter().find(|v| locals.contains(v)) {
        return Err(format!("edge-dependent payload reads vertex-local `{v}`"));
    }

    // Any kernel write to a payload-read property — before or after the
    // send, immediate or deferred — may leave the post-kernel value
    // different from the send-point value on some control path, so reject
    // them wholesale. (Receive handlers run before the body and their
    // writes are visible to gather, so they need no restriction.)
    let mut written = Vec::new();
    collect_prop_writes(body, &mut written);
    if let Some(p) = self_props.iter().find(|p| written.contains(p)) {
        return Err(format!(
            "edge-dependent payload reads `{p}`, which the kernel writes"
        ));
    }
    Ok(())
}

fn collect_locals(body: &[VInstr], out: &mut Vec<String>) {
    for instr in body {
        match instr {
            VInstr::Local { name, .. } => out.push(name.clone()),
            VInstr::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_locals(then_branch, out);
                collect_locals(else_branch, out);
            }
            _ => {}
        }
    }
}

fn collect_prop_writes(body: &[VInstr], out: &mut Vec<String>) {
    for instr in body {
        match instr {
            VInstr::WriteOwn { prop, .. } => out.push(prop.clone()),
            VInstr::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_prop_writes(then_branch, out);
                collect_prop_writes(else_branch, out);
            }
            _ => {}
        }
    }
}

fn mentions_edge(e: &Expr) -> bool {
    let mut found = false;
    scan_expr(e, &mut |e| match &e.kind {
        ExprKind::Var(name) if name == EDGE => found = true,
        ExprKind::Prop { obj, .. } | ExprKind::Call { obj, .. } if obj == EDGE => found = true,
        _ => {}
    });
    found
}

/// Pre-order walk over every sub-expression.
fn scan_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match &e.kind {
        ExprKind::Unary { expr, .. } => scan_expr(expr, f),
        ExprKind::Binary { lhs, rhs, .. } => {
            scan_expr(lhs, f);
            scan_expr(rhs, f);
        }
        ExprKind::Ternary {
            cond,
            then_val,
            else_val,
        } => {
            scan_expr(cond, f);
            scan_expr(then_val, f);
            scan_expr(else_val, f);
        }
        ExprKind::Agg(agg) => {
            if let Some(filter) = &agg.filter {
                scan_expr(filter, f);
            }
            if let Some(body) = &agg.body {
                scan_expr(body, f);
            }
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                scan_expr(a, f);
            }
        }
        ExprKind::IntLit(_)
        | ExprKind::FloatLit(_)
        | ExprKind::BoolLit(_)
        | ExprKind::Inf { .. }
        | ExprKind::Nil
        | ExprKind::Var(_)
        | ExprKind::Prop { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AssignOp;
    use crate::pir::{MessageLayout, Transition, VertexKernel};
    use crate::types::Ty;

    fn prog_with_body(body: Vec<VInstr>) -> PregelProgram {
        PregelProgram {
            name: "p".into(),
            graph_param: "G".into(),
            scalar_params: vec![],
            node_props: vec![("x".into(), Ty::Double)],
            edge_props: vec![("w".into(), Ty::Double)],
            globals: vec![],
            messages: vec![MessageLayout {
                tag: 0,
                fields: vec![("v".into(), Ty::Double)],
            }],
            uses_in_nbrs: false,
            combinable: vec![None],
            ret: None,
            pullable: vec![],
            states: vec![State {
                master: vec![],
                vertex: Some(VertexKernel {
                    recvs: vec![],
                    filter: None,
                    body,
                    reads_globals: vec![],
                }),
                post: vec![],
                transition: Transition::Halt,
            }],
        }
    }

    fn self_prop(p: &str) -> Expr {
        Expr::synth(ExprKind::Prop {
            obj: SELF.into(),
            prop: p.into(),
        })
    }

    fn edge_prop(p: &str) -> Expr {
        Expr::synth(ExprKind::Prop {
            obj: EDGE.into(),
            prop: p.into(),
        })
    }

    fn send(payload: Vec<Expr>) -> VInstr {
        VInstr::SendToNbrs { tag: 0, payload }
    }

    #[test]
    fn master_only_and_silent_states_are_no_sends() {
        let mut p = prog_with_body(vec![VInstr::WriteOwn {
            prop: "x".into(),
            op: AssignOp::Assign,
            value: Expr::int(1),
        }]);
        assert_eq!(analyze(&p)[0], Pullability::NoSends);
        p.states[0].vertex = None;
        assert_eq!(analyze(&p)[0], Pullability::NoSends);
    }

    #[test]
    fn plain_payload_is_captured_pullable() {
        // PageRank shape: send(x / Degree()) with a write to x first.
        let p = prog_with_body(vec![
            VInstr::WriteOwn {
                prop: "x".into(),
                op: AssignOp::Assign,
                value: Expr::int(3),
            },
            send(vec![Expr::binary(
                crate::ast::BinOp::Div,
                self_prop("x"),
                Expr::synth(ExprKind::Call {
                    obj: SELF.into(),
                    method: "Degree".into(),
                    args: vec![],
                }),
            )]),
        ]);
        assert_eq!(
            analyze(&p)[0],
            Pullability::Pullable {
                edge_dependent: false
            }
        );
    }

    #[test]
    fn guarded_edge_payload_without_writes_is_recompute_pullable() {
        // SSSP shape: If(cond) { send(x + edge.w) }, no writes.
        let p = prog_with_body(vec![VInstr::If {
            cond: self_prop("x"),
            then_branch: vec![send(vec![Expr::binary(
                crate::ast::BinOp::Add,
                self_prop("x"),
                edge_prop("w"),
            )])],
            else_branch: vec![],
        }]);
        assert_eq!(
            analyze(&p)[0],
            Pullability::Pullable {
                edge_dependent: true
            }
        );
    }

    #[test]
    fn edge_payload_with_written_dep_is_push_only() {
        let p = prog_with_body(vec![
            VInstr::WriteOwn {
                prop: "x".into(),
                op: AssignOp::Assign,
                value: Expr::int(1),
            },
            send(vec![Expr::binary(
                crate::ast::BinOp::Add,
                self_prop("x"),
                edge_prop("w"),
            )]),
        ]);
        let v = analyze(&p).remove(0);
        assert!(!v.is_pullable(), "{v:?}");
        match v {
            Pullability::PushOnly { reason } => assert!(reason.contains("`x`"), "{reason}"),
            other => panic!("expected PushOnly, got {other:?}"),
        }
    }

    #[test]
    fn edge_payload_reading_local_is_push_only() {
        let p = prog_with_body(vec![
            VInstr::Local {
                name: "t".into(),
                op: AssignOp::Assign,
                value: Expr::int(2),
                ty: Ty::Int,
            },
            send(vec![Expr::binary(
                crate::ast::BinOp::Mul,
                Expr::var("t"),
                edge_prop("w"),
            )]),
        ]);
        assert!(!analyze(&p)[0].is_pullable());
    }

    #[test]
    fn random_writing_send_is_push_only() {
        let p = prog_with_body(vec![VInstr::SendTo {
            dst: self_prop("x"),
            tag: 0,
            payload: vec![Expr::int(1)],
        }]);
        match &analyze(&p)[0] {
            Pullability::PushOnly { reason } => {
                assert!(reason.contains("destination"), "{reason}");
            }
            other => panic!("expected PushOnly, got {other:?}"),
        }
    }

    #[test]
    fn multiple_sends_are_push_only() {
        let p = prog_with_body(vec![
            send(vec![Expr::int(1)]),
            VInstr::If {
                cond: self_prop("x"),
                then_branch: vec![send(vec![Expr::int(2)])],
                else_branch: vec![],
            },
        ]);
        match &analyze(&p)[0] {
            Pullability::PushOnly { reason } => assert!(reason.contains("2 send"), "{reason}"),
            other => panic!("expected PushOnly, got {other:?}"),
        }
    }

    #[test]
    fn in_nbrs_preamble_send_id_is_pullable() {
        let p = prog_with_body(vec![VInstr::SendIdToNbrs]);
        assert_eq!(
            analyze(&p)[0],
            Pullability::Pullable {
                edge_dependent: false
            }
        );
    }

    #[test]
    fn annotate_stamps_every_state() {
        let mut p = prog_with_body(vec![send(vec![self_prop("x")])]);
        assert!(p.pullable.is_empty());
        annotate(&mut p);
        assert_eq!(p.pullable.len(), p.states.len());
        assert!(p.pullable[0].is_pullable());
    }
}
