//! Per-compilation record of which transformation and translation steps
//! fired — the data behind the paper's Table 3.

use std::collections::BTreeSet;
use std::fmt;

/// The thirteen compiler steps the paper lists in Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Step {
    /// §3.1 State Machine Construction (applies to every program).
    StateMachine,
    /// §3.1 Global Object construction (broadcasts/reductions).
    GlobalObject,
    /// §3.1 Multiple Communication (message type tags).
    MultipleComm,
    /// §3.1 Random Writing (`sendToVertex` by id).
    RandomWriting,
    /// §3.1 Edge Properties (payload from source-side edge props).
    EdgeProperty,
    /// §4.1 Flipping Edges (pull → push).
    FlippingEdge,
    /// §4.1 Dissecting Nested Loops (scalar → temp property, loop split).
    DissectingLoops,
    /// §4.1 Random Access in Sequential Phase (extra parallel loop).
    RandomAccessSeq,
    /// §4.1 BFS-order Graph Traversal lowering.
    BfsTraversal,
    /// §4.2 State Merging.
    StateMerging,
    /// §4.2 Intra-Loop State Merging.
    IntraLoopMerge,
    /// §4.3 Incoming Neighbors (in-neighbor array construction).
    IncomingNeighbors,
    /// §4.3 Message Class Generation (always applied).
    MessageClassGen,
}

impl Step {
    /// All steps, in the paper's Table 3 row order.
    pub const ALL: [Step; 13] = [
        Step::StateMachine,
        Step::GlobalObject,
        Step::MultipleComm,
        Step::RandomWriting,
        Step::EdgeProperty,
        Step::FlippingEdge,
        Step::DissectingLoops,
        Step::RandomAccessSeq,
        Step::BfsTraversal,
        Step::StateMerging,
        Step::IntraLoopMerge,
        Step::IncomingNeighbors,
        Step::MessageClassGen,
    ];

    /// The row label used in Table 3.
    pub fn label(&self) -> &'static str {
        match self {
            Step::StateMachine => "State Machine Const.",
            Step::GlobalObject => "Global Object",
            Step::MultipleComm => "Multiple Comm.",
            Step::RandomWriting => "Random Writing",
            Step::EdgeProperty => "Edge Property",
            Step::FlippingEdge => "Flipping Edge",
            Step::DissectingLoops => "Dissecting Loops",
            Step::RandomAccessSeq => "Random Access(Seq.)",
            Step::BfsTraversal => "BFS Traversal",
            Step::StateMerging => "State Merging",
            Step::IntraLoopMerge => "Intra-Loop Merge",
            Step::IncomingNeighbors => "Incoming Neighbors",
            Step::MessageClassGen => "Message Class Gen",
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The set of steps applied while compiling one procedure.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransformReport {
    applied: BTreeSet<Step>,
}

impl TransformReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `step` fired.
    pub fn record(&mut self, step: Step) {
        self.applied.insert(step);
    }

    /// Whether `step` fired.
    pub fn applied(&self, step: Step) -> bool {
        self.applied.contains(&step)
    }

    /// All applied steps in Table 3 row order.
    pub fn steps(&self) -> impl Iterator<Item = Step> + '_ {
        Step::ALL.iter().copied().filter(|s| self.applied(*s))
    }
}

impl fmt::Display for TransformReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut r = TransformReport::new();
        assert!(!r.applied(Step::FlippingEdge));
        r.record(Step::FlippingEdge);
        r.record(Step::StateMachine);
        assert!(r.applied(Step::FlippingEdge));
        let steps: Vec<_> = r.steps().collect();
        // Table 3 order: StateMachine before FlippingEdge.
        assert_eq!(steps, vec![Step::StateMachine, Step::FlippingEdge]);
        assert_eq!(r.to_string(), "State Machine Const., Flipping Edge");
    }

    #[test]
    fn all_has_thirteen_rows() {
        assert_eq!(Step::ALL.len(), 13);
        // Labels are unique.
        let labels: BTreeSet<_> = Step::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 13);
    }
}
