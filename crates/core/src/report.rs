//! Per-compilation record of which transformation and translation steps
//! fired — the data behind the paper's Table 3 — plus per-pass wall-clock
//! and node-count deltas (the data behind `gmc --timing` and the compiler
//! half of a `--trace` capture).

use std::collections::BTreeSet;
use std::fmt;
use std::time::Duration;

/// The thirteen compiler steps the paper lists in Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Step {
    /// §3.1 State Machine Construction (applies to every program).
    StateMachine,
    /// §3.1 Global Object construction (broadcasts/reductions).
    GlobalObject,
    /// §3.1 Multiple Communication (message type tags).
    MultipleComm,
    /// §3.1 Random Writing (`sendToVertex` by id).
    RandomWriting,
    /// §3.1 Edge Properties (payload from source-side edge props).
    EdgeProperty,
    /// §4.1 Flipping Edges (pull → push).
    FlippingEdge,
    /// §4.1 Dissecting Nested Loops (scalar → temp property, loop split).
    DissectingLoops,
    /// §4.1 Random Access in Sequential Phase (extra parallel loop).
    RandomAccessSeq,
    /// §4.1 BFS-order Graph Traversal lowering.
    BfsTraversal,
    /// §4.2 State Merging.
    StateMerging,
    /// §4.2 Intra-Loop State Merging.
    IntraLoopMerge,
    /// §4.3 Incoming Neighbors (in-neighbor array construction).
    IncomingNeighbors,
    /// §4.3 Message Class Generation (always applied).
    MessageClassGen,
}

impl Step {
    /// All steps, in the paper's Table 3 row order.
    pub const ALL: [Step; 13] = [
        Step::StateMachine,
        Step::GlobalObject,
        Step::MultipleComm,
        Step::RandomWriting,
        Step::EdgeProperty,
        Step::FlippingEdge,
        Step::DissectingLoops,
        Step::RandomAccessSeq,
        Step::BfsTraversal,
        Step::StateMerging,
        Step::IntraLoopMerge,
        Step::IncomingNeighbors,
        Step::MessageClassGen,
    ];

    /// The row label used in Table 3.
    pub fn label(&self) -> &'static str {
        match self {
            Step::StateMachine => "State Machine Const.",
            Step::GlobalObject => "Global Object",
            Step::MultipleComm => "Multiple Comm.",
            Step::RandomWriting => "Random Writing",
            Step::EdgeProperty => "Edge Property",
            Step::FlippingEdge => "Flipping Edge",
            Step::DissectingLoops => "Dissecting Loops",
            Step::RandomAccessSeq => "Random Access(Seq.)",
            Step::BfsTraversal => "BFS Traversal",
            Step::StateMerging => "State Merging",
            Step::IntraLoopMerge => "Intra-Loop Merge",
            Step::IncomingNeighbors => "Incoming Neighbors",
            Step::MessageClassGen => "Message Class Gen",
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Wall-clock and size record for one compiler pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassTiming {
    /// Pass name, e.g. `"parse"` or `"canonicalize/flip"`.
    pub pass: &'static str,
    /// Wall-clock spent in the pass (including any re-typing it forced).
    pub duration: Duration,
    /// Node count going in: AST nodes up to `translate`, PIR instructions
    /// from there on. Zero for `parse` (the input is text).
    pub nodes_before: usize,
    /// Node count coming out.
    pub nodes_after: usize,
}

/// The set of steps applied while compiling one procedure, plus the
/// per-pass timings collected along the way.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransformReport {
    applied: BTreeSet<Step>,
    timings: Vec<PassTiming>,
}

impl TransformReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `step` fired.
    pub fn record(&mut self, step: Step) {
        self.applied.insert(step);
    }

    /// Whether `step` fired.
    pub fn applied(&self, step: Step) -> bool {
        self.applied.contains(&step)
    }

    /// All applied steps in Table 3 row order.
    pub fn steps(&self) -> impl Iterator<Item = Step> + '_ {
        Step::ALL.iter().copied().filter(|s| self.applied(*s))
    }

    /// Appends one pass's wall-clock and node-count delta.
    pub fn record_timing(
        &mut self,
        pass: &'static str,
        duration: Duration,
        nodes_before: usize,
        nodes_after: usize,
    ) {
        self.timings.push(PassTiming {
            pass,
            duration,
            nodes_before,
            nodes_after,
        });
    }

    /// The recorded pass timings, in execution order.
    pub fn pass_timings(&self) -> &[PassTiming] {
        &self.timings
    }

    /// Renders the per-pass table behind `gmc --timing`.
    pub fn timing_table(&self) -> String {
        let mut out = format!("{:<22} {:>11}  nodes\n", "pass", "time");
        let mut total = Duration::ZERO;
        for t in &self.timings {
            total += t.duration;
            out.push_str(&format!(
                "{:<22} {:>9.1}µs  {} -> {}\n",
                t.pass,
                t.duration.as_secs_f64() * 1e6,
                t.nodes_before,
                t.nodes_after,
            ));
        }
        out.push_str(&format!(
            "{:<22} {:>9.1}µs\n",
            "total",
            total.as_secs_f64() * 1e6
        ));
        out
    }
}

impl fmt::Display for TransformReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.steps().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut r = TransformReport::new();
        assert!(!r.applied(Step::FlippingEdge));
        r.record(Step::FlippingEdge);
        r.record(Step::StateMachine);
        assert!(r.applied(Step::FlippingEdge));
        let steps: Vec<_> = r.steps().collect();
        // Table 3 order: StateMachine before FlippingEdge.
        assert_eq!(steps, vec![Step::StateMachine, Step::FlippingEdge]);
        assert_eq!(r.to_string(), "State Machine Const., Flipping Edge");
    }

    #[test]
    fn timing_table_lists_passes_in_order() {
        let mut r = TransformReport::new();
        r.record_timing("parse", Duration::from_micros(120), 0, 40);
        r.record_timing("translate", Duration::from_micros(80), 40, 25);
        assert_eq!(r.pass_timings().len(), 2);
        assert_eq!(r.pass_timings()[0].pass, "parse");
        let table = r.timing_table();
        assert!(table.contains("parse"), "{table}");
        assert!(table.contains("40 -> 25"), "{table}");
        assert!(table.contains("total"), "{table}");
        // The table lists passes in execution order.
        assert!(table.find("parse").unwrap() < table.find("translate").unwrap());
    }

    #[test]
    fn all_has_thirteen_rows() {
        assert_eq!(Step::ALL.len(), 13);
        // Labels are unique.
        let labels: BTreeSet<_> = Step::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 13);
    }
}
